"""Adversarial analysis: why memoization, and why a second round of noise.

Two attacks from the paper's narrative are demonstrated:

1. the *averaging attack* against naive fresh-noise repetition (Section 2.4's
   motivation for memoization): the attacker's accuracy grows with the number
   of observed reports;
2. the *data-change detection attack* against dBitFlipPM (Table 2): without
   an instantaneous round, the utility-oriented configuration (d = b) exposes
   every bucket change, while LOLOHA's double randomization hides changes.

Run with:  python examples/attack_analysis.py
"""

from repro.attacks import averaging_attack_accuracy, change_detection_rate
from repro.datasets import make_syn
from repro.experiments.report import format_table


def main() -> None:
    # ---------------------------------------------------------------- #
    # 1. Averaging attack against fresh-noise GRR repetition.
    # ---------------------------------------------------------------- #
    print("Averaging attack against fresh-noise GRR (k=50, eps=1.0):")
    rows = []
    for n_reports in (1, 10, 50, 200):
        result = averaging_attack_accuracy(
            k=50, epsilon=1.0, n_reports=n_reports, n_victims=500, rng=0
        )
        rows.append(
            {
                "reports observed": n_reports,
                "attacker accuracy": result.accuracy,
                "single-report baseline": result.baseline_accuracy,
            }
        )
    print(format_table(rows))
    print("-> without memoization the attacker recovers the value almost surely.\n")

    # ---------------------------------------------------------------- #
    # 2. Change detection against dBitFlipPM (Table 2 in miniature).
    # ---------------------------------------------------------------- #
    dataset = make_syn(n_users=2_000, n_rounds=40, rng=1)
    print(f"Change-detection attack on dBitFlipPM (Syn-like, k={dataset.k}, "
          f"n={dataset.n_users}, tau={dataset.n_rounds}):")
    rows = []
    for eps_inf in (0.5, 2.0, 5.0):
        privacy_oriented = change_detection_rate(dataset, eps_inf=eps_inf, d=1, rng=2)
        utility_oriented = change_detection_rate(
            dataset, eps_inf=eps_inf, d=dataset.k, rng=2
        )
        rows.append(
            {
                "eps_inf": eps_inf,
                "d=1 detected": f"{100 * privacy_oriented.fraction_fully_detected:.2f}%",
                "d=b detected": f"{100 * utility_oriented.fraction_fully_detected:.2f}%",
            }
        )
    print(format_table(rows))
    print(
        "-> tuned for utility (d = b), every user's change points are exposed;\n"
        "   LOLOHA avoids this by re-randomizing the memoized value at every round."
    )


if __name__ == "__main__":
    main()
