"""Large-domain counter monitoring: census-style replicate weights.

The paper's DB_MT / DB_DE experiments stress the protocols with a very large
domain (k above one thousand): this is where the k-linear longitudinal budget
of RAPPOR-style protocols becomes untenable and where LOLOHA's k/g reduction
matters most.  This example builds a scaled-down DB_MT-like dataset, runs
RAPPOR, L-OSUE, BiLOLOHA and OLOLOHA, and contrasts realized budgets against
worst cases.

Run with:  python examples/census_counters.py
"""

from repro.datasets import make_census_counters
from repro.experiments.report import format_table
from repro.longitudinal import BiLOLOHA, LOSUE, LSUE, OLOLOHA
from repro.simulation import simulate_protocol


def main() -> None:
    eps_inf, alpha = 1.0, 0.5
    eps_1 = alpha * eps_inf

    dataset = make_census_counters(n_users=2_000, n_rounds=20, name="db_mt_small", rng=3)
    k = dataset.k
    print(f"census-like counters: k={k}, n={dataset.n_users}, tau={dataset.n_rounds}")
    print(f"mean value changes per user: {dataset.change_counts().mean():.1f}")

    protocols = [
        LSUE(k, eps_inf, eps_1),
        LOSUE(k, eps_inf, eps_1),
        BiLOLOHA(k, eps_inf, eps_1),
        OLOLOHA(k, eps_inf, eps_1),
    ]

    rows = []
    for protocol in protocols:
        result = simulate_protocol(protocol, dataset, rng=5)
        rows.append(
            {
                "protocol": result.protocol_name,
                "MSE_avg": result.mse_avg,
                "eps_avg (realized)": result.eps_avg,
                "worst case": result.worst_case_budget,
                "comm_bits/round": protocol.communication_bits,
            }
        )
    print(format_table(rows))
    print(
        "\nWith k in the thousands, RAPPOR/L-OSUE transmit k bits per round and their\n"
        "realized budget grows with every distinct counter value, whereas LOLOHA\n"
        "transmits ceil(log2 g) bits and caps the budget at g * eps_inf."
    )


if __name__ == "__main__":
    main()
