"""Quickstart: run the live ingestion service in-process and drive it.

The batch drivers in this repository loop ``for t in range(n_rounds)`` —
fine for simulations, useless for a deployment where reports arrive
whenever clients send them.  ``repro.service.ingest`` is the live
counterpart: an asyncio HTTP front door feeding a streaming
``CollectorSession``, with round windows owned by an explicit
``RoundClock``.  This example exercises the whole loop in one process:

1. declare the service as an ``IngestSpec`` (the payload of
   ``repro-ldp ingest --spec ingest.json`` files) — L-OSUE over a small
   domain, three rounds, each sealing once 200 reports arrive;
2. start an ``IngestServer`` on an ephemeral port, authenticated with an
   HMAC key from the environment;
3. drive it with the seeded load generator (the same machinery behind
   ``repro-ldp loadgen``), which evolves a synthetic population and
   submits signed report batches over real HTTP;
4. read back the live estimates and the Prometheus metrics surface;
5. verify the headline property: the live service's estimates are
   **bit-identical** to a batch ``CollectorSession`` fed the same
   reports, because arrival order and batching never change the float
   arithmetic.

Run with:  python examples/live_ingest_quickstart.py
"""

import asyncio
import json
import os

import numpy as np

from repro.service import CollectorSession
from repro.service.http import HttpClient
from repro.service.ingest import IngestServer
from repro.service.loadgen import generate_round_reports, run_loadgen
from repro.specs import IngestSpec, ProtocolSpec

KEY_ENV = "LIVE_INGEST_QUICKSTART_KEY"


async def collect(spec: IngestSpec) -> None:
    n_users = 200
    server = IngestServer(spec)
    await server.start()
    host, port = server.address
    print(f"serving {spec.protocol.name} on {host}:{port}")

    # Seeded synthetic traffic: every user keeps a privacy client across
    # rounds (memoization is what the longitudinal protocols are about)
    # and batches are Poisson-staggered on the wire.
    result = await run_loadgen(
        spec.protocol,
        host,
        port,
        n_rounds=spec.n_rounds,
        n_users=n_users,
        seed=42,
        batch_size=25,
        rate=500.0,
        auth_key_env=KEY_ENV,
    )
    print(
        f"loadgen: {result.accepted_reports}/{result.submitted_reports} "
        f"reports accepted ({result.rejected_batches} batches rejected)"
    )

    client = HttpClient(host, port)
    try:
        status = json.loads((await client.request("GET", "/v1/rounds")).body)
        seals = status["seals"]
        print(
            f"rounds sealed: {len(seals)}/{spec.n_rounds} "
            f"(reasons: {sorted({s['reason'] for s in seals})})"
        )
        last = spec.n_rounds - 1
        estimate = json.loads(
            (await client.request("GET", f"/v1/estimate/{last}")).body
        )
        freq = np.asarray(estimate["frequencies"])
        print(
            f"round {last} estimate from {estimate['n_reports']} reports, "
            f"mass {freq.sum():+.3f}, top bucket {int(freq.argmax())}"
        )

        metrics = (await client.request("GET", "/metrics")).body.decode("utf-8")
        for line in metrics.splitlines():
            if line.startswith(
                ("repro_ingest_reports_accepted_total", "repro_ingest_rounds_sealed")
            ) and not line.startswith("#"):
                print(f"  {line}")
    finally:
        await client.close()
        await server.stop()

    # The bit-identity bar: replay the identical seeded reports into a
    # plain batch session and compare exactly — not approximately.
    reference = CollectorSession(spec.protocol, n_rounds=spec.n_rounds)
    reports = generate_round_reports(
        server.session.protocol, spec.n_rounds, n_users, seed=42
    )
    for t in range(spec.n_rounds):
        reference.submit_reports(t, reports[t])
    np.testing.assert_array_equal(server.session.estimates(), reference.estimates())
    print("live estimates are bit-identical to the batch session ✓")


def main() -> None:
    os.environ.setdefault(KEY_ENV, "quickstart-demo-secret")
    spec = IngestSpec(
        protocol=ProtocolSpec(name="L-OSUE", k=16, eps_inf=2.0, eps_1=1.0),
        n_rounds=3,
        name="quickstart",
        host="127.0.0.1",
        port=0,
        quorum=200,
        auth_key_env=KEY_ENV,
    )
    asyncio.run(collect(spec))


if __name__ == "__main__":
    main()
