"""Quickstart: monitor an evolving histogram with LOLOHA.

This example walks through the full life cycle of the paper's protocol on a
small synthetic population:

1. configure OLOLOHA (optimal hashed-domain size) for a domain of 100 values;
2. give every user a client, which samples its personal hash function;
3. run ten collection rounds, estimating the histogram after each round;
4. report the estimation error and the realized longitudinal privacy budget.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import OLOLOHA
from repro.datasets import make_uniform_changing
from repro.simulation import simulate_protocol


def main() -> None:
    k = 100                    # domain size (e.g. app-usage minutes, URLs, ...)
    eps_inf = 2.0              # longitudinal privacy budget (upper bound)
    eps_1 = 1.0                # budget of the first report
    n_users, n_rounds = 5_000, 10

    # A population whose values change 30% of the time between rounds.
    dataset = make_uniform_changing(
        k=k, n_users=n_users, n_rounds=n_rounds, change_probability=0.3, rng=7
    )

    protocol = OLOLOHA(k=k, eps_inf=eps_inf, eps_1=eps_1)
    print(f"protocol: {protocol.name}, hashed domain g = {protocol.g}")
    print(f"worst-case longitudinal budget: {protocol.worst_case_budget():.1f} "
          f"(vs {k * eps_inf:.0f} for RAPPOR-style protocols)")

    result = simulate_protocol(protocol, dataset, rng=11)

    print(f"\nMSE averaged over {n_rounds} rounds: {result.mse_avg:.3e}")
    print(f"theoretical approximate variance V*:  {protocol.approximate_variance(n_users):.3e}")
    print(f"realized longitudinal budget (eps_avg): {result.eps_avg:.2f}")

    final_truth = dataset.true_frequencies(n_rounds - 1)
    final_estimate = result.estimates[-1]
    top = np.argsort(final_truth)[::-1][:5]
    print("\ntop-5 values at the final round (true vs estimated frequency):")
    for value in top:
        print(f"  value {value:3d}: true={final_truth[value]:.4f}  "
              f"estimated={final_estimate[value]:.4f}")


if __name__ == "__main__":
    main()
