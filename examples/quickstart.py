"""Quickstart: monitor an evolving histogram with LOLOHA.

This example walks through the full life cycle of the paper's protocol on a
small synthetic population:

1. describe OLOLOHA (optimal hashed-domain size) for a domain of 100 values
   as a declarative, serializable ``ProtocolSpec`` and build it through the
   registry;
2. give every user a client, which samples its personal hash function;
3. run ten collection rounds, estimating the histogram after each round;
4. report the estimation error and the realized longitudinal privacy budget;
5. stream the same collection through a ``CollectorSession`` — the
   service-style entry point that accepts report batches incrementally and
   can checkpoint/restore its server-side state.

The spec JSON printed in step 1 is exactly what sweep grid files contain —
``repro-ldp sweep --spec grid.json --output-dir results/ --resume`` runs a
whole (protocol, dataset, eps_inf, alpha) grid from such descriptions and
can resume interrupted grids without recomputing finished points.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import CollectorSession, ProtocolSpec, build_protocol
from repro.datasets import make_uniform_changing
from repro.simulation import simulate_protocol


def main() -> None:
    k = 100                    # domain size (e.g. app-usage minutes, URLs, ...)
    eps_inf = 2.0              # longitudinal privacy budget (upper bound)
    eps_1 = 1.0                # budget of the first report
    n_users, n_rounds = 5_000, 10

    # A population whose values change 30% of the time between rounds.
    dataset = make_uniform_changing(
        k=k, n_users=n_users, n_rounds=n_rounds, change_probability=0.3, rng=7
    )

    # The declarative description of the protocol: plain data, so it can be
    # saved to JSON, shipped to workers, or listed in a sweep grid file.
    spec = ProtocolSpec(name="OLOLOHA", k=k, eps_inf=eps_inf, eps_1=eps_1)
    print(f"spec: {spec.to_json()}")

    protocol = build_protocol(spec)
    print(f"protocol: {protocol.name}, hashed domain g = {protocol.g}")
    print(f"worst-case longitudinal budget: {protocol.worst_case_budget():.1f} "
          f"(vs {k * eps_inf:.0f} for RAPPOR-style protocols)")

    result = simulate_protocol(protocol, dataset, rng=11)

    print(f"\nMSE averaged over {n_rounds} rounds: {result.mse_avg:.3e}")
    print(f"theoretical approximate variance V*:  {protocol.approximate_variance(n_users):.3e}")
    print(f"realized longitudinal budget (eps_avg): {result.eps_avg:.2f}")

    final_truth = dataset.true_frequencies(n_rounds - 1)
    final_estimate = result.estimates[-1]
    top = np.argsort(final_truth)[::-1][:5]
    print("\ntop-5 values at the final round (true vs estimated frequency):")
    for value in top:
        print(f"  value {value:3d}: true={final_truth[value]:.4f}  "
              f"estimated={final_estimate[value]:.4f}")

    # --- streaming collection: the service façade ----------------------- #
    # A CollectorSession ingests report batches incrementally (out of round
    # order, from many producers) and exposes running debiased estimates.
    session = CollectorSession(spec, n_rounds=3)
    generator = np.random.default_rng(23)
    clients = [session.protocol.create_client(generator) for _ in range(1_000)]
    for t in (2, 0, 1):  # batches need not arrive in round order
        values = generator.integers(0, k, size=len(clients))
        reports = [c.report(int(v), generator) for c, v in zip(clients, values)]
        estimate = session.submit_reports(t, reports)
        mae = np.abs(estimate.frequencies - 1.0 / k).mean()
        print(f"round {estimate.round_index}: running estimate from "
              f"{estimate.n_reports} reports, mean abs error vs uniform = {mae:.4f}")
    # Sessions built from a spec can checkpoint and resume anywhere:
    #   session.checkpoint("session.json")
    #   session = CollectorSession.restore("session.json")


if __name__ == "__main__":
    main()
