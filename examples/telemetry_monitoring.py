"""Telemetry monitoring scenario: app-usage minutes, every six hours.

This mirrors the deployment that motivates the paper's *Syn* dataset (and the
original dBitFlipPM deployment at Microsoft): a counter in [0, 360) minutes is
collected from every device four times a day, and the vendor wants the usage
histogram over time without learning any individual device's usage.

The example compares the paper's protocol line-up on utility (MSE_avg) and on
longitudinal privacy consumption (eps_avg), reproducing in miniature the story
of Figures 3a and 4a.

Run with:  python examples/telemetry_monitoring.py
"""

from repro.datasets import make_syn
from repro.experiments.report import format_table
from repro.longitudinal import BiLOLOHA, DBitFlipPM, LGRR, LOSUE, LSUE, OLOLOHA
from repro.simulation import simulate_protocol


def main() -> None:
    eps_inf, alpha = 2.0, 0.5
    eps_1 = alpha * eps_inf

    # A scaled-down Syn dataset (the paper uses n=10000, tau=120).
    dataset = make_syn(n_users=3_000, n_rounds=30, rng=42)
    k = dataset.k

    protocols = [
        LSUE(k, eps_inf, eps_1),                    # RAPPOR
        LOSUE(k, eps_inf, eps_1),
        LGRR(k, eps_inf, eps_1),
        DBitFlipPM(k, eps_inf, d=1),                # privacy-oriented
        DBitFlipPM(k, eps_inf, d=k),                # utility-oriented
        BiLOLOHA(k, eps_inf, eps_1),
        OLOLOHA(k, eps_inf, eps_1),
    ]

    rows = []
    for protocol in protocols:
        result = simulate_protocol(protocol, dataset, rng=1)
        rows.append(
            {
                "protocol": result.protocol_name,
                "MSE_avg": result.mse_avg,
                "eps_avg": result.eps_avg,
                "worst_case_budget": result.worst_case_budget,
                "comm_bits": protocol.communication_bits,
            }
        )

    print(f"Syn-like telemetry: k={k}, n={dataset.n_users}, tau={dataset.n_rounds}, "
          f"eps_inf={eps_inf}, eps_1={eps_1}")
    print(format_table(rows))
    print(
        "\nReading the table: bBitFlipPM wins on MSE but consumes budget linearly in\n"
        "bucket changes (and its changes are fully detectable, see Table 2);\n"
        "OLOLOHA matches L-OSUE's utility while keeping the realized budget bounded\n"
        "by g * eps_inf."
    )


if __name__ == "__main__":
    main()
