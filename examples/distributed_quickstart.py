"""Distributed collection quickstart.

Walks through the distributed subsystem (``repro.distributed``) end to end:

1. a sharded simulation routed through the in-memory transport;
2. the same collection over a crash-safe file-spool queue, with a simulated
   worker crash (a claimed-then-abandoned shard) recovered via lease-expiry
   requeue — final estimates bit-identical to the serial path;
3. streaming shard summaries into a :class:`repro.service.CollectorSession`
   as they arrive, out of order, with coordinator checkpointing.

The CLI equivalent of step 2, with real separate processes, is::

    repro-ldp serve --spec collection.json --transport file --queue-dir q/
    repro-ldp work --queue-dir q/      # in as many shells / hosts as you like

Run from the repository root::

    PYTHONPATH=src python examples/distributed_quickstart.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import make_dataset
from repro.distributed import (
    Coordinator,
    FileQueueTransport,
    InProcessTransport,
    local_worker_threads,
)
from repro.service import CollectorSession
from repro.simulation.runner import (
    make_shard_tasks,
    result_from_summaries,
    simulate_protocol_sharded,
)
from repro.specs import ProtocolSpec

SPEC = ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5)
N_SHARDS = 6
SEED = 20230328


def step_1_in_process(dataset, serial):
    print("== 1. sharded simulation over the in-process transport ==")
    transport = InProcessTransport()
    try:
        result = simulate_protocol_sharded(
            SPEC, dataset, n_shards=N_SHARDS, rng=SEED,
            n_workers=2, transport=transport,
        )
    finally:
        transport.close()
    assert np.array_equal(result.estimates, serial.estimates)
    print(f"   mse_avg={result.mse_avg:.6e}  (bit-identical to serial: True)\n")


def step_2_file_queue_with_crash(dataset, serial, workdir):
    print("== 2. file-spool queue with a crashed worker ==")
    transport = FileQueueTransport(workdir / "queue")
    tasks = make_shard_tasks(SPEC, dataset, N_SHARDS, rng=SEED)
    coordinator = Coordinator(tasks, transport, lease_timeout=0.2)
    coordinator.publish_pending()

    # A doomed worker claims shard 0 and dies without completing it.
    doomed = transport.worker()
    claimed = doomed.claim(timeout=5.0)
    print(f"   worker claimed shard {claimed.shard_id} and 'crashed'")

    # Two healthy worker threads drain the queue; after 0.2 s the abandoned
    # lease expires, the shard is requeued, and a healthy worker redoes it.
    with local_worker_threads(transport, 2, dataset=dataset):
        coordinator.run(timeout=60.0)
    transport.close()
    result = result_from_summaries(SPEC, dataset, coordinator.ordered_summaries())
    assert np.array_equal(result.estimates, serial.estimates)
    print(
        f"   recovered: {coordinator.requeued} shard(s) requeued, "
        f"estimates still bit-identical to serial\n"
    )


def step_3_streaming_session_with_checkpoint(dataset, serial, workdir):
    print("== 3. streaming summaries into a CollectorSession + checkpoint ==")
    session = CollectorSession(SPEC.at(k=dataset.k), n_rounds=dataset.n_rounds)
    transport = InProcessTransport()
    coordinator = Coordinator(
        tasks=make_shard_tasks(SPEC, dataset, N_SHARDS, rng=SEED),
        transport=transport,
        session=session,
        checkpoint_path=workdir / "coordinator.npz",
    )
    with local_worker_threads(transport, 3, dataset=dataset):
        coordinator.run(timeout=60.0)
    transport.close()
    # Summaries arrived in whatever order the workers finished, yet the
    # session's running estimates converged to the batch result exactly.
    assert np.array_equal(session.estimates(), serial.estimates)
    print(
        f"   session complete={session.is_complete}, checkpoint at "
        f"{coordinator.checkpoint_path.name} "
        f"({coordinator.checkpoint_path.stat().st_size} bytes)\n"
    )


def main():
    dataset = make_dataset("syn", scale=0.02, rng=SEED)
    serial = simulate_protocol_sharded(SPEC, dataset, n_shards=N_SHARDS, rng=SEED)
    print(
        f"workload: {dataset.name} (n={dataset.n_users}, k={dataset.k}, "
        f"tau={dataset.n_rounds}), protocol {SPEC.name}, "
        f"{N_SHARDS} shards\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        step_1_in_process(dataset, serial)
        step_2_file_queue_with_crash(dataset, serial, workdir)
        step_3_streaming_session_with_checkpoint(dataset, serial, workdir)
    print("distributed quickstart OK")


if __name__ == "__main__":
    main()
