"""Distributed collection quickstart.

Walks through the distributed subsystem (``repro.distributed``) end to end:

1. a sharded simulation routed through the in-memory transport;
2. the same collection over a crash-safe file-spool queue, with a simulated
   worker crash (a claimed-then-abandoned shard) recovered via lease-expiry
   requeue — final estimates bit-identical to the serial path;
3. streaming shard summaries into a :class:`repro.service.CollectorSession`
   as they arrive, out of order, with coordinator checkpointing;
4. an HMAC-authenticated TCP run over a weighted shard plan: workers park
   at the broker (no idle polling), advertise capacity hints, every payload
   is signed with a shared secret from the environment, and a worker
   holding the wrong key is rejected without disturbing the collection.

The CLI equivalent of step 2, with real separate processes, is::

    repro-ldp serve --spec collection.json --transport file --queue-dir q/
    repro-ldp work --queue-dir q/      # in as many shells / hosts as you like

and of step 4 (both sides export the same ``REPRO_AUTH_KEY`` secret)::

    repro-ldp serve --spec collection.json --transport tcp \\
        --bind 0.0.0.0:7000 --auth-key-env REPRO_AUTH_KEY
    repro-ldp work --connect collector:7000 \\
        --auth-key-env REPRO_AUTH_KEY --capacity 4

Run from the repository root::

    PYTHONPATH=src python examples/distributed_quickstart.py
"""

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import make_dataset
from repro.distributed import (
    Coordinator,
    FileQueueTransport,
    InProcessTransport,
    SocketTransport,
    SocketWorker,
    authenticator_from_env,
    local_worker_threads,
    run_worker,
)
from repro.service import CollectorSession
from repro.simulation.runner import (
    make_shard_tasks,
    result_from_summaries,
    simulate_protocol_sharded,
)
from repro.specs import ProtocolSpec

SPEC = ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5)
N_SHARDS = 6
SEED = 20230328


def step_1_in_process(dataset, serial):
    print("== 1. sharded simulation over the in-process transport ==")
    transport = InProcessTransport()
    try:
        result = simulate_protocol_sharded(
            SPEC, dataset, n_shards=N_SHARDS, rng=SEED,
            n_workers=2, transport=transport,
        )
    finally:
        transport.close()
    assert np.array_equal(result.estimates, serial.estimates)
    print(f"   mse_avg={result.mse_avg:.6e}  (bit-identical to serial: True)\n")


def step_2_file_queue_with_crash(dataset, serial, workdir):
    print("== 2. file-spool queue with a crashed worker ==")
    transport = FileQueueTransport(workdir / "queue")
    tasks = make_shard_tasks(SPEC, dataset, N_SHARDS, rng=SEED)
    coordinator = Coordinator(tasks, transport, lease_timeout=0.2)
    coordinator.publish_pending()

    # A doomed worker claims shard 0 and dies without completing it.
    doomed = transport.worker()
    claimed = doomed.claim(timeout=5.0)
    print(f"   worker claimed shard {claimed.shard_id} and 'crashed'")

    # Two healthy worker threads drain the queue; after 0.2 s the abandoned
    # lease expires, the shard is requeued, and a healthy worker redoes it.
    with local_worker_threads(transport, 2, dataset=dataset):
        coordinator.run(timeout=60.0)
    transport.close()
    result = result_from_summaries(SPEC, dataset, coordinator.ordered_summaries())
    assert np.array_equal(result.estimates, serial.estimates)
    print(
        f"   recovered: {coordinator.requeued} shard(s) requeued, "
        f"estimates still bit-identical to serial\n"
    )


def step_3_streaming_session_with_checkpoint(dataset, serial, workdir):
    print("== 3. streaming summaries into a CollectorSession + checkpoint ==")
    session = CollectorSession(SPEC.at(k=dataset.k), n_rounds=dataset.n_rounds)
    transport = InProcessTransport()
    coordinator = Coordinator(
        tasks=make_shard_tasks(SPEC, dataset, N_SHARDS, rng=SEED),
        transport=transport,
        session=session,
        checkpoint_path=workdir / "coordinator.npz",
    )
    with local_worker_threads(transport, 3, dataset=dataset):
        coordinator.run(timeout=60.0)
    transport.close()
    # Summaries arrived in whatever order the workers finished, yet the
    # session's running estimates converged to the batch result exactly.
    assert np.array_equal(session.estimates(), serial.estimates)
    print(
        f"   session complete={session.is_complete}, checkpoint at "
        f"{coordinator.checkpoint_path.name} "
        f"({coordinator.checkpoint_path.stat().st_size} bytes)\n"
    )


def step_4_authenticated_weighted_tcp(dataset):
    print("== 4. authenticated TCP broker, weighted shards, capacity hints ==")
    # The shared secret travels through the environment, never through spec
    # files; a fast host gets twice the users of each slow one.
    os.environ.setdefault("REPRO_QUICKSTART_KEY", "quickstart-shared-secret")
    auth = authenticator_from_env("REPRO_QUICKSTART_KEY")
    weights = (2.0, 1.0, 1.0)
    serial = simulate_protocol_sharded(
        SPEC, dataset, n_shards=3, rng=SEED, weights=weights
    )
    transport = SocketTransport(auth=auth)
    coordinator = Coordinator(
        make_shard_tasks(SPEC, dataset, 3, rng=SEED, weights=weights),
        transport,
        lease_timeout=5.0,
    )
    coordinator.publish_pending()
    host, port = transport.address

    # A worker with the WRONG key claims nothing: every task payload fails
    # verification client-side and is counted, never executed.
    os.environ["REPRO_WRONG_KEY"] = "not-the-secret"
    intruder = SocketWorker(
        host, port, auth=authenticator_from_env("REPRO_WRONG_KEY"), mode="poll"
    )
    assert intruder.claim(timeout=0.3) is None
    print(f"   wrong-key worker rejected {intruder.rejected} task payload(s)")
    intruder.close()

    # The honest worker parks at the broker (zero idle frames) and
    # advertises capacity 4, so it is handed the largest shard first.
    worker = transport.worker(capacity=4)
    completed = run_worker(worker, dataset=dataset, max_tasks=3, idle_timeout=5.0)
    worker.close()
    coordinator.drain(idle_timeout=1.0)
    transport.close()
    result = result_from_summaries(SPEC, dataset, coordinator.ordered_summaries())
    assert np.array_equal(result.estimates, serial.estimates)
    print(
        f"   {completed} weighted shards collected over authenticated TCP "
        f"({worker.claim_frames_sent} claim frames), estimates bit-identical "
        f"to the serially-run weighted plan\n"
    )


def main():
    dataset = make_dataset("syn", scale=0.02, rng=SEED)
    serial = simulate_protocol_sharded(SPEC, dataset, n_shards=N_SHARDS, rng=SEED)
    print(
        f"workload: {dataset.name} (n={dataset.n_users}, k={dataset.k}, "
        f"tau={dataset.n_rounds}), protocol {SPEC.name}, "
        f"{N_SHARDS} shards\n"
    )
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        step_1_in_process(dataset, serial)
        step_2_file_queue_with_crash(dataset, serial, workdir)
        step_3_streaming_session_with_checkpoint(dataset, serial, workdir)
    step_4_authenticated_weighted_tcp(dataset)
    print("distributed quickstart OK")


if __name__ == "__main__":
    main()
