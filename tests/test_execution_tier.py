"""Execution-tier tests: batched windows, shared memory, kernel backends.

Guards the three layers added by the execution tier:

* **Batched stepping** — :meth:`run_rounds` collapses a steady window into
  one kernel call, bit-identical to sequential :meth:`run_round` stepping
  (same counts AND the same draw budget: the CountingGenerator tests pin
  that an R-round window consumes exactly R rounds' worth of variates, at
  two population sizes), and the runner's window driver splits windows at
  every mid-window value change.
* **Shared-memory state** — datasets and memo pools published through
  :mod:`repro.simulation.shm` keep every execution mode bit-identical and
  enforce the owner-unlinks lifecycle.
* **Kernel backends** — the optional compiled backend must match the numpy
  oracle exactly, and the dispatch must fall back (or fail loudly when
  explicitly requested) when the compiler is missing.
"""

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.longitudinal import DBitFlipPM, LGRR, LOSUE, OLOLOHA
from repro.simulation import (
    SharedArray,
    SharedDatasetBuffer,
    SharedMemoPool,
    engine_for,
    round_windows,
    simulate_protocol,
    simulate_protocol_sharded,
)
from repro.simulation.kernels import (
    packed_column_sums_kernel,
    symbol_bincount_kernel,
)
from repro.simulation.kernels_backend import (
    BACKEND_ENV_VAR,
    NUMPY_BACKEND,
    available_backend_names,
    native_available,
    resolve_backend,
)
from repro.specs import ProtocolSpec

K = 16

ENGINE_FACTORIES = {
    "L-GRR": lambda k: LGRR(k, 3.0, 1.5),
    "L-OSUE": lambda k: LOSUE(k, 3.0, 1.5),
    "OLOLOHA": lambda k: OLOLOHA(k, 3.0, 1.5),
    "dBitFlipPM": lambda k: DBitFlipPM(k, 3.0, d=4),
}

PROTOCOL_PARAMS = pytest.mark.parametrize(
    "protocol_factory", list(ENGINE_FACTORIES.values()), ids=list(ENGINE_FACTORIES)
)


class _CountingGenerator(np.random.Generator):
    """A Generator that tallies how many random variates were drawn."""

    def __init__(self, seed=0):
        super().__init__(np.random.PCG64(seed))
        self.variates = 0

    def _count(self, out):
        self.variates += int(np.size(out))
        return out

    def random(self, *args, **kwargs):
        return self._count(super().random(*args, **kwargs))

    def integers(self, *args, **kwargs):
        return self._count(super().integers(*args, **kwargs))

    def binomial(self, *args, **kwargs):
        return self._count(super().binomial(*args, **kwargs))

    def multinomial(self, *args, **kwargs):
        return self._count(super().multinomial(*args, **kwargs))


class TestBatchedRunRounds:
    """run_rounds == R sequential run_round calls, draw for draw."""

    @PROTOCOL_PARAMS
    def test_bit_identical_to_sequential(self, protocol_factory):
        n_users, n_rounds = 90, 7
        values = np.random.default_rng(1).integers(0, K, size=n_users)
        batched_engine = engine_for(protocol_factory(K), n_users, rng=5)
        sequential_engine = engine_for(protocol_factory(K), n_users, rng=5)

        batched = batched_engine.run_rounds(values, n_rounds, np.random.default_rng(6))
        generator = np.random.default_rng(6)
        sequential = np.stack(
            [sequential_engine.run_round(values, generator) for _ in range(n_rounds)]
        )
        assert np.array_equal(batched, sequential)

    @PROTOCOL_PARAMS
    def test_stream_stays_aligned_after_window(self, protocol_factory):
        """After a batched window both engines continue on the same stream."""
        n_users = 60
        rng = np.random.default_rng(2)
        first = rng.integers(0, K, size=n_users)
        second = rng.integers(0, K, size=n_users)
        batched_engine = engine_for(protocol_factory(K), n_users, rng=9)
        sequential_engine = engine_for(protocol_factory(K), n_users, rng=9)

        batched_generator = np.random.default_rng(10)
        sequential_generator = np.random.default_rng(10)
        batched_engine.run_rounds(first, 4, batched_generator)
        for _ in range(4):
            sequential_engine.run_round(first, sequential_generator)
        assert np.array_equal(
            batched_engine.run_round(second, batched_generator),
            sequential_engine.run_round(second, sequential_generator),
        )

    @PROTOCOL_PARAMS
    def test_invalid_round_count_rejected(self, protocol_factory):
        engine = engine_for(protocol_factory(K), 10, rng=0)
        values = np.zeros(10, dtype=np.int64)
        with pytest.raises(ParameterError):
            engine.run_rounds(values, 0, np.random.default_rng(0))

    @pytest.mark.parametrize(
        "protocol_factory",
        [ENGINE_FACTORIES["L-GRR"], ENGINE_FACTORIES["L-OSUE"], ENGINE_FACTORIES["OLOLOHA"]],
        ids=["L-GRR", "L-OSUE", "OLOLOHA"],
    )
    @pytest.mark.parametrize("n_users", [80, 800])
    def test_window_draw_budget_is_exactly_r_rounds(self, protocol_factory, n_users):
        """An R-round window consumes exactly R rounds' worth of variates —
        no extra draws, no per-user draws — at two population sizes."""
        values = np.random.default_rng(3).integers(0, K, size=n_users)

        warm = engine_for(protocol_factory(K), n_users, rng=0)
        warm.run_round(values)  # memoize every (user, current key) pair
        per_round = _CountingGenerator(4)
        warm.run_round(values, per_round)

        batched = engine_for(protocol_factory(K), n_users, rng=0)
        batched.run_round(values)
        counter = _CountingGenerator(4)
        n_rounds = 6
        batched.run_rounds(values, n_rounds, counter)
        assert counter.variates == n_rounds * per_round.variates
        assert per_round.variates <= 4 * K  # O(k), nothing per-user

    def test_dbitflip_window_draws_nothing_after_first_round(self):
        """dBitFlipPM has no instantaneous randomness: a warmed batched
        window consumes zero variates."""
        n_users = 50
        values = np.random.default_rng(5).integers(0, K, size=n_users)
        engine = engine_for(DBitFlipPM(K, 3.0, d=4), n_users, rng=0)
        engine.run_round(values)
        counter = _CountingGenerator(6)
        counts = engine.run_rounds(values, 5, counter)
        assert counter.variates == 0
        assert (counts == counts[0]).all()


class TestRoundWindows:
    def test_single_round_is_one_window(self):
        values = np.array([[3], [1]])
        assert round_windows(values) == [(0, 1)]

    def test_steady_rounds_collapse_to_one_window(self):
        values = np.tile(np.array([[2], [5], [1]]), (1, 6))
        assert round_windows(values) == [(0, 6)]

    def test_mid_window_change_splits_window(self):
        """Regression: one user changing at round 3 must split [0, 6) into
        [0, 3) and [3, 6) — the change may not be absorbed into a window."""
        values = np.tile(np.array([[2], [5], [1]]), (1, 6))
        values[1, 3:] = 7
        assert round_windows(values) == [(0, 3), (3, 6)]

    def test_every_round_changing_yields_singleton_windows(self):
        values = np.arange(8)[None, :] % 5
        assert round_windows(values) == [(t, t + 1) for t in range(8)]

    @PROTOCOL_PARAMS
    def test_windowed_runner_matches_per_round_driving(
        self, protocol_factory, tiny_dataset
    ):
        """simulate_protocol (window-batched) == hand-driven per-round loop."""
        from repro.rng import as_rng
        from repro.simulation.sinks import SupportCountSink

        protocol = protocol_factory(tiny_dataset.k)
        result = simulate_protocol(protocol, tiny_dataset, rng=123)

        # Mirror simulate_protocol's stream exactly, but step one round at a
        # time instead of through the window driver.
        generator = as_rng(123)
        engine = engine_for(protocol, tiny_dataset.n_users, generator)
        sink = SupportCountSink(
            tiny_dataset.n_rounds,
            engine.protocol.estimation_domain_size,
            tiny_dataset.n_users,
        )
        for t, values_t in enumerate(tiny_dataset.iter_rounds()):
            sink.add_round(t, engine.run_round(values_t, generator))
        assert np.array_equal(result.estimates, sink.estimates(engine.protocol))


class TestEngineOptionValidation:
    """Layout overrides on engines that ignore them must fail loudly."""

    def test_memo_layout_rejected_for_grr(self):
        with pytest.raises(ParameterError, match="memo_layout"):
            engine_for(LGRR(8, 2.0, 1.0), 10, rng=0, memo_layout="sparse")

    def test_support_layout_rejected_for_unary(self):
        with pytest.raises(ParameterError, match="support_layout"):
            engine_for(LOSUE(8, 2.0, 1.0), 10, rng=0, support_layout="packed")

    def test_unknown_option_rejected_for_loloha(self):
        with pytest.raises(ParameterError, match="record_key_history"):
            engine_for(OLOLOHA(8, 2.0, 1.0), 10, rng=0, record_key_history=True)

    def test_error_names_engine_and_valid_options(self):
        with pytest.raises(ParameterError, match="valid options"):
            engine_for(LGRR(8, 2.0, 1.0), 10, rng=0, support_layout="packed")

    def test_memo_layout_with_injected_memo_rejected(self):
        from repro.simulation.state import make_packed_bit_memo

        memo = make_packed_bit_memo(10, 8, 8)
        with pytest.raises(ParameterError, match="memo"):
            engine_for(
                LOSUE(8, 2.0, 1.0), 10, rng=0, memo=memo, memo_layout="sparse"
            )


class TestSharedArray:
    def test_roundtrip_and_readonly_attach(self):
        values = np.arange(24, dtype=np.int32).reshape(4, 6)
        block = SharedArray.create(values, extra={"tag": "t"})
        try:
            attached = SharedArray.attach(block.name)
            assert np.array_equal(attached.array, values)
            assert attached.extra["tag"] == "t"
            with pytest.raises(ValueError):
                attached.array[0, 0] = 9
            attached.close()
        finally:
            block.unlink()

    def test_writable_attach_shares_updates(self):
        values = np.zeros(5, dtype=np.int64)
        block = SharedArray.create(values)
        try:
            writer = SharedArray.attach(block.name, writable=True)
            writer.array[2] = 42
            assert block.array[2] == 42
            writer.close()
        finally:
            block.unlink()

    def test_only_owner_may_unlink(self):
        block = SharedArray.create(np.ones(3))
        try:
            attached = SharedArray.attach(block.name)
            with pytest.raises(ExperimentError, match="owner"):
                attached.unlink()
            attached.close()
        finally:
            block.unlink()

    def test_double_unlink_is_idempotent(self):
        block = SharedArray.create(np.ones(3))
        block.unlink()
        block.unlink()  # second unlink is a no-op, not an error


class TestSharedDatasetBuffer:
    def test_publish_attach_roundtrip(self, tiny_dataset):
        with SharedDatasetBuffer.publish(tiny_dataset) as buffer:
            attached = SharedDatasetBuffer.attach(buffer.name)
            assert attached.name == tiny_dataset.name
            assert attached.k == tiny_dataset.k
            assert np.array_equal(attached.values, tiny_dataset.values)
            assert attached.metadata["shared_block"] == buffer.name


class TestSharedMemoPool:
    @PROTOCOL_PARAMS
    def test_slices_cover_population_and_reset(self, protocol_factory):
        protocol = protocol_factory(K)
        with SharedMemoPool.create(protocol, 40) as pool:
            memo = pool.memo_for_slice(10, 25)
            values = np.random.default_rng(7).integers(0, K, size=15)
            engine = engine_for(protocol, 15, rng=1, memo=memo)
            engine.run_round(values, np.random.default_rng(2))
            assert memo.distinct_per_user().sum() > 0
            memo.reset()
            assert memo.distinct_per_user().sum() == 0

    def test_over_budget_allocation_refused(self):
        with pytest.raises(ExperimentError, match="sparse"):
            SharedMemoPool.create(
                LOSUE(2_048, 2.0, 1.0), 100_000, max_bytes=1 << 20
            )

    @pytest.mark.parametrize(
        "name", ["L-GRR", "L-OSUE", "OLOLOHA", "dBitFlipPM"]
    )
    def test_shared_memory_modes_bit_identical(self, name, tiny_dataset):
        """Serial, shared-memory serial, and shared-memory process-pool runs
        all produce the same bits (the existing L-OSUE / L-GRR identity
        tests, extended to the shared pool)."""
        params = {"b": 6, "d": 4} if name == "dBitFlipPM" else {}
        spec = ProtocolSpec(name=name, eps_inf=2.0, alpha=0.5, params=params)
        plain = simulate_protocol_sharded(
            spec, tiny_dataset, n_shards=3, rng=77
        )
        shared_serial = simulate_protocol_sharded(
            spec, tiny_dataset, n_shards=3, rng=77, shared_memory=True
        )
        assert np.array_equal(plain.estimates, shared_serial.estimates)
        shared_pool = simulate_protocol_sharded(
            spec, tiny_dataset, n_shards=3, rng=77, n_workers=2, shared_memory=True
        )
        assert np.array_equal(plain.estimates, shared_pool.estimates)

    def test_shared_memory_with_protocol_object(self, tiny_dataset):
        """The non-spec serial path also honors shared_memory=True."""
        protocol = OLOLOHA(tiny_dataset.k, 2.0, 1.0)
        plain = simulate_protocol_sharded(protocol, tiny_dataset, n_shards=2, rng=5)
        shared = simulate_protocol_sharded(
            protocol, tiny_dataset, n_shards=2, rng=5, shared_memory=True
        )
        assert np.array_equal(plain.estimates, shared.estimates)


class TestKernelBackends:
    def test_numpy_backend_always_available(self):
        assert "numpy" in available_backend_names()
        assert resolve_backend("numpy") is NUMPY_BACKEND

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        assert resolve_backend(None).name == "numpy"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ParameterError, match="backend"):
            resolve_backend("fortran")

    def test_engine_accepts_backend_override(self):
        engine = engine_for(LGRR(8, 2.0, 1.0), 10, rng=0, backend="numpy")
        assert engine.backend_name == "numpy"

    @pytest.mark.skipif(not native_available(), reason="no C compiler")
    class TestNativeOracle:
        """Compiled kernels must match the numpy oracle exactly."""

        def test_packed_column_sums_property(self):
            native = resolve_backend("native")
            rng = np.random.default_rng(11)
            for _ in range(25):
                n_rows = int(rng.integers(0, 400))
                n_bits = int(rng.integers(1, 300))
                packed = rng.integers(
                    0, 256, size=(n_rows, (n_bits + 7) // 8), dtype=np.uint8
                )
                assert np.array_equal(
                    native.packed_column_sums(packed, n_bits),
                    packed_column_sums_kernel(packed, n_bits),
                )

        def test_support_fold_property(self):
            native = resolve_backend("native")
            rng = np.random.default_rng(12)
            for dtype in (np.int16, np.int32, np.int64):
                n_users, k, g = 130, 37, 5
                hashed = rng.integers(0, g, size=(n_users, k)).astype(dtype)
                reports = rng.integers(0, g, size=n_users).astype(np.int64)
                expected = (hashed == reports[:, None]).sum(axis=0, dtype=np.int64)
                assert np.array_equal(
                    native.support_fold(hashed, reports), expected
                )

        def test_symbol_bincount_property(self):
            native = resolve_backend("native")
            rng = np.random.default_rng(13)
            for _ in range(20):
                k = int(rng.integers(1, 60))
                symbols = rng.integers(0, k, size=int(rng.integers(0, 500)))
                assert np.array_equal(
                    native.symbol_bincount(symbols, k),
                    symbol_bincount_kernel(symbols, k),
                )

        def test_empty_packed_rows(self):
            native = resolve_backend("native")
            packed = np.zeros((0, 4), dtype=np.uint8)
            assert np.array_equal(
                native.packed_column_sums(packed, 30), np.zeros(30, dtype=np.int64)
            )

        @PROTOCOL_PARAMS
        def test_round_counts_identical_across_backends(self, protocol_factory):
            """Backends never change results: numpy and native engines draw
            the same stream and emit identical counts."""
            n_users = 70
            values = np.random.default_rng(14).integers(0, K, size=n_users)
            a = engine_for(protocol_factory(K), n_users, rng=3, backend="numpy")
            b = engine_for(protocol_factory(K), n_users, rng=3, backend="native")
            for seed in range(3):
                assert np.array_equal(
                    a.run_round(values, np.random.default_rng(seed)),
                    b.run_round(values, np.random.default_rng(seed)),
                )
