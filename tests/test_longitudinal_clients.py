"""Behavioural tests of the per-user clients of every longitudinal protocol."""

import numpy as np
import pytest

from repro.exceptions import DomainError, EncodingError, ParameterError
from repro.longitudinal import (
    BiLOLOHA,
    DBitFlipPM,
    LGRR,
    LOLOHA,
    LOSUE,
    LSUE,
    OLOLOHA,
)
from repro.longitudinal.dbitflip import DBitFlipReport, equal_width_buckets
from repro.longitudinal.loloha import LOLOHAReport


class TestLGRRClient:
    def test_reports_in_domain(self, rng):
        protocol = LGRR(k=10, eps_inf=2.0, eps_1=1.0)
        client = protocol.create_client(rng)
        for value in (0, 3, 9):
            assert 0 <= client.report(value, rng) < 10

    def test_memoization_counts_distinct_values(self, rng):
        protocol = LGRR(k=10, eps_inf=2.0, eps_1=1.0)
        client = protocol.create_client(rng)
        for value in (1, 1, 2, 2, 3, 1):
            client.report(value, rng)
        assert client.distinct_memoized == 3
        assert client.realized_budget() == pytest.approx(3 * 2.0)

    def test_out_of_domain_value_rejected(self, rng):
        protocol = LGRR(k=10, eps_inf=2.0, eps_1=1.0)
        client = protocol.create_client(rng)
        with pytest.raises(DomainError):
            client.report(10, rng)


class TestLUEClient:
    @pytest.mark.parametrize("protocol_cls", [LSUE, LOSUE])
    def test_report_is_bit_vector(self, protocol_cls, rng):
        protocol = protocol_cls(k=12, eps_inf=2.0, eps_1=1.0)
        client = protocol.create_client(rng)
        report = client.report(4, rng)
        assert report.shape == (12,)
        assert set(np.unique(report)).issubset({0, 1})

    def test_memoization_keys_follow_first_use(self, rng):
        protocol = LSUE(k=12, eps_inf=2.0, eps_1=1.0)
        client = protocol.create_client(rng)
        for value in (5, 2, 5, 7):
            client.report(value, rng)
        assert client.memoization_keys == (5, 2, 7)

    def test_budget_bounded_by_domain(self, rng):
        protocol = LOSUE(k=6, eps_inf=1.0, eps_1=0.5)
        client = protocol.create_client(rng)
        for _ in range(3):
            for value in range(6):
                client.report(value, rng)
        assert client.distinct_memoized == 6
        assert client.realized_budget() <= protocol.worst_case_budget()


class TestLOLOHAClient:
    def test_report_structure(self, rng):
        protocol = LOLOHA(k=40, eps_inf=2.0, eps_1=1.0, g=4)
        client = protocol.create_client(rng)
        report = client.report(13, rng)
        assert isinstance(report, LOLOHAReport)
        assert 0 <= report.value < 4
        assert report.hash_function is client.hash_function

    def test_hash_function_is_fixed_across_reports(self, rng):
        protocol = LOLOHA(k=40, eps_inf=2.0, eps_1=1.0, g=4)
        client = protocol.create_client(rng)
        reports = [client.report(v, rng) for v in (1, 2, 3, 4, 5)]
        assert all(r.hash_function == reports[0].hash_function for r in reports)

    def test_memoization_keyed_by_hash_value(self, rng):
        protocol = LOLOHA(k=1000, eps_inf=2.0, eps_1=1.0, g=2)
        client = protocol.create_client(rng)
        # Even after reporting many distinct values, at most g keys are memoized.
        for value in range(200):
            client.report(value, rng)
        assert client.distinct_memoized <= 2
        assert client.realized_budget() <= protocol.worst_case_budget()

    def test_default_g_is_optimal_choice(self):
        from repro.longitudinal import optimal_g

        protocol = LOLOHA(k=100, eps_inf=4.0, eps_1=2.4)
        assert protocol.g == optimal_g(4.0, 2.4)

    def test_biloloha_and_ololoha_presets(self):
        assert BiLOLOHA(k=100, eps_inf=2.0, eps_1=1.0).g == 2
        assert OLOLOHA(k=100, eps_inf=5.0, eps_1=3.0).g > 2

    def test_irr_epsilon_between_budgets(self):
        protocol = LOLOHA(k=100, eps_inf=2.0, eps_1=1.0, g=4)
        assert 0 < protocol.irr_epsilon
        assert protocol.irr_epsilon < protocol.eps_inf

    def test_mismatched_family_rejected(self):
        from repro.hashing import MultiplyShiftHashFamily

        with pytest.raises(EncodingError):
            LOLOHA(k=100, eps_inf=2.0, eps_1=1.0, g=4, family=MultiplyShiftHashFamily(8))

    def test_communication_bits(self):
        assert LOLOHA(k=100, eps_inf=2.0, eps_1=1.0, g=2).communication_bits == 1.0
        assert LOLOHA(k=100, eps_inf=2.0, eps_1=1.0, g=8).communication_bits == 3.0


class TestDBitFlipClient:
    def test_report_structure(self, rng):
        protocol = DBitFlipPM(k=30, eps_inf=2.0, b=10, d=3)
        client = protocol.create_client(rng)
        report = client.report(17, rng)
        assert isinstance(report, DBitFlipReport)
        assert len(report.sampled_buckets) == 3
        assert set(report.bits).issubset({0, 1})

    def test_sampled_buckets_fixed_forever(self, rng):
        protocol = DBitFlipPM(k=30, eps_inf=2.0, b=10, d=3)
        client = protocol.create_client(rng)
        reports = [client.report(v, rng) for v in (0, 10, 20, 29)]
        assert all(r.sampled_buckets == reports[0].sampled_buckets for r in reports)

    def test_same_bucket_gives_identical_report(self, rng):
        protocol = DBitFlipPM(k=100, eps_inf=2.0, b=10, d=5)
        client = protocol.create_client(rng)
        # Values 0 and 5 fall in bucket 0; the memoized response must be reused.
        first = client.report(0, rng)
        second = client.report(5, rng)
        assert first.bits == second.bits

    def test_memoization_bounded_by_d_plus_one(self, rng):
        protocol = DBitFlipPM(k=60, eps_inf=2.0, b=20, d=2)
        client = protocol.create_client(rng)
        for value in range(0, 60, 3):
            client.report(value, rng)
        assert client.distinct_memoized <= 3
        assert client.realized_budget() <= protocol.worst_case_budget()

    def test_equal_width_bucketization(self):
        buckets = equal_width_buckets(np.arange(10), k=10, b=5)
        assert list(buckets) == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]

    def test_invalid_configurations_rejected(self):
        with pytest.raises(ParameterError):
            DBitFlipPM(k=10, eps_inf=2.0, b=20)
        with pytest.raises(ParameterError):
            DBitFlipPM(k=10, eps_inf=2.0, b=5, d=6)
        with pytest.raises(ParameterError):
            DBitFlipPM(k=10, eps_inf=-1.0)

    def test_name_with_d(self):
        assert DBitFlipPM(k=10, eps_inf=1.0, d=1).name_with_d == "1BitFlipPM"
        assert DBitFlipPM(k=10, eps_inf=1.0, d=10).name_with_d == "bBitFlipPM"

    def test_bucket_frequencies_aggregation(self):
        protocol = DBitFlipPM(k=4, eps_inf=1.0, b=2)
        aggregated = protocol.bucket_frequencies(np.asarray([0.1, 0.2, 0.3, 0.4]))
        assert np.allclose(aggregated, [0.3, 0.7])

    def test_bucket_frequencies_validates_length(self):
        protocol = DBitFlipPM(k=4, eps_inf=1.0, b=2)
        with pytest.raises(EncodingError):
            protocol.bucket_frequencies(np.asarray([0.5, 0.5]))


class TestProtocolMetadata:
    def test_worst_case_budget_table1(self):
        assert LGRR(20, 2.0, 1.0).worst_case_budget() == pytest.approx(40.0)
        assert LSUE(20, 2.0, 1.0).worst_case_budget() == pytest.approx(40.0)
        assert BiLOLOHA(20, 2.0, 1.0).worst_case_budget() == pytest.approx(4.0)
        assert DBitFlipPM(20, 2.0, d=1).worst_case_budget() == pytest.approx(4.0)
        assert DBitFlipPM(20, 2.0, d=20).worst_case_budget() == pytest.approx(40.0)

    def test_communication_bits_table1(self):
        assert LSUE(20, 2.0, 1.0).communication_bits == 20.0
        assert LGRR(20, 2.0, 1.0).communication_bits == 5.0
        assert DBitFlipPM(20, 2.0, d=3).communication_bits == 3.0

    def test_estimation_domain_size(self):
        assert LSUE(20, 2.0, 1.0).estimation_domain_size == 20
        assert DBitFlipPM(20, 2.0, b=5, d=1).estimation_domain_size == 5

    def test_protocols_require_budget_ordering(self):
        with pytest.raises(ParameterError):
            LGRR(10, 1.0, 1.0)
        with pytest.raises(ParameterError):
            LOLOHA(10, 1.0, 2.0)
