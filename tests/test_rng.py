"""Unit tests for the RNG-stream derivation utilities."""

import numpy as np
import pytest

from repro.rng import bit_generator_state, derive_generators, iter_seeds, spawn_child, stream_for


class TestDeriveGenerators:
    def test_returns_requested_count(self):
        assert len(derive_generators(0, 5)) == 5

    def test_zero_count_is_allowed(self):
        assert derive_generators(0, 0) == []

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            derive_generators(0, -1)

    def test_same_seed_gives_same_streams(self):
        first = [g.integers(0, 10**6) for g in derive_generators(123, 4)]
        second = [g.integers(0, 10**6) for g in derive_generators(123, 4)]
        assert first == second

    def test_streams_are_distinct(self):
        draws = [g.integers(0, 2**62) for g in derive_generators(7, 8)]
        assert len(set(draws)) == len(draws)

    def test_accepts_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        generators = derive_generators(seq, 2)
        assert all(isinstance(g, np.random.Generator) for g in generators)

    def test_accepts_existing_generator(self):
        generators = derive_generators(np.random.default_rng(0), 3)
        assert len(generators) == 3


class TestStreamFor:
    def test_same_labels_same_stream(self):
        a = stream_for(9, 3, 4).integers(0, 10**9)
        b = stream_for(9, 3, 4).integers(0, 10**9)
        assert a == b

    def test_different_labels_different_stream(self):
        a = stream_for(9, 3, 4).integers(0, 10**9)
        b = stream_for(9, 3, 5).integers(0, 10**9)
        assert a != b


class TestHelpers:
    def test_spawn_child_returns_generator(self):
        assert isinstance(spawn_child(1), np.random.Generator)

    def test_iter_seeds_deterministic(self):
        assert list(iter_seeds(3, 4)) == list(iter_seeds(3, 4))

    def test_bit_generator_state_has_state_key(self):
        state = bit_generator_state(0)
        assert "state" in state
