"""Tests for the CollectorSession streaming server façade."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ParameterError
from repro.longitudinal import LOSUE
from repro.service import CollectorSession
from repro.simulation import simulate_protocol_sharded, simulate_with_clients
from repro.simulation.runner import run_shard_task, ShardTask
from repro.specs import ProtocolSpec


def _spec(k: int) -> ProtocolSpec:
    return ProtocolSpec(name="L-OSUE", k=k, eps_inf=2.0, eps_1=1.0)


def _collect_reports(protocol, dataset, rng):
    """One client per user; returns reports[t][i] like a real collection."""
    generator = np.random.default_rng(rng)
    clients = [protocol.create_client(generator) for _ in range(dataset.n_users)]
    rounds = []
    for values_t in dataset.iter_rounds():
        rounds.append(
            [c.report(int(v), generator) for c, v in zip(clients, values_t)]
        )
    return rounds


class TestIncrementalCollection:
    def test_out_of_order_batches_match_batch_reference(self, tiny_dataset):
        spec = _spec(tiny_dataset.k)
        session = CollectorSession(spec, n_rounds=tiny_dataset.n_rounds)
        reference = simulate_with_clients(
            session.protocol, tiny_dataset, rng=np.random.default_rng(3)
        )
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=3)

        # Feed the same reports out of round order, split into uneven batches.
        order = list(reversed(range(tiny_dataset.n_rounds)))
        for t in order:
            reports = rounds[t]
            mid = len(reports) // 3
            session.submit_reports(t, reports[:mid])
            session.submit_reports(t, reports[mid:])

        assert session.is_complete
        assert session.total_reports == tiny_dataset.n_users * tiny_dataset.n_rounds
        # Same reports -> same support counts -> identical debiased estimates.
        np.testing.assert_allclose(session.estimates(), reference.estimates)

    def test_running_estimate_uses_partial_sample_size(self, tiny_dataset):
        session = CollectorSession(_spec(tiny_dataset.k), n_rounds=2)
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=0)
        half = tiny_dataset.n_users // 2
        estimate = session.submit_reports(0, rounds[0][:half])
        assert estimate.n_reports == half
        # A partial round still produces a (roughly) normalized histogram
        # because the estimator is scaled by the received-report count.
        assert estimate.frequencies.sum() == pytest.approx(1.0, abs=0.35)
        full = session.submit_reports(0, rounds[0][half:])
        assert full.n_reports == tiny_dataset.n_users

    def test_estimates_marks_missing_rounds_nan(self, tiny_dataset):
        session = CollectorSession(_spec(tiny_dataset.k), n_rounds=3)
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=1)
        session.submit_reports(1, rounds[1])
        matrix = session.estimates()
        assert np.isnan(matrix[0]).all() and np.isnan(matrix[2]).all()
        assert np.isfinite(matrix[1]).all()
        assert list(session.rounds_observed) == [1]

    def test_submit_counts_fast_path_matches_reports(self, tiny_dataset):
        spec = _spec(tiny_dataset.k)
        by_reports = CollectorSession(spec, n_rounds=1)
        by_counts = CollectorSession(spec, n_rounds=1)
        rounds = _collect_reports(by_reports.protocol, tiny_dataset, rng=2)
        by_reports.submit_reports(0, rounds[0])
        counts = by_reports.protocol.support_counts(rounds[0])
        by_counts.submit_counts(0, counts, n_reports=len(rounds[0]))
        np.testing.assert_allclose(by_counts.estimates(), by_reports.estimates())

    def test_absorb_shard_summaries_matches_sharded_runner(self, tiny_dataset):
        spec = _spec(tiny_dataset.k)
        reference = simulate_protocol_sharded(spec, tiny_dataset, n_shards=3, rng=5)
        from repro.rng import derive_seed_sequences

        session = CollectorSession(spec, n_rounds=tiny_dataset.n_rounds)
        seeds = derive_seed_sequences(5, 3)
        boundaries = np.linspace(0, tiny_dataset.n_users, 4).astype(int)
        for shard, seed in enumerate(seeds):
            summary = run_shard_task(
                ShardTask(
                    spec=spec,
                    dataset_name=tiny_dataset.name,
                    start=int(boundaries[shard]),
                    stop=int(boundaries[shard + 1]),
                    seed=seed,
                ),
                tiny_dataset,
            )
            session.absorb_summary(summary)
        np.testing.assert_allclose(session.estimates(), reference.estimates)


class TestSessionValidation:
    """Fail-fast guards: malformed input raises ParameterError naming the
    offending value, never a downstream numpy error."""

    def test_round_index_out_of_range(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        client = session.protocol.create_client(rng=0)
        with pytest.raises(ParameterError, match=r"\[0, 2\), got 2"):
            session.submit_reports(2, [client.report(0, rng=1)])

    def test_negative_round_index_rejected(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        client = session.protocol.create_client(rng=0)
        with pytest.raises(ParameterError, match="got -1"):
            session.submit_reports(-1, [client.report(0, rng=1)])

    def test_non_integer_round_index_rejected(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        with pytest.raises(ParameterError, match="integer"):
            session.submit_counts(1.5, np.zeros(8), n_reports=3)
        with pytest.raises(ParameterError, match="integer"):
            session.submit_counts(True, np.zeros(8), n_reports=3)

    def test_empty_batch_rejected(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        with pytest.raises(ParameterError, match="empty"):
            session.submit_reports(0, [])

    def test_counts_shape_checked(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        with pytest.raises(ParameterError, match=r"\(8,\).*\(5,\)"):
            session.submit_counts(0, np.zeros(5), n_reports=3)

    def test_shape_mismatched_reports_raise_parameter_error(self):
        # UE reports of the wrong width used to surface as an EncodingError
        # (or worse, a numpy broadcast failure) from deep inside the fold.
        session = CollectorSession(_spec(8), n_rounds=2)
        with pytest.raises(ParameterError, match="L-OSUE"):
            session.submit_reports(0, [np.zeros(5, dtype=np.int64)])

    def test_garbage_reports_raise_parameter_error(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        with pytest.raises(ParameterError, match="does not fit protocol"):
            session.submit_reports(0, [object(), object()])

    def test_estimate_of_unobserved_round_rejected(self):
        session = CollectorSession(_spec(8), n_rounds=2)
        with pytest.raises(AggregationError, match="any reports"):
            session.estimate(0)

    def test_protocol_object_sessions_work_but_cannot_checkpoint(self, tmp_path):
        session = CollectorSession(LOSUE(8, 2.0, 1.0), n_rounds=2)
        client = session.protocol.create_client(rng=0)
        session.submit_reports(0, [client.report(1, rng=1)])
        with pytest.raises(ParameterError, match="ProtocolSpec"):
            session.checkpoint(tmp_path / "ck.json")


class TestCheckpointRestore:
    def test_round_trip_preserves_state_and_estimates(self, tiny_dataset, tmp_path):
        spec = _spec(tiny_dataset.k)
        session = CollectorSession(spec, n_rounds=tiny_dataset.n_rounds)
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=4)
        session.submit_reports(0, rounds[0])
        session.submit_reports(2, rounds[2][:50])

        path = session.checkpoint(tmp_path / "session.json")
        restored = CollectorSession.restore(path)
        assert restored.spec == spec
        assert restored.n_rounds == session.n_rounds
        np.testing.assert_array_equal(
            restored.reports_per_round, session.reports_per_round
        )
        np.testing.assert_allclose(restored.estimates(), session.estimates())

        # The restored session keeps collecting where the original stopped.
        restored.submit_reports(2, rounds[2][50:])
        session.submit_reports(2, rounds[2][50:])
        np.testing.assert_allclose(restored.estimates(), session.estimates())

    def test_restore_missing_file_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="no session checkpoint"):
            CollectorSession.restore(tmp_path / "absent.json")

    def test_restore_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        with pytest.raises(ParameterError, match="invalid session checkpoint"):
            CollectorSession.restore(path)

    def test_restore_wrong_format_rejected(self, tmp_path):
        path = tmp_path / "v99.json"
        path.write_text('{"format": 99}', encoding="utf-8")
        with pytest.raises(ParameterError, match="unsupported checkpoint format"):
            CollectorSession.restore(path)


class TestNpzCheckpoint:
    def test_npz_round_trip_preserves_state_and_estimates(
        self, tiny_dataset, tmp_path
    ):
        spec = _spec(tiny_dataset.k)
        session = CollectorSession(spec, n_rounds=tiny_dataset.n_rounds)
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=4)
        session.submit_reports(0, rounds[0])
        session.submit_reports(2, rounds[2][:50])

        path = session.checkpoint(tmp_path / "session.npz")
        restored = CollectorSession.restore(path)
        assert restored.spec == spec
        assert restored.n_rounds == session.n_rounds
        np.testing.assert_array_equal(
            restored.reports_per_round, session.reports_per_round
        )
        # Binary round trip: bit-identical, not merely close.
        np.testing.assert_array_equal(
            restored.support_counts(0), session.support_counts(0)
        )
        restored.submit_reports(2, rounds[2][50:])
        session.submit_reports(2, rounds[2][50:])
        np.testing.assert_array_equal(restored.estimates(), session.estimates())

    def test_restore_auto_detects_format_regardless_of_suffix(
        self, tiny_dataset, tmp_path
    ):
        """Detection is content-based (zip magic), not name-based."""
        spec = _spec(tiny_dataset.k)
        session = CollectorSession(spec, n_rounds=tiny_dataset.n_rounds)
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=4)
        session.submit_reports(1, rounds[1])
        npz_path = session.checkpoint(tmp_path / "chk.npz")
        disguised = tmp_path / "chk.json"
        disguised.write_bytes(npz_path.read_bytes())
        restored = CollectorSession.restore(disguised)
        np.testing.assert_array_equal(
            restored.reports_per_round, session.reports_per_round
        )

    def test_npz_checkpoint_is_smaller_than_json_for_wide_state(self, tmp_path):
        spec = ProtocolSpec(name="L-OSUE", k=128, eps_inf=2.0, eps_1=1.0)
        session = CollectorSession(spec, n_rounds=64)
        rng = np.random.default_rng(0)
        for t in range(64):
            session.submit_counts(t, rng.integers(0, 500, size=128), n_reports=1000)
        json_path = session.checkpoint(tmp_path / "big.json")
        npz_path = session.checkpoint(tmp_path / "big.npz")
        assert npz_path.stat().st_size < json_path.stat().st_size

    def test_corrupt_npz_rejected(self, tmp_path):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"PK\x03\x04 garbage that is not a real zip")
        with pytest.raises(ParameterError, match="invalid session checkpoint"):
            CollectorSession.restore(bad)

    def test_no_temp_files_left_behind(self, tiny_dataset, tmp_path):
        spec = _spec(tiny_dataset.k)
        session = CollectorSession(spec, n_rounds=tiny_dataset.n_rounds)
        rounds = _collect_reports(session.protocol, tiny_dataset, rng=4)
        session.submit_reports(0, rounds[0])
        session.checkpoint(tmp_path / "a.json")
        session.checkpoint(tmp_path / "a.npz")
        assert sorted(p.name for p in tmp_path.iterdir()) == ["a.json", "a.npz"]
