"""Tests for the variance formulas (Eq. 4 / Eq. 5) and the optimal-g selection (Eq. 6)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.longitudinal import optimal_g, optimal_g_numeric
from repro.longitudinal.parameters import (
    l_osue_parameters,
    l_sue_parameters,
    loloha_parameters,
)
from repro.longitudinal.variance import (
    approximate_variance,
    dbitflip_closed_form_variance,
    exact_variance,
    l_osue_closed_form_variance,
)


class TestExactVariance:
    def test_approximate_is_exact_at_zero_frequency(self):
        params = l_osue_parameters(2.0, 1.0)
        assert approximate_variance(params, 1000) == pytest.approx(
            exact_variance(params, 1000, 0.0)
        )

    def test_variance_scales_inversely_with_n(self):
        params = l_sue_parameters(2.0, 1.0)
        assert exact_variance(params, 2000, 0.1) == pytest.approx(
            exact_variance(params, 1000, 0.1) / 2.0
        )

    def test_variance_positive_for_valid_frequencies(self):
        params = l_sue_parameters(2.0, 1.0)
        for f in (0.0, 0.1, 0.5, 0.9):
            assert exact_variance(params, 100, f) > 0

    def test_rejects_invalid_frequency(self):
        params = l_sue_parameters(2.0, 1.0)
        with pytest.raises(ParameterError):
            exact_variance(params, 100, 1.5)

    def test_rejects_non_positive_n(self):
        params = l_sue_parameters(2.0, 1.0)
        with pytest.raises(ParameterError):
            exact_variance(params, 0, 0.1)


class TestClosedForms:
    @pytest.mark.parametrize("eps_inf,alpha", [(1.0, 0.5), (2.0, 0.5), (4.0, 0.4)])
    def test_l_osue_closed_form_matches_generic_formula(self, eps_inf, alpha):
        eps_1 = alpha * eps_inf
        params = l_osue_parameters(eps_inf, eps_1)
        generic = approximate_variance(params, 10_000)
        closed = l_osue_closed_form_variance(eps_1, 10_000)
        assert generic == pytest.approx(closed, rel=1e-6)

    def test_dbitflip_closed_form_decreases_with_d(self):
        assert dbitflip_closed_form_variance(2.0, b=100, d=100, n=1000) < (
            dbitflip_closed_form_variance(2.0, b=100, d=1, n=1000)
        )

    def test_dbitflip_closed_form_rejects_d_above_b(self):
        with pytest.raises(ParameterError):
            dbitflip_closed_form_variance(2.0, b=10, d=11, n=1000)


class TestVarianceOrdering:
    """Qualitative orderings reported in Section 4 / Figure 2."""

    def test_ololoha_close_to_l_osue(self):
        for eps_inf in (1.0, 2.0, 3.0, 4.0, 5.0):
            eps_1 = 0.5 * eps_inf
            g = optimal_g(eps_inf, eps_1)
            v_ololoha = approximate_variance(loloha_parameters(eps_inf, eps_1, g), 10_000)
            v_losue = approximate_variance(l_osue_parameters(eps_inf, eps_1), 10_000)
            assert v_ololoha <= 1.6 * v_losue

    def test_biloloha_not_better_than_ololoha(self):
        for eps_inf in (1.0, 3.0, 5.0):
            eps_1 = 0.6 * eps_inf
            g = optimal_g(eps_inf, eps_1)
            v_bi = approximate_variance(loloha_parameters(eps_inf, eps_1, 2), 10_000)
            v_opt = approximate_variance(loloha_parameters(eps_inf, eps_1, g), 10_000)
            assert v_opt <= v_bi + 1e-15

    def test_all_protocols_similar_in_high_privacy_regime(self):
        eps_inf, eps_1 = 0.5, 0.15
        values = [
            approximate_variance(l_sue_parameters(eps_inf, eps_1), 10_000),
            approximate_variance(l_osue_parameters(eps_inf, eps_1), 10_000),
            approximate_variance(loloha_parameters(eps_inf, eps_1, 2), 10_000),
        ]
        assert max(values) / min(values) < 1.35


class TestOptimalG:
    def test_high_privacy_gives_binary(self):
        assert optimal_g(0.5, 0.05) == 2
        assert optimal_g(1.0, 0.1) == 2

    def test_low_privacy_gives_larger_g(self):
        assert optimal_g(5.0, 3.0) > 2

    def test_monotone_in_eps_inf_for_fixed_alpha(self):
        values = [optimal_g(eps, 0.6 * eps) for eps in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0)]
        assert values == sorted(values)

    def test_matches_numeric_minimizer(self):
        for eps_inf in (0.5, 1.0, 2.0, 3.0, 4.0, 5.0):
            for alpha in (0.3, 0.5, 0.6):
                closed = optimal_g(eps_inf, alpha * eps_inf)
                numeric = optimal_g_numeric(eps_inf, alpha * eps_inf, g_max=64)
                assert abs(closed - numeric) <= 1

    def test_requires_valid_budget_pair(self):
        with pytest.raises(ParameterError):
            optimal_g(1.0, 1.0)

    @given(
        eps_inf=st.floats(min_value=0.3, max_value=5.0),
        alpha=st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=60, deadline=None)
    def test_optimal_g_always_at_least_two(self, eps_inf, alpha):
        assert optimal_g(eps_inf, alpha * eps_inf) >= 2

    @given(
        eps_inf=st.floats(min_value=0.3, max_value=4.0),
        alpha=st.floats(min_value=0.2, max_value=0.7),
        g_offset=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_optimal_g_beats_other_choices(self, eps_inf, alpha, g_offset):
        """The closed-form g never loses materially to g + offset.

        Eq. (6) rounds a continuous optimum to the nearest integer, so at the
        boundary between two integers the neighbour can be marginally better;
        a few percent of slack absorbs that rounding effect.
        """
        eps_1 = alpha * eps_inf
        best = optimal_g(eps_inf, eps_1)
        best_variance = approximate_variance(loloha_parameters(eps_inf, eps_1, best), 1000)
        other_variance = approximate_variance(
            loloha_parameters(eps_inf, eps_1, best + g_offset), 1000
        )
        assert best_variance <= other_variance * 1.05
