"""Tests for the memoization table and the longitudinal privacy odometer."""

import numpy as np
import pytest

from repro.exceptions import PrivacyAccountingError
from repro.longitudinal import PrivacyOdometer, realized_budget_curve
from repro.longitudinal.memoization import MemoizationTable


class TestMemoizationTable:
    def test_factory_called_once_per_key(self):
        table = MemoizationTable()
        calls = []
        value, created = table.get_or_create("a", lambda: calls.append(1) or 7)
        assert created and value == 7
        value, created = table.get_or_create("a", lambda: calls.append(1) or 9)
        assert not created and value == 7
        assert len(calls) == 1

    def test_distinct_keys_and_order(self):
        table = MemoizationTable()
        table.get_or_create("b", lambda: 1)
        table.get_or_create("a", lambda: 2)
        table.get_or_create("b", lambda: 3)
        assert table.distinct_keys == 2
        assert table.first_use_order == ("b", "a")

    def test_contains_and_len(self):
        table = MemoizationTable()
        table.get_or_create(5, lambda: "x")
        assert 5 in table
        assert 6 not in table
        assert len(table) == 1

    def test_max_keys_enforced(self):
        table = MemoizationTable(max_keys=2)
        table.get_or_create(1, lambda: 1)
        table.get_or_create(2, lambda: 2)
        with pytest.raises(RuntimeError):
            table.get_or_create(3, lambda: 3)

    def test_snapshot_is_a_copy(self):
        table = MemoizationTable()
        table.get_or_create("a", lambda: 1)
        snapshot = table.snapshot()
        snapshot["a"] = 99
        value, _ = table.get_or_create("a", lambda: 0)
        assert value == 1


class TestPrivacyOdometer:
    def test_charging_fresh_and_repeated_keys(self):
        odometer = PrivacyOdometer(eps_inf=1.5)
        assert odometer.charge("u1", "a") is True
        assert odometer.charge("u1", "a") is False
        assert odometer.charge("u1", "b") is True
        assert odometer.distinct_keys("u1") == 2
        assert odometer.realized_epsilon("u1") == pytest.approx(3.0)

    def test_unknown_user_has_zero_budget(self):
        odometer = PrivacyOdometer(eps_inf=1.0)
        assert odometer.realized_epsilon("ghost") == 0.0

    def test_worst_case_bound_enforced(self):
        odometer = PrivacyOdometer(eps_inf=1.0, worst_case_keys=2)
        odometer.charge("u", "a")
        odometer.charge("u", "b")
        with pytest.raises(PrivacyAccountingError):
            odometer.charge("u", "c")

    def test_worst_case_epsilon(self):
        assert PrivacyOdometer(2.0, worst_case_keys=3).worst_case_epsilon() == 6.0
        assert PrivacyOdometer(2.0).worst_case_epsilon() is None

    def test_average_epsilon_over_population(self):
        odometer = PrivacyOdometer(eps_inf=1.0)
        odometer.charge("u1", "a")
        odometer.charge("u2", "a")
        odometer.charge("u2", "b")
        assert odometer.average_epsilon() == pytest.approx(1.5)
        # Including a user that never consumed budget lowers the average.
        assert odometer.average_epsilon(["u1", "u2", "u3"]) == pytest.approx(1.0)

    def test_average_of_empty_population_raises(self):
        with pytest.raises(PrivacyAccountingError):
            PrivacyOdometer(1.0).average_epsilon()

    def test_realized_epsilon_by_round_is_cumulative(self):
        odometer = PrivacyOdometer(eps_inf=2.0)
        odometer.charge("u", "a", round_index=0)
        odometer.charge("u", "b", round_index=3)
        curve = odometer.realized_epsilon_by_round("u", 5)
        assert list(curve) == [2.0, 2.0, 2.0, 4.0, 4.0]

    def test_budget_curve_averages_users(self):
        odometer = PrivacyOdometer(eps_inf=1.0)
        odometer.charge("u1", "a", round_index=0)
        odometer.charge("u2", "a", round_index=1)
        curve = realized_budget_curve(odometer, ["u1", "u2"], 3)
        assert list(curve) == [0.5, 1.0, 1.0]

    def test_budget_curve_requires_users(self):
        with pytest.raises(PrivacyAccountingError):
            realized_budget_curve(PrivacyOdometer(1.0), [], 3)
