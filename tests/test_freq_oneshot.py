"""Tests for the one-shot LDP frequency oracles (GRR, UE, LH)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import AggregationError, DomainError, EncodingError, ParameterError
from repro.freq_oneshot import (
    BLH,
    GRR,
    OLH,
    OUE,
    SUE,
    LocalHashing,
    UnaryEncoding,
    grr_parameters,
    optimal_lh_g,
    oue_parameters,
    sue_parameters,
    unbiased_estimate,
)
from repro.freq_oneshot.local_hashing import LHReport


class TestParameterDerivations:
    @pytest.mark.parametrize("epsilon,k", [(0.5, 2), (1.0, 10), (3.0, 100)])
    def test_grr_parameters_satisfy_ldp_ratio(self, epsilon, k):
        params = grr_parameters(epsilon, k)
        assert params.p / params.q == pytest.approx(math.exp(epsilon))
        assert params.p + (k - 1) * params.q == pytest.approx(1.0)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_sue_parameters_are_symmetric(self, epsilon):
        params = sue_parameters(epsilon)
        assert params.p + params.q == pytest.approx(1.0)
        realized = math.log(params.p * (1 - params.q) / ((1 - params.p) * params.q))
        assert realized == pytest.approx(epsilon)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_oue_parameters_realize_epsilon(self, epsilon):
        params = oue_parameters(epsilon)
        assert params.p == pytest.approx(0.5)
        realized = math.log(params.p * (1 - params.q) / ((1 - params.p) * params.q))
        assert realized == pytest.approx(epsilon)

    def test_unbiased_estimate_requires_gap(self):
        with pytest.raises(ParameterError):
            unbiased_estimate(np.asarray([1.0]), 10, 0.3, 0.3)

    def test_unbiased_estimate_matches_manual_computation(self):
        counts = np.asarray([30.0, 70.0])
        estimate = unbiased_estimate(counts, 100, 0.75, 0.25)
        assert estimate[0] == pytest.approx((30 - 25) / 50)
        assert estimate[1] == pytest.approx((70 - 25) / 50)


class TestGRR:
    def test_reports_stay_in_domain(self, rng):
        oracle = GRR(k=10, epsilon=1.0)
        reports = oracle.privatize_batch(rng.integers(0, 10, size=500), rng)
        assert reports.min() >= 0 and reports.max() < 10

    def test_privatize_rejects_out_of_domain(self):
        oracle = GRR(k=10, epsilon=1.0)
        with pytest.raises(DomainError):
            oracle.privatize(10)

    def test_estimation_is_unbiased(self):
        oracle = GRR(k=5, epsilon=2.0)
        rng = np.random.default_rng(0)
        true = np.asarray([0.5, 0.2, 0.1, 0.1, 0.1])
        values = rng.choice(5, size=20_000, p=true)
        reports = oracle.privatize_batch(values, rng)
        estimate = oracle.estimate_frequencies(reports)
        assert np.allclose(estimate, true, atol=0.03)

    def test_keep_probability_scales_with_epsilon(self):
        low = GRR(k=10, epsilon=0.5)
        high = GRR(k=10, epsilon=5.0)
        assert high.estimation_parameters.p > low.estimation_parameters.p

    def test_empty_reports_raise(self):
        oracle = GRR(k=4, epsilon=1.0)
        with pytest.raises(AggregationError):
            oracle.estimate_frequencies([])

    def test_variance_decreases_with_n(self):
        oracle = GRR(k=10, epsilon=1.0)
        assert oracle.estimator_variance(10_000) < oracle.estimator_variance(100)


class TestUnaryEncoding:
    def test_report_shape_and_dtype(self, rng):
        oracle = SUE(k=8, epsilon=1.0)
        report = oracle.privatize(3, rng)
        assert report.shape == (8,)
        assert set(np.unique(report)).issubset({0, 1})

    def test_batch_shape(self, rng):
        oracle = OUE(k=8, epsilon=1.0)
        reports = oracle.privatize_batch(rng.integers(0, 8, size=100), rng)
        assert reports.shape == (100, 8)

    def test_estimation_is_unbiased_sue(self):
        oracle = SUE(k=6, epsilon=2.0)
        rng = np.random.default_rng(1)
        true = np.asarray([0.3, 0.3, 0.2, 0.1, 0.05, 0.05])
        values = rng.choice(6, size=20_000, p=true)
        reports = oracle.privatize_batch(values, rng)
        assert np.allclose(oracle.estimate_frequencies(reports), true, atol=0.03)

    def test_estimation_is_unbiased_oue(self):
        oracle = OUE(k=6, epsilon=2.0)
        rng = np.random.default_rng(2)
        true = np.asarray([0.3, 0.3, 0.2, 0.1, 0.05, 0.05])
        values = rng.choice(6, size=20_000, p=true)
        reports = oracle.privatize_batch(values, rng)
        assert np.allclose(oracle.estimate_frequencies(reports), true, atol=0.03)

    def test_oue_variance_not_worse_than_sue(self):
        sue = SUE(k=20, epsilon=1.0)
        oue = OUE(k=20, epsilon=1.0)
        assert oue.estimator_variance(1000) <= sue.estimator_variance(1000) + 1e-12

    def test_wrong_report_length_raises(self):
        oracle = SUE(k=8, epsilon=1.0)
        with pytest.raises(EncodingError):
            oracle.support_counts(np.zeros((3, 9), dtype=np.uint8))

    def test_from_probabilities_requires_p_above_q(self):
        with pytest.raises(ParameterError):
            UnaryEncoding.from_probabilities(k=4, p=0.2, q=0.5)

    def test_from_probabilities_recovers_epsilon(self):
        oracle = UnaryEncoding.from_probabilities(k=4, p=0.75, q=0.25)
        assert oracle.epsilon == pytest.approx(math.log(9.0))


class TestLocalHashing:
    def test_optimal_g_formula(self):
        assert optimal_lh_g(1.0) == round(math.e + 1)
        assert optimal_lh_g(0.1) >= 2

    def test_report_structure(self, rng):
        oracle = OLH(k=50, epsilon=1.0)
        report = oracle.privatize(7, rng)
        assert isinstance(report, LHReport)
        assert 0 <= report.value < oracle.g

    def test_blh_uses_binary_domain(self):
        assert BLH(k=50, epsilon=1.0).g == 2

    def test_estimation_is_unbiased(self):
        oracle = OLH(k=10, epsilon=2.0)
        rng = np.random.default_rng(3)
        true = np.asarray([0.4, 0.2, 0.1] + [0.3 / 7] * 7)
        values = rng.choice(10, size=8_000, p=true)
        reports = oracle.privatize_batch(values, rng)
        assert np.allclose(oracle.estimate_frequencies(reports), true, atol=0.05)

    def test_mismatched_family_size_raises(self):
        from repro.hashing import MultiplyShiftHashFamily

        with pytest.raises(EncodingError):
            LocalHashing(k=10, epsilon=1.0, g=4, family=MultiplyShiftHashFamily(3))

    def test_support_counts_rejects_foreign_reports(self):
        oracle = BLH(k=10, epsilon=1.0)
        with pytest.raises(EncodingError):
            oracle.support_counts([42])


class TestPropertyBased:
    @given(
        epsilon=st.floats(min_value=0.1, max_value=6.0),
        k=st.integers(min_value=2, max_value=200),
    )
    @settings(max_examples=60, deadline=None)
    def test_grr_probabilities_are_valid(self, epsilon, k):
        params = grr_parameters(epsilon, k)
        assert 0 < params.q < params.p < 1
        assert params.p + (k - 1) * params.q == pytest.approx(1.0)

    @given(epsilon=st.floats(min_value=0.1, max_value=6.0))
    @settings(max_examples=60, deadline=None)
    def test_ue_probabilities_realize_epsilon(self, epsilon):
        for params in (sue_parameters(epsilon), oue_parameters(epsilon)):
            realized = math.log(params.p * (1 - params.q) / ((1 - params.p) * params.q))
            assert realized == pytest.approx(epsilon, rel=1e-9)
