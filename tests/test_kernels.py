"""Tests for the pure perturbation kernels of ``repro.simulation.kernels``."""

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.longitudinal.base import longitudinal_estimate
from repro.longitudinal.parameters import ChainedParameters
from repro.simulation.kernels import (
    chained_debias_kernel,
    dbitflip_fresh_bits_kernel,
    debias_kernel,
    grr_kernel,
    grr_mixing_counts_kernel,
    one_hot_kernel,
    packed_column_sums_kernel,
    sample_buckets_kernel,
    support_from_hashes_kernel,
    ue_binomial_counts_kernel,
    ue_flip_kernel,
    ue_fresh_rows_kernel,
)


class TestGRRKernel:
    def test_output_stays_in_domain(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 16, size=5_000)
        out = grr_kernel(values, 16, 0.5, np.random.default_rng(1))
        assert out.min() >= 0 and out.max() < 16

    def test_deterministic_given_seed(self):
        values = np.arange(100) % 7
        a = grr_kernel(values, 7, 0.6, np.random.default_rng(3))
        b = grr_kernel(values, 7, 0.6, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_keep_rate_matches_probability(self):
        values = np.zeros(50_000, dtype=np.int64)
        out = grr_kernel(values, 10, 0.7, np.random.default_rng(5))
        kept = (out == values).mean()
        assert kept == pytest.approx(0.7, abs=0.02)

    def test_noise_uniform_over_other_symbols(self):
        values = np.full(90_000, 4, dtype=np.int64)
        out = grr_kernel(values, 5, 0.0, np.random.default_rng(7))
        counts = np.bincount(out, minlength=5)
        assert counts[4] == 0
        assert counts[:4].min() > 0.2 * 90_000 / 4

    def test_single_symbol_domain_rejected_clearly(self):
        """domain=1 raises a ParameterError, not numpy's 'high <= 0'."""
        with pytest.raises(ParameterError, match="at least 2 symbols"):
            grr_kernel(np.zeros(4, dtype=np.int64), 1, 0.5, np.random.default_rng(0))
        with pytest.raises(ParameterError, match="at least 2 symbols"):
            grr_mixing_counts_kernel(np.asarray([4]), 1, 0.5, np.random.default_rng(0))


class TestGRRMixingCountsKernel:
    """Aggregated GRR round sampling vs. per-user GRR reports."""

    def test_matches_per_user_grr_distribution(self):
        """Per-symbol mean and variance agree with bincounted GRR reports."""
        domain, p = 6, 0.65
        memoized = np.repeat(np.arange(domain), [0, 50, 100, 200, 400, 250])
        symbol_counts = np.bincount(memoized, minlength=domain)
        n_trials = 3_000
        rng = np.random.default_rng(41)
        aggregated = np.stack(
            [
                grr_mixing_counts_kernel(symbol_counts, domain, p, rng)
                for _ in range(n_trials)
            ]
        )
        per_user = np.stack(
            [
                np.bincount(grr_kernel(memoized, domain, p, rng), minlength=domain)
                for _ in range(n_trials)
            ]
        )
        assert np.allclose(aggregated.mean(axis=0), per_user.mean(axis=0), rtol=0.05, atol=2.0)
        assert np.allclose(aggregated.var(axis=0), per_user.var(axis=0), rtol=0.2, atol=4.0)

    def test_matches_closed_form_marginals(self):
        domain, p = 4, 0.7
        q = (1 - p) / (domain - 1)
        symbol_counts = np.asarray([0, 300, 500, 200])
        n_users = symbol_counts.sum()
        rng = np.random.default_rng(43)
        draws = np.stack(
            [grr_mixing_counts_kernel(symbol_counts, domain, p, rng) for _ in range(4_000)]
        )
        expected_mean = symbol_counts * p + (n_users - symbol_counts) * q
        expected_var = symbol_counts * p * (1 - p) + (n_users - symbol_counts) * q * (1 - q)
        assert np.allclose(draws.mean(axis=0), expected_mean, rtol=0.03, atol=1.0)
        assert np.allclose(draws.var(axis=0), expected_var, rtol=0.15, atol=2.0)

    def test_deterministic_given_seed(self):
        counts = np.asarray([10, 20, 30])
        a = grr_mixing_counts_kernel(counts, 3, 0.6, np.random.default_rng(5))
        b = grr_mixing_counts_kernel(counts, 3, 0.6, np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestPackedColumnSumsKernel:
    @pytest.mark.parametrize("n_rows,n_bits", [(1, 1), (7, 8), (40, 11), (513, 64), (200, 130)])
    def test_matches_unpacked_ground_truth(self, n_rows, n_bits):
        rng = np.random.default_rng(n_rows + n_bits)
        bits = (rng.random((n_rows, n_bits)) < 0.4).astype(np.uint8)
        packed = np.packbits(bits, axis=1)
        assert np.array_equal(
            packed_column_sums_kernel(packed, n_bits),
            bits.sum(axis=0, dtype=np.int64),
        )

    def test_empty_rows(self):
        assert np.array_equal(
            packed_column_sums_kernel(np.zeros((0, 3), dtype=np.uint8), 20),
            np.zeros(20, dtype=np.int64),
        )

    def test_batched_accumulation_matches_single_pass(self, monkeypatch):
        """Row batching is an implementation detail: tiny batches, same sums
        (and lanes can never be pushed past their 255-row carry limit)."""
        import repro.simulation.kernels as kernels

        rng = np.random.default_rng(99)
        bits = (rng.random((1_000, 23)) < 0.9).astype(np.uint8)
        packed = np.packbits(bits, axis=1)
        expected = bits.sum(axis=0, dtype=np.int64)
        monkeypatch.setattr(kernels, "_SWAR_BATCH_ROWS", 8)
        assert np.array_equal(packed_column_sums_kernel(packed, 23), expected)

    def test_many_rows_exceeding_one_lane_batch(self):
        """> 255 rows of all-ones exercises the cross-batch widening."""
        bits = np.ones((1_024, 9), dtype=np.uint8)
        packed = np.packbits(bits, axis=1)
        assert np.array_equal(
            packed_column_sums_kernel(packed, 9), np.full(9, 1_024, dtype=np.int64)
        )

    def test_too_many_bits_rejected(self):
        with pytest.raises(ParameterError, match="at most"):
            packed_column_sums_kernel(np.zeros((2, 1), dtype=np.uint8), 9)

    def test_non_2d_rejected(self):
        with pytest.raises(ParameterError, match="2-D"):
            packed_column_sums_kernel(np.zeros(8, dtype=np.uint8), 8)


class TestUEKernels:
    def test_fresh_rows_equals_one_hot_plus_flip(self):
        """The fused kernel consumes randomness identically to the two-step path."""
        values = np.random.default_rng(0).integers(0, 12, size=300)
        fused = ue_fresh_rows_kernel(values, 12, 0.75, 0.25, np.random.default_rng(9))
        two_step = ue_flip_kernel(
            one_hot_kernel(values, 12), 0.75, 0.25, np.random.default_rng(9)
        )
        assert np.array_equal(fused, two_step)

    def test_flip_probabilities(self):
        bits = np.zeros((20_000, 4), dtype=np.uint8)
        bits[:, 0] = 1
        out = ue_flip_kernel(bits, 0.8, 0.1, np.random.default_rng(11))
        assert out[:, 0].mean() == pytest.approx(0.8, abs=0.02)
        assert out[:, 1:].mean() == pytest.approx(0.1, abs=0.02)

    def test_binomial_counts_match_bitwise_distribution(self):
        """The aggregated sampler has the same mean/variance as bit flipping."""
        n_users, p, q = 4_000, 0.75, 0.2
        memo_ones = np.asarray([0, 1_000, 2_500, 4_000])
        rng = np.random.default_rng(13)
        draws = np.stack(
            [ue_binomial_counts_kernel(memo_ones, n_users, p, q, rng) for _ in range(3_000)]
        )
        expected_mean = memo_ones * p + (n_users - memo_ones) * q
        expected_var = memo_ones * p * (1 - p) + (n_users - memo_ones) * q * (1 - q)
        assert np.allclose(draws.mean(axis=0), expected_mean, rtol=0.02)
        assert np.allclose(draws.var(axis=0), expected_var, rtol=0.15)


class TestDBitFlipKernels:
    def test_sample_buckets_without_replacement(self):
        sampled = sample_buckets_kernel(500, 20, 6, np.random.default_rng(17))
        assert sampled.shape == (500, 6)
        assert sampled.min() >= 0 and sampled.max() < 20
        for row in sampled:
            assert len(set(row.tolist())) == 6

    def test_sample_buckets_marginal_uniform(self):
        sampled = sample_buckets_kernel(20_000, 8, 2, np.random.default_rng(19))
        counts = np.bincount(sampled.ravel(), minlength=8)
        assert counts.min() > 0.8 * 20_000 * 2 / 8

    def test_fresh_bits_key_position(self):
        keys = np.full(30_000, 2, dtype=np.int64)
        bits = dbitflip_fresh_bits_kernel(keys, 5, 0.9, 0.1, np.random.default_rng(23))
        assert bits[:, 2].mean() == pytest.approx(0.9, abs=0.02)
        assert bits[:, [0, 1, 3, 4]].mean() == pytest.approx(0.1, abs=0.02)

    def test_fresh_bits_no_match_key(self):
        """Key ``d`` (no sampled bucket matches) uses ``q`` for every bit."""
        keys = np.full(30_000, 3, dtype=np.int64)
        bits = dbitflip_fresh_bits_kernel(keys, 3, 0.9, 0.1, np.random.default_rng(29))
        assert bits.mean() == pytest.approx(0.1, abs=0.02)


class TestDebiasKernels:
    def test_debias_inverts_expected_counts(self):
        f = np.asarray([0.1, 0.3, 0.6])
        n, p, q = 1_000, 0.7, 0.2
        counts = n * (q + f * (p - q))
        assert np.allclose(debias_kernel(counts, n, p, q), f)

    def test_chained_debias_matches_longitudinal_estimate(self):
        params = ChainedParameters(
            p1=0.8, q1=0.2, p2=0.7, q2=0.3, eps_inf=2.0, eps_1=1.0
        )
        counts = np.asarray([100.0, 250.0, 400.0])
        via_kernel = chained_debias_kernel(
            counts, 500, params.p1, params.estimator_q1, params.p2, params.q2
        )
        assert np.allclose(via_kernel, longitudinal_estimate(counts, 500, params))


class TestSupportKernel:
    def test_support_counts_match_naive_loop(self):
        rng = np.random.default_rng(31)
        hashed = rng.integers(0, 4, size=(200, 10)).astype(np.int16)
        reports = rng.integers(0, 4, size=200)
        naive = np.zeros(10)
        for u in range(200):
            naive += hashed[u] == reports[u]
        assert np.array_equal(support_from_hashes_kernel(hashed, reports), naive)
