"""Tests for the pure perturbation kernels of ``repro.simulation.kernels``."""

import numpy as np
import pytest

from repro.longitudinal.base import longitudinal_estimate
from repro.longitudinal.parameters import ChainedParameters
from repro.simulation.kernels import (
    chained_debias_kernel,
    dbitflip_fresh_bits_kernel,
    debias_kernel,
    grr_kernel,
    one_hot_kernel,
    sample_buckets_kernel,
    support_from_hashes_kernel,
    ue_binomial_counts_kernel,
    ue_flip_kernel,
    ue_fresh_rows_kernel,
)


class TestGRRKernel:
    def test_output_stays_in_domain(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 16, size=5_000)
        out = grr_kernel(values, 16, 0.5, np.random.default_rng(1))
        assert out.min() >= 0 and out.max() < 16

    def test_deterministic_given_seed(self):
        values = np.arange(100) % 7
        a = grr_kernel(values, 7, 0.6, np.random.default_rng(3))
        b = grr_kernel(values, 7, 0.6, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_keep_rate_matches_probability(self):
        values = np.zeros(50_000, dtype=np.int64)
        out = grr_kernel(values, 10, 0.7, np.random.default_rng(5))
        kept = (out == values).mean()
        assert kept == pytest.approx(0.7, abs=0.02)

    def test_noise_uniform_over_other_symbols(self):
        values = np.full(90_000, 4, dtype=np.int64)
        out = grr_kernel(values, 5, 0.0, np.random.default_rng(7))
        counts = np.bincount(out, minlength=5)
        assert counts[4] == 0
        assert counts[:4].min() > 0.2 * 90_000 / 4


class TestUEKernels:
    def test_fresh_rows_equals_one_hot_plus_flip(self):
        """The fused kernel consumes randomness identically to the two-step path."""
        values = np.random.default_rng(0).integers(0, 12, size=300)
        fused = ue_fresh_rows_kernel(values, 12, 0.75, 0.25, np.random.default_rng(9))
        two_step = ue_flip_kernel(
            one_hot_kernel(values, 12), 0.75, 0.25, np.random.default_rng(9)
        )
        assert np.array_equal(fused, two_step)

    def test_flip_probabilities(self):
        bits = np.zeros((20_000, 4), dtype=np.uint8)
        bits[:, 0] = 1
        out = ue_flip_kernel(bits, 0.8, 0.1, np.random.default_rng(11))
        assert out[:, 0].mean() == pytest.approx(0.8, abs=0.02)
        assert out[:, 1:].mean() == pytest.approx(0.1, abs=0.02)

    def test_binomial_counts_match_bitwise_distribution(self):
        """The aggregated sampler has the same mean/variance as bit flipping."""
        n_users, p, q = 4_000, 0.75, 0.2
        memo_ones = np.asarray([0, 1_000, 2_500, 4_000])
        rng = np.random.default_rng(13)
        draws = np.stack(
            [ue_binomial_counts_kernel(memo_ones, n_users, p, q, rng) for _ in range(3_000)]
        )
        expected_mean = memo_ones * p + (n_users - memo_ones) * q
        expected_var = memo_ones * p * (1 - p) + (n_users - memo_ones) * q * (1 - q)
        assert np.allclose(draws.mean(axis=0), expected_mean, rtol=0.02)
        assert np.allclose(draws.var(axis=0), expected_var, rtol=0.15)


class TestDBitFlipKernels:
    def test_sample_buckets_without_replacement(self):
        sampled = sample_buckets_kernel(500, 20, 6, np.random.default_rng(17))
        assert sampled.shape == (500, 6)
        assert sampled.min() >= 0 and sampled.max() < 20
        for row in sampled:
            assert len(set(row.tolist())) == 6

    def test_sample_buckets_marginal_uniform(self):
        sampled = sample_buckets_kernel(20_000, 8, 2, np.random.default_rng(19))
        counts = np.bincount(sampled.ravel(), minlength=8)
        assert counts.min() > 0.8 * 20_000 * 2 / 8

    def test_fresh_bits_key_position(self):
        keys = np.full(30_000, 2, dtype=np.int64)
        bits = dbitflip_fresh_bits_kernel(keys, 5, 0.9, 0.1, np.random.default_rng(23))
        assert bits[:, 2].mean() == pytest.approx(0.9, abs=0.02)
        assert bits[:, [0, 1, 3, 4]].mean() == pytest.approx(0.1, abs=0.02)

    def test_fresh_bits_no_match_key(self):
        """Key ``d`` (no sampled bucket matches) uses ``q`` for every bit."""
        keys = np.full(30_000, 3, dtype=np.int64)
        bits = dbitflip_fresh_bits_kernel(keys, 3, 0.9, 0.1, np.random.default_rng(29))
        assert bits.mean() == pytest.approx(0.1, abs=0.02)


class TestDebiasKernels:
    def test_debias_inverts_expected_counts(self):
        f = np.asarray([0.1, 0.3, 0.6])
        n, p, q = 1_000, 0.7, 0.2
        counts = n * (q + f * (p - q))
        assert np.allclose(debias_kernel(counts, n, p, q), f)

    def test_chained_debias_matches_longitudinal_estimate(self):
        params = ChainedParameters(
            p1=0.8, q1=0.2, p2=0.7, q2=0.3, eps_inf=2.0, eps_1=1.0
        )
        counts = np.asarray([100.0, 250.0, 400.0])
        via_kernel = chained_debias_kernel(
            counts, 500, params.p1, params.estimator_q1, params.p2, params.q2
        )
        assert np.allclose(via_kernel, longitudinal_estimate(counts, 500, params))


class TestSupportKernel:
    def test_support_counts_match_naive_loop(self):
        rng = np.random.default_rng(31)
        hashed = rng.integers(0, 4, size=(200, 10)).astype(np.int16)
        reports = rng.integers(0, 4, size=200)
        naive = np.zeros(10)
        for u in range(200):
            naive += hashed[u] == reports[u]
        assert np.array_equal(support_from_hashes_kernel(hashed, reports), naive)
