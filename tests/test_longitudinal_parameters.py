"""Tests for the chained-randomization parameter derivations."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.longitudinal.parameters import (
    ChainedParameters,
    chained_bit_epsilon,
    l_grr_parameters,
    l_osue_parameters,
    l_oue_parameters,
    l_soue_parameters,
    l_sue_parameters,
    loloha_irr_epsilon,
    loloha_parameters,
)

UE_DERIVATIONS = [l_sue_parameters, l_osue_parameters, l_oue_parameters, l_soue_parameters]


class TestDegenerateDomainsFailFast:
    """A single-symbol GRR domain must be rejected at construction time with
    a clear ParameterError, never reach the kernel's numpy draw."""

    def test_l_grr_requires_k_of_at_least_two(self):
        from repro.longitudinal import LGRR

        with pytest.raises(ParameterError, match="k"):
            LGRR(k=1, eps_inf=2.0, eps_1=1.0)

    def test_loloha_requires_g_of_at_least_two(self):
        from repro.longitudinal import LOLOHA

        with pytest.raises(ParameterError, match="g"):
            LOLOHA(k=10, eps_inf=2.0, eps_1=1.0, g=1)

    def test_parameter_derivations_reject_single_symbol_domains(self):
        with pytest.raises(ParameterError):
            l_grr_parameters(2.0, 1.0, 1)
        with pytest.raises(ParameterError):
            loloha_parameters(2.0, 1.0, 1)


class TestChainedParametersContainer:
    def test_rejects_p_below_q(self):
        with pytest.raises(ParameterError):
            ChainedParameters(p1=0.3, q1=0.5, p2=0.8, q2=0.1, eps_inf=2.0, eps_1=1.0)

    def test_rejects_non_probabilities(self):
        with pytest.raises(ParameterError):
            ChainedParameters(p1=1.2, q1=0.1, p2=0.8, q2=0.1, eps_inf=2.0, eps_1=1.0)

    def test_estimator_q1_defaults_to_q1(self):
        params = ChainedParameters(p1=0.8, q1=0.2, p2=0.7, q2=0.3, eps_inf=2.0, eps_1=1.0)
        assert params.estimator_q1 == 0.2

    def test_estimator_q1_override(self):
        params = ChainedParameters(
            p1=0.8, q1=0.2, p2=0.7, q2=0.3, eps_inf=2.0, eps_1=1.0, q1_estimation=0.5
        )
        assert params.estimator_q1 == 0.5

    def test_as_tuple(self):
        params = ChainedParameters(p1=0.8, q1=0.2, p2=0.7, q2=0.3, eps_inf=2.0, eps_1=1.0)
        assert params.as_tuple() == (0.8, 0.2, 0.7, 0.3)


class TestUEChains:
    @pytest.mark.parametrize("derivation", UE_DERIVATIONS)
    @pytest.mark.parametrize("eps_inf,eps_1", [(1.0, 0.4), (2.0, 1.0), (4.0, 2.4), (5.0, 3.0)])
    def test_chain_realizes_requested_first_report_budget(self, derivation, eps_inf, eps_1):
        params = derivation(eps_inf, eps_1)
        realized = chained_bit_epsilon(params.p1, params.q1, params.p2, params.q2)
        assert realized == pytest.approx(eps_1, rel=1e-6)

    @pytest.mark.parametrize("derivation", UE_DERIVATIONS)
    def test_probabilities_are_valid(self, derivation):
        params = derivation(3.0, 1.5)
        for value in params.as_tuple():
            assert 0.0 < value < 1.0
        assert params.p1 > params.q1
        assert params.p2 > params.q2

    @pytest.mark.parametrize("derivation", UE_DERIVATIONS)
    def test_requires_eps1_below_eps_inf(self, derivation):
        with pytest.raises(ParameterError):
            derivation(1.0, 1.0)
        with pytest.raises(ParameterError):
            derivation(1.0, 2.0)

    def test_sue_permanent_round_matches_rappor(self):
        params = l_sue_parameters(2.0, 1.0)
        expected_p1 = math.exp(1.0) / (math.exp(1.0) + 1.0)
        assert params.p1 == pytest.approx(expected_p1)
        assert params.q1 == pytest.approx(1.0 - expected_p1)

    def test_osue_permanent_round_is_oue(self):
        params = l_osue_parameters(2.0, 1.0)
        assert params.p1 == pytest.approx(0.5)
        assert params.q1 == pytest.approx(1.0 / (math.exp(2.0) + 1.0))

    def test_osue_irr_matches_paper_closed_form(self):
        eps_inf, eps_1 = 3.0, 1.2
        a, b = math.exp(eps_inf), math.exp(eps_1)
        expected_p2 = (a * b - 1.0) / (a - b + a * b - 1.0)
        assert l_osue_parameters(eps_inf, eps_1).p2 == pytest.approx(expected_p2)

    def test_unreachable_budget_raises(self):
        # With p2 fixed at 1/2, the L-OUE chain cannot reach eps_1 close to
        # eps_inf when eps_inf is small.
        with pytest.raises(ParameterError):
            l_oue_parameters(0.3, 0.29)


class TestGRRChains:
    @pytest.mark.parametrize("k", [2, 5, 50, 500])
    def test_l_grr_matches_paper_closed_form(self, k):
        eps_inf, eps_1 = 2.0, 1.0
        a, b = math.exp(eps_inf), math.exp(eps_1)
        params = l_grr_parameters(eps_inf, eps_1, k)
        assert params.p1 == pytest.approx(a / (a + k - 1))
        expected_p2 = (a * b - 1.0) / ((k - 1) * (a - b) + a * b - 1.0)
        assert params.p2 == pytest.approx(expected_p2)

    def test_l_grr_nominal_budget_identity(self):
        """The paper's bound (p1 p2 + q1 q2) / (p1 q2 + q1 p2) equals e^{eps_1}."""
        eps_inf, eps_1, k = 3.0, 1.5, 20
        params = l_grr_parameters(eps_inf, eps_1, k)
        ratio = (params.p1 * params.p2 + params.q1 * params.q2) / (
            params.p1 * params.q2 + params.q1 * params.p2
        )
        assert math.log(ratio) == pytest.approx(eps_1, rel=1e-9)

    def test_loloha_equals_l_grr_over_hashed_domain(self):
        loloha = loloha_parameters(2.0, 1.0, 8)
        l_grr = l_grr_parameters(2.0, 1.0, 8)
        assert loloha.p1 == pytest.approx(l_grr.p1)
        assert loloha.p2 == pytest.approx(l_grr.p2)
        assert loloha.q2 == pytest.approx(l_grr.q2)

    def test_loloha_estimator_uses_collision_probability(self):
        params = loloha_parameters(2.0, 1.0, 8)
        assert params.q1_estimation == pytest.approx(1.0 / 8.0)

    def test_loloha_irr_epsilon_identity(self):
        """e^{eps_IRR} e^{eps_inf} + 1 = e^{eps_1} (e^{eps_IRR} + e^{eps_inf})."""
        eps_inf, eps_1 = 2.5, 1.0
        eps_irr = loloha_irr_epsilon(eps_inf, eps_1)
        left = math.exp(eps_irr) * math.exp(eps_inf) + 1.0
        right = math.exp(eps_1) * (math.exp(eps_irr) + math.exp(eps_inf))
        assert left == pytest.approx(right, rel=1e-9)

    def test_requires_valid_budget_pair(self):
        with pytest.raises(ParameterError):
            l_grr_parameters(1.0, 1.5, 10)


class TestPropertyBased:
    @given(
        eps_inf=st.floats(min_value=0.4, max_value=5.0),
        alpha=st.floats(min_value=0.2, max_value=0.8),
        g=st.integers(min_value=2, max_value=64),
    )
    @settings(max_examples=80, deadline=None)
    def test_loloha_parameters_always_valid(self, eps_inf, alpha, g):
        params = loloha_parameters(eps_inf, alpha * eps_inf, g)
        assert 0 < params.q1 < params.p1 < 1
        assert 0 < params.q2 < params.p2 < 1
        assert params.estimator_q1 == pytest.approx(1.0 / g)

    @given(
        eps_inf=st.floats(min_value=0.4, max_value=5.0),
        alpha=st.floats(min_value=0.2, max_value=0.8),
    )
    @settings(max_examples=80, deadline=None)
    def test_sue_and_osue_chains_realize_budget(self, eps_inf, alpha):
        eps_1 = alpha * eps_inf
        for derivation in (l_sue_parameters, l_osue_parameters):
            params = derivation(eps_inf, eps_1)
            realized = chained_bit_epsilon(params.p1, params.q1, params.p2, params.q2)
            assert realized == pytest.approx(eps_1, rel=1e-6)

    @given(
        eps_inf=st.floats(min_value=0.4, max_value=5.0),
        alpha=st.floats(min_value=0.2, max_value=0.8),
        k=st.integers(min_value=2, max_value=1000),
    )
    @settings(max_examples=80, deadline=None)
    def test_l_grr_parameters_always_valid(self, eps_inf, alpha, k):
        params = l_grr_parameters(eps_inf, alpha * eps_inf, k)
        assert 0 < params.q1 < params.p1 < 1
        assert 0 < params.q2 < params.p2 < 1
