"""Tests for the vectorized population engines and the simulation runner."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.longitudinal import BiLOLOHA, DBitFlipPM, LGRR, LOSUE, LSUE, OLOLOHA
from repro.simulation import (
    DBitFlipEngine,
    GRRChainEngine,
    LOLOHAEngine,
    UnaryChainEngine,
    engine_for,
    simulate_protocol,
    simulate_with_clients,
)
from repro.simulation.metrics import averaged_mse
from repro.simulation.sweep import run_sweep
from repro.specs import ProtocolSpec


class TestEngineDispatch:
    def test_engine_for_each_protocol_family(self):
        assert isinstance(engine_for(LGRR(10, 2.0, 1.0), 5), GRRChainEngine)
        assert isinstance(engine_for(LSUE(10, 2.0, 1.0), 5), UnaryChainEngine)
        assert isinstance(engine_for(BiLOLOHA(10, 2.0, 1.0), 5), LOLOHAEngine)
        assert isinstance(engine_for(DBitFlipPM(10, 2.0), 5), DBitFlipEngine)

    def test_engine_type_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            GRRChainEngine(LSUE(10, 2.0, 1.0), 5)
        with pytest.raises(ParameterError):
            LOLOHAEngine(LGRR(10, 2.0, 1.0), 5)

    def test_round_shape_validation(self):
        engine = engine_for(LGRR(10, 2.0, 1.0), 5, rng=0)
        with pytest.raises(ExperimentError):
            engine.run_round(np.zeros(4, dtype=np.int64))
        with pytest.raises(ExperimentError):
            engine.run_round(np.full(5, 10, dtype=np.int64))


class TestEngineMemoization:
    def test_grr_engine_counts_distinct_values(self):
        protocol = LGRR(6, 2.0, 1.0)
        engine = GRRChainEngine(protocol, 4, rng=0)
        rounds = np.asarray(
            [
                [0, 1, 2, 3],
                [0, 1, 2, 3],
                [1, 1, 3, 3],
            ]
        )
        for values in rounds:
            engine.run_round(values)
        assert list(engine.distinct_memoized_per_user()) == [2, 1, 2, 1]

    def test_loloha_engine_budget_bounded_by_g(self):
        protocol = BiLOLOHA(50, 2.0, 1.0)
        engine = LOLOHAEngine(protocol, 20, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            engine.run_round(rng.integers(0, 50, size=20))
        assert engine.distinct_memoized_per_user().max() <= 2

    def test_ue_engine_counts_distinct_values(self):
        protocol = LOSUE(5, 2.0, 1.0)
        engine = UnaryChainEngine(protocol, 3, rng=0)
        engine.run_round(np.asarray([0, 1, 2]))
        engine.run_round(np.asarray([0, 2, 2]))
        assert list(engine.distinct_memoized_per_user()) == [1, 2, 1]

    def test_dbitflip_engine_budget_bounded(self):
        protocol = DBitFlipPM(40, 2.0, b=10, d=2)
        engine = DBitFlipEngine(protocol, 15, rng=0)
        rng = np.random.default_rng(2)
        for _ in range(12):
            engine.run_round(rng.integers(0, 40, size=15))
        assert engine.distinct_memoized_per_user().max() <= 3

    def test_dbitflip_key_history_recorded(self):
        protocol = DBitFlipPM(40, 2.0, b=10, d=2)
        engine = DBitFlipEngine(protocol, 15, rng=0)
        engine.run_round(np.zeros(15, dtype=np.int64))
        engine.run_round(np.full(15, 39, dtype=np.int64))
        assert len(engine.key_history) == 2
        assert engine.key_history[0].shape == (15,)


class TestEngineVsClients:
    """The engines must agree statistically with the reference client path."""

    @pytest.mark.parametrize(
        "protocol_factory",
        [
            lambda k: LGRR(k, 3.0, 1.5),
            lambda k: LSUE(k, 3.0, 1.5),
            lambda k: OLOLOHA(k, 3.0, 1.5),
            lambda k: DBitFlipPM(k, 3.0, d=4),
        ],
        ids=["L-GRR", "RAPPOR", "OLOLOHA", "dBitFlipPM"],
    )
    def test_engine_matches_client_path(self, protocol_factory, tiny_dataset):
        """All four protocol families: vectorized path ≈ reference client path."""
        engine_result = simulate_protocol(protocol_factory(tiny_dataset.k), tiny_dataset, rng=0)
        client_result = simulate_with_clients(
            protocol_factory(tiny_dataset.k), tiny_dataset, rng=0
        )
        assert engine_result.estimates.shape == client_result.estimates.shape
        # Same memoization structure (depends only on the value sequences).
        if isinstance(protocol_factory(tiny_dataset.k), (LGRR, LSUE)):
            assert np.array_equal(
                np.sort(engine_result.distinct_memoized_per_user),
                np.sort(client_result.distinct_memoized_per_user),
            )
        # Similar error level (both unbiased with the same variance).
        assert engine_result.mse_avg < 8 * client_result.mse_avg + 0.05
        assert client_result.mse_avg < 8 * engine_result.mse_avg + 0.05
        # Similar realized longitudinal budget.
        assert engine_result.eps_avg == pytest.approx(client_result.eps_avg, rel=0.25)


class TestSimulationRunner:
    def test_result_shapes(self, small_dataset):
        result = simulate_protocol(OLOLOHA(small_dataset.k, 2.0, 1.0), small_dataset, rng=0)
        assert result.estimates.shape == (small_dataset.n_rounds, small_dataset.k)
        assert result.true_frequencies.shape == result.estimates.shape
        assert result.mse_by_round.shape == (small_dataset.n_rounds,)
        assert result.mse_avg == pytest.approx(
            averaged_mse(result.estimates, result.true_frequencies)
        )

    def test_eps_avg_bounded_by_worst_case_for_loloha(self, small_dataset):
        result = simulate_protocol(BiLOLOHA(small_dataset.k, 2.0, 1.0), small_dataset, rng=0)
        assert result.eps_avg <= result.worst_case_budget + 1e-9

    def test_dbitflip_estimates_bucket_histogram(self, small_dataset):
        protocol = DBitFlipPM(small_dataset.k, 2.0, b=6, d=6)
        result = simulate_protocol(protocol, small_dataset, rng=0)
        assert result.estimates.shape == (small_dataset.n_rounds, 6)
        assert np.allclose(result.true_frequencies.sum(axis=1), 1.0)

    def test_domain_mismatch_rejected(self, small_dataset):
        with pytest.raises(ExperimentError):
            simulate_protocol(OLOLOHA(small_dataset.k + 1, 2.0, 1.0), small_dataset, rng=0)

    def test_loloha_more_private_than_rappor_on_changing_data(self, small_dataset):
        rappor = simulate_protocol(LSUE(small_dataset.k, 2.0, 1.0), small_dataset, rng=1)
        loloha = simulate_protocol(BiLOLOHA(small_dataset.k, 2.0, 1.0), small_dataset, rng=1)
        assert loloha.eps_avg < rappor.eps_avg

    def test_reproducible_with_same_seed(self, tiny_dataset):
        a = simulate_protocol(OLOLOHA(tiny_dataset.k, 2.0, 1.0), tiny_dataset, rng=5)
        b = simulate_protocol(OLOLOHA(tiny_dataset.k, 2.0, 1.0), tiny_dataset, rng=5)
        assert np.allclose(a.estimates, b.estimates)
        assert a.mse_avg == pytest.approx(b.mse_avg)


class TestSweep:
    def test_sweep_grid_size_and_ordering(self, tiny_dataset):
        specs = {
            "OLOLOHA": ProtocolSpec(name="OLOLOHA"),
            "RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR"),
        }
        points = run_sweep(
            specs, tiny_dataset, eps_inf_values=[1.0, 2.0], alpha_values=[0.5], n_runs=2, rng=0
        )
        assert len(points) == 4
        assert all(len(point.runs) == 2 for point in points)
        assert {point.protocol_name for point in points} == {"OLOLOHA", "RAPPOR"}

    def test_sweep_requires_valid_alpha(self, tiny_dataset):
        with pytest.raises(ExperimentError):
            run_sweep(
                {"OLOLOHA": ProtocolSpec(name="OLOLOHA")},
                tiny_dataset,
                eps_inf_values=[1.0],
                alpha_values=[1.5],
            )

    def test_sweep_requires_protocols(self, tiny_dataset):
        with pytest.raises(ExperimentError):
            run_sweep({}, tiny_dataset, eps_inf_values=[1.0], alpha_values=[0.5])

    def test_sweep_mse_decreases_with_budget(self, small_dataset):
        specs = {"OLOLOHA": ProtocolSpec(name="OLOLOHA")}
        points = run_sweep(
            specs, small_dataset, eps_inf_values=[0.5, 4.0], alpha_values=[0.5], rng=1
        )
        low_budget = next(p for p in points if p.eps_inf == 0.5)
        high_budget = next(p for p in points if p.eps_inf == 4.0)
        assert high_budget.mse_avg < low_budget.mse_avg

    def test_keep_runs_false_drops_details(self, tiny_dataset):
        points = run_sweep(
            {"RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR")},
            tiny_dataset,
            eps_inf_values=[1.0],
            alpha_values=[0.5],
            keep_runs=False,
        )
        assert points[0].runs == []
