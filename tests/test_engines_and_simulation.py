"""Tests for the vectorized population engines and the simulation runner."""

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.longitudinal import BiLOLOHA, DBitFlipPM, LGRR, LOSUE, LSUE, OLOLOHA
from repro.simulation import (
    DBitFlipEngine,
    GRRChainEngine,
    LOLOHAEngine,
    UnaryChainEngine,
    engine_for,
    simulate_protocol,
    simulate_with_clients,
)
from repro.simulation.metrics import averaged_mse
from repro.simulation.sweep import run_sweep
from repro.specs import ProtocolSpec


class TestEngineDispatch:
    def test_engine_for_each_protocol_family(self):
        assert isinstance(engine_for(LGRR(10, 2.0, 1.0), 5), GRRChainEngine)
        assert isinstance(engine_for(LSUE(10, 2.0, 1.0), 5), UnaryChainEngine)
        assert isinstance(engine_for(BiLOLOHA(10, 2.0, 1.0), 5), LOLOHAEngine)
        assert isinstance(engine_for(DBitFlipPM(10, 2.0), 5), DBitFlipEngine)

    def test_engine_type_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            GRRChainEngine(LSUE(10, 2.0, 1.0), 5)
        with pytest.raises(ParameterError):
            LOLOHAEngine(LGRR(10, 2.0, 1.0), 5)

    def test_round_shape_validation(self):
        engine = engine_for(LGRR(10, 2.0, 1.0), 5, rng=0)
        with pytest.raises(ExperimentError):
            engine.run_round(np.zeros(4, dtype=np.int64))
        with pytest.raises(ExperimentError):
            engine.run_round(np.full(5, 10, dtype=np.int64))


class TestEngineMemoization:
    def test_grr_engine_counts_distinct_values(self):
        protocol = LGRR(6, 2.0, 1.0)
        engine = GRRChainEngine(protocol, 4, rng=0)
        rounds = np.asarray(
            [
                [0, 1, 2, 3],
                [0, 1, 2, 3],
                [1, 1, 3, 3],
            ]
        )
        for values in rounds:
            engine.run_round(values)
        assert list(engine.distinct_memoized_per_user()) == [2, 1, 2, 1]

    def test_loloha_engine_budget_bounded_by_g(self):
        protocol = BiLOLOHA(50, 2.0, 1.0)
        engine = LOLOHAEngine(protocol, 20, rng=0)
        rng = np.random.default_rng(1)
        for _ in range(10):
            engine.run_round(rng.integers(0, 50, size=20))
        assert engine.distinct_memoized_per_user().max() <= 2

    def test_ue_engine_counts_distinct_values(self):
        protocol = LOSUE(5, 2.0, 1.0)
        engine = UnaryChainEngine(protocol, 3, rng=0)
        engine.run_round(np.asarray([0, 1, 2]))
        engine.run_round(np.asarray([0, 2, 2]))
        assert list(engine.distinct_memoized_per_user()) == [1, 2, 1]

    def test_dbitflip_engine_budget_bounded(self):
        protocol = DBitFlipPM(40, 2.0, b=10, d=2)
        engine = DBitFlipEngine(protocol, 15, rng=0)
        rng = np.random.default_rng(2)
        for _ in range(12):
            engine.run_round(rng.integers(0, 40, size=15))
        assert engine.distinct_memoized_per_user().max() <= 3

    def test_dbitflip_key_history_opt_in(self):
        protocol = DBitFlipPM(40, 2.0, b=10, d=2)
        engine = DBitFlipEngine(protocol, 15, rng=0, record_key_history=True)
        engine.run_round(np.zeros(15, dtype=np.int64))
        engine.run_round(np.full(15, 39, dtype=np.int64))
        assert len(engine.key_history) == 2
        assert engine.key_history[0].shape == (15,)

    def test_dbitflip_key_history_off_by_default(self):
        """Long-horizon simulations must not accumulate one array per round."""
        protocol = DBitFlipPM(40, 2.0, b=10, d=2)
        engine = DBitFlipEngine(protocol, 15, rng=0)
        rng = np.random.default_rng(3)
        for _ in range(20):
            engine.run_round(rng.integers(0, 40, size=15))
        assert engine.key_history is None


class TestAggregatedRounds:
    """The aggregated instantaneous rounds (per-symbol mixing for L-GRR,
    the (memoized symbol, hash bucket) support fold for LOLOHA) must match
    the per-user reference sampling per-value in mean and variance."""

    N_TRIALS = 2_500

    @staticmethod
    def _moments_close(a, b, n_trials):
        # Means within ~6 standard errors, variances within 20% + slack.
        se = np.sqrt((a.var(axis=0) + b.var(axis=0)) / n_trials + 1e-12)
        assert np.all(np.abs(a.mean(axis=0) - b.mean(axis=0)) < 6 * se + 0.5)
        assert np.allclose(a.var(axis=0), b.var(axis=0), rtol=0.2, atol=3.0)

    def test_grr_chain_round_matches_per_user_reports(self):
        from repro.simulation.kernels import grr_kernel

        protocol = LGRR(6, 2.0, 1.0)
        n_users = 800
        engine = GRRChainEngine(protocol, n_users, rng=0)
        values = np.random.default_rng(1).integers(0, 6, size=n_users)
        engine.run_round(values)  # memoize every (user, value) pair in play
        memoized = engine._state.resolve(values, _fresh_must_not_run)
        params = protocol.chained_parameters
        rng = np.random.default_rng(2)
        aggregated = np.stack(
            [engine.run_round(values, rng) for _ in range(self.N_TRIALS)]
        )
        reference = np.stack(
            [
                np.bincount(grr_kernel(memoized, 6, params.p2, rng), minlength=6)
                for _ in range(self.N_TRIALS)
            ]
        ).astype(np.float64)
        self._moments_close(aggregated, reference, self.N_TRIALS)

    def test_loloha_round_matches_per_user_reports(self):
        from repro.simulation.kernels import grr_kernel, support_from_hashes_kernel

        protocol = OLOLOHA(12, 2.0, 1.0)
        n_users = 600
        engine = LOLOHAEngine(protocol, n_users, rng=0)
        values = np.random.default_rng(3).integers(0, 12, size=n_users)
        engine.run_round(values)  # memoize the hashes in play
        hashed = engine.hashed_domain[np.arange(n_users), values].astype(np.int64)
        memoized = engine._state.resolve(hashed, _fresh_must_not_run)
        params = protocol.chained_parameters
        rng = np.random.default_rng(4)
        aggregated = np.stack(
            [engine.run_round(values, rng) for _ in range(self.N_TRIALS)]
        )
        reference = np.stack(
            [
                support_from_hashes_kernel(
                    engine.hashed_domain,
                    grr_kernel(memoized, protocol.g, params.p2, rng),
                )
                for _ in range(self.N_TRIALS)
            ]
        )
        self._moments_close(aggregated, reference, self.N_TRIALS)

    def test_loloha_packed_and_compare_folds_are_bit_identical(self):
        protocol = OLOLOHA(20, 2.0, 1.0)
        packed = LOLOHAEngine(protocol, 150, rng=7, support_layout="packed")
        compare = LOLOHAEngine(protocol, 150, rng=7, support_layout="compare")
        rng = np.random.default_rng(8)
        for seed in range(5):
            values = rng.integers(0, 20, size=150)
            assert np.array_equal(
                packed.run_round(values, np.random.default_rng(seed)),
                compare.run_round(values, np.random.default_rng(seed)),
            )

    def test_loloha_unknown_support_layout_rejected(self):
        with pytest.raises(ParameterError, match="support layout"):
            LOLOHAEngine(OLOLOHA(10, 2.0, 1.0), 5, rng=0, support_layout="fancy")


def _fresh_must_not_run(users, keys):  # pragma: no cover - must never run
    raise AssertionError("memoization miss on an already-warm engine")


class _CountingGenerator(np.random.Generator):
    """A Generator that tallies how many random variates were drawn."""

    def __init__(self, seed=0):
        super().__init__(np.random.PCG64(seed))
        self.variates = 0

    def _count(self, out):
        self.variates += int(np.size(out))
        return out

    def random(self, *args, **kwargs):
        return self._count(super().random(*args, **kwargs))

    def integers(self, *args, **kwargs):
        return self._count(super().integers(*args, **kwargs))

    def binomial(self, *args, **kwargs):
        return self._count(super().binomial(*args, **kwargs))

    def multinomial(self, *args, **kwargs):
        return self._count(super().multinomial(*args, **kwargs))


class TestRoundRandomnessIndependentOfPopulation:
    """The steady-state round draws O(domain) variates, never O(n_users) —
    the deterministic guard behind the large-domain benchmark."""

    K = 32

    @pytest.mark.parametrize(
        "protocol_factory",
        [
            lambda k: LGRR(k, 3.0, 1.5),
            lambda k: LOSUE(k, 3.0, 1.5),
            lambda k: OLOLOHA(k, 3.0, 1.5),
        ],
        ids=["L-GRR", "L-OSUE", "OLOLOHA"],
    )
    def test_steady_state_draws_do_not_scale_with_users(self, protocol_factory):
        def steady_round_variates(n_users):
            engine = engine_for(protocol_factory(self.K), n_users, rng=0)
            values = np.random.default_rng(1).integers(0, self.K, size=n_users)
            engine.run_round(values)  # memoize every (user, current key) pair
            counter = _CountingGenerator(2)
            engine.run_round(values, counter)  # same keys: zero misses
            return counter.variates

        small, large = steady_round_variates(200), steady_round_variates(2_000)
        assert small == large
        assert small <= 4 * self.K  # O(k) draws, nothing per-user


class TestEngineVsClients:
    """The engines must agree statistically with the reference client path."""

    @pytest.mark.parametrize(
        "protocol_factory",
        [
            lambda k: LGRR(k, 3.0, 1.5),
            lambda k: LSUE(k, 3.0, 1.5),
            lambda k: OLOLOHA(k, 3.0, 1.5),
            lambda k: DBitFlipPM(k, 3.0, d=4),
        ],
        ids=["L-GRR", "RAPPOR", "OLOLOHA", "dBitFlipPM"],
    )
    def test_engine_matches_client_path(self, protocol_factory, tiny_dataset):
        """All four protocol families: vectorized path ≈ reference client path."""
        engine_result = simulate_protocol(protocol_factory(tiny_dataset.k), tiny_dataset, rng=0)
        client_result = simulate_with_clients(
            protocol_factory(tiny_dataset.k), tiny_dataset, rng=0
        )
        assert engine_result.estimates.shape == client_result.estimates.shape
        # Same memoization structure (depends only on the value sequences).
        if isinstance(protocol_factory(tiny_dataset.k), (LGRR, LSUE)):
            assert np.array_equal(
                np.sort(engine_result.distinct_memoized_per_user),
                np.sort(client_result.distinct_memoized_per_user),
            )
        # Similar error level (both unbiased with the same variance).
        assert engine_result.mse_avg < 8 * client_result.mse_avg + 0.05
        assert client_result.mse_avg < 8 * engine_result.mse_avg + 0.05
        # Similar realized longitudinal budget.
        assert engine_result.eps_avg == pytest.approx(client_result.eps_avg, rel=0.25)


class TestSimulationRunner:
    def test_result_shapes(self, small_dataset):
        result = simulate_protocol(OLOLOHA(small_dataset.k, 2.0, 1.0), small_dataset, rng=0)
        assert result.estimates.shape == (small_dataset.n_rounds, small_dataset.k)
        assert result.true_frequencies.shape == result.estimates.shape
        assert result.mse_by_round.shape == (small_dataset.n_rounds,)
        assert result.mse_avg == pytest.approx(
            averaged_mse(result.estimates, result.true_frequencies)
        )

    def test_eps_avg_bounded_by_worst_case_for_loloha(self, small_dataset):
        result = simulate_protocol(BiLOLOHA(small_dataset.k, 2.0, 1.0), small_dataset, rng=0)
        assert result.eps_avg <= result.worst_case_budget + 1e-9

    def test_dbitflip_estimates_bucket_histogram(self, small_dataset):
        protocol = DBitFlipPM(small_dataset.k, 2.0, b=6, d=6)
        result = simulate_protocol(protocol, small_dataset, rng=0)
        assert result.estimates.shape == (small_dataset.n_rounds, 6)
        assert np.allclose(result.true_frequencies.sum(axis=1), 1.0)

    def test_domain_mismatch_rejected(self, small_dataset):
        with pytest.raises(ExperimentError):
            simulate_protocol(OLOLOHA(small_dataset.k + 1, 2.0, 1.0), small_dataset, rng=0)

    def test_loloha_more_private_than_rappor_on_changing_data(self, small_dataset):
        rappor = simulate_protocol(LSUE(small_dataset.k, 2.0, 1.0), small_dataset, rng=1)
        loloha = simulate_protocol(BiLOLOHA(small_dataset.k, 2.0, 1.0), small_dataset, rng=1)
        assert loloha.eps_avg < rappor.eps_avg

    def test_reproducible_with_same_seed(self, tiny_dataset):
        a = simulate_protocol(OLOLOHA(tiny_dataset.k, 2.0, 1.0), tiny_dataset, rng=5)
        b = simulate_protocol(OLOLOHA(tiny_dataset.k, 2.0, 1.0), tiny_dataset, rng=5)
        assert np.allclose(a.estimates, b.estimates)
        assert a.mse_avg == pytest.approx(b.mse_avg)


class TestSweep:
    def test_sweep_grid_size_and_ordering(self, tiny_dataset):
        specs = {
            "OLOLOHA": ProtocolSpec(name="OLOLOHA"),
            "RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR"),
        }
        points = run_sweep(
            specs, tiny_dataset, eps_inf_values=[1.0, 2.0], alpha_values=[0.5], n_runs=2, rng=0
        )
        assert len(points) == 4
        assert all(len(point.runs) == 2 for point in points)
        assert {point.protocol_name for point in points} == {"OLOLOHA", "RAPPOR"}

    def test_sweep_requires_valid_alpha(self, tiny_dataset):
        with pytest.raises(ExperimentError):
            run_sweep(
                {"OLOLOHA": ProtocolSpec(name="OLOLOHA")},
                tiny_dataset,
                eps_inf_values=[1.0],
                alpha_values=[1.5],
            )

    def test_sweep_requires_protocols(self, tiny_dataset):
        with pytest.raises(ExperimentError):
            run_sweep({}, tiny_dataset, eps_inf_values=[1.0], alpha_values=[0.5])

    def test_sweep_mse_decreases_with_budget(self, small_dataset):
        specs = {"OLOLOHA": ProtocolSpec(name="OLOLOHA")}
        points = run_sweep(
            specs, small_dataset, eps_inf_values=[0.5, 4.0], alpha_values=[0.5], rng=1
        )
        low_budget = next(p for p in points if p.eps_inf == 0.5)
        high_budget = next(p for p in points if p.eps_inf == 4.0)
        assert high_budget.mse_avg < low_budget.mse_avg

    def test_keep_runs_false_drops_details(self, tiny_dataset):
        points = run_sweep(
            {"RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR")},
            tiny_dataset,
            eps_inf_values=[1.0],
            alpha_values=[0.5],
            keep_runs=False,
        )
        assert points[0].runs == []
