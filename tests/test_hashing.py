"""Tests for the universal hash families and their diagnostics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import ParameterError
from repro.hashing import (
    BlakeHashFamily,
    MultiplyShiftHashFamily,
    PolynomialHashFamily,
    TabulationHashFamily,
    collision_rate,
    empirical_universality,
    family_from_name,
    hashed_domain_histogram,
    uniformity_chi_square,
)

ALL_FAMILIES = [
    MultiplyShiftHashFamily,
    PolynomialHashFamily,
    TabulationHashFamily,
    BlakeHashFamily,
]


@pytest.mark.parametrize("family_cls", ALL_FAMILIES)
class TestFamilyBasics:
    def test_outputs_in_range(self, family_cls):
        family = family_cls(g=5)
        function = family.sample(rng=0)
        hashes = function.hash_all(200)
        assert hashes.min() >= 0
        assert hashes.max() < 5

    def test_function_is_deterministic(self, family_cls):
        family = family_cls(g=7)
        function = family.sample(rng=1)
        first = function.hash_all(100)
        second = function.hash_all(100)
        assert np.array_equal(first, second)

    def test_scalar_and_vector_agree(self, family_cls):
        family = family_cls(g=4)
        function = family.sample(rng=2)
        values = np.arange(50)
        vectorized = function.hash_array(values)
        scalars = np.asarray([function(int(v)) for v in values])
        assert np.array_equal(vectorized, scalars)

    def test_same_seed_same_function(self, family_cls):
        family = family_cls(g=6)
        a = family.sample(rng=3)
        b = family.sample(rng=3)
        assert a == b
        assert hash(a) == hash(b)

    def test_different_seeds_usually_differ(self, family_cls):
        family = family_cls(g=6)
        functions = {family.sample(rng=seed) for seed in range(8)}
        assert len(functions) > 1

    def test_rejects_domain_below_two(self, family_cls):
        with pytest.raises(ParameterError):
            family_cls(g=1)


class TestBatchedDomainHashing:
    @pytest.mark.parametrize("family_cls", ALL_FAMILIES)
    def test_sample_hashed_domains_shape_and_range(self, family_cls):
        family = family_cls(g=5)
        matrix = family.sample_hashed_domains(6, 40, rng=0)
        assert matrix.shape == (6, 40)
        assert matrix.min() >= 0 and matrix.max() < 5

    def test_blake_batch_rows_match_per_function_hashing(self):
        """The vectorized Blake batch draw must agree with scalar hashing."""
        from repro.hashing.families import _BlakeFunction

        family = BlakeHashFamily(g=7)
        matrix = family.sample_hashed_domains(4, 30, rng=3)
        seeds = np.random.default_rng(3).integers(0, 2**63 - 1, size=4)
        for row, seed in zip(matrix, seeds):
            function = _BlakeFunction(seed=int(seed), g=7)
            assert np.array_equal(row, [function(v) for v in range(30)])

    def test_blake_counter_blocks_are_independent(self):
        """Values inside one digest block must still hash independently."""
        function = BlakeHashFamily(g=64).sample(rng=9)
        hashes = function.hash_all(8)  # exactly one counter block
        assert len(set(int(h) for h in hashes)) > 1

    @pytest.mark.parametrize("family_cls", ALL_FAMILIES)
    def test_empty_input_returns_empty_array(self, family_cls):
        function = family_cls(g=4).sample(rng=0)
        out = function.hash_array(np.array([], dtype=np.int64))
        assert out.shape == (0,)


class TestUniversality:
    @pytest.mark.parametrize("family_cls", [MultiplyShiftHashFamily, PolynomialHashFamily])
    def test_empirical_universality_holds(self, family_cls):
        family = family_cls(g=4)
        report = empirical_universality(
            family, k=64, n_functions=400, n_pairs=10, slack=4.0, rng=0
        )
        assert report.satisfied, (
            f"max pair collision rate {report.max_pair_collision_rate} exceeded "
            f"bound {report.bound}"
        )

    def test_collision_rate_close_to_inverse_g(self):
        family = MultiplyShiftHashFamily(g=2)
        rate = collision_rate(family, 3, 17, n_functions=2000, rng=1)
        assert 0.35 <= rate <= 0.65

    def test_collision_rate_requires_distinct_values(self):
        family = MultiplyShiftHashFamily(g=2)
        with pytest.raises(ValueError):
            collision_rate(family, 5, 5)


class TestUniformity:
    def test_pooled_histogram_roughly_uniform(self):
        family = MultiplyShiftHashFamily(g=8)
        counts = hashed_domain_histogram(family, k=64, n_functions=200, rng=0)
        statistic = uniformity_chi_square(counts)
        # Degrees of freedom is 7; allow a generous multiple.
        assert statistic < 20 * 7

    def test_chi_square_of_empty_counts_is_zero(self):
        assert uniformity_chi_square(np.zeros(4)) == 0.0

    def test_chi_square_detects_gross_nonuniformity(self):
        skewed = np.asarray([1000, 0, 0, 0])
        assert uniformity_chi_square(skewed) > 100


class TestRegistry:
    @pytest.mark.parametrize(
        "name", ["multiply-shift", "polynomial", "tabulation", "blake"]
    )
    def test_family_from_name(self, name):
        family = family_from_name(name, g=3)
        assert family.g == 3

    def test_unknown_name_raises(self):
        with pytest.raises(ParameterError):
            family_from_name("md5", g=3)

    def test_polynomial_accepts_degree(self):
        family = family_from_name("polynomial", g=3, degree=3)
        assert family.degree == 3


class TestPropertyBased:
    @given(
        g=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        values=st.lists(st.integers(min_value=0, max_value=10**6), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_multiply_shift_range_property(self, g, seed, values):
        """Every hash output lies in [0, g) for arbitrary inputs and seeds."""
        function = MultiplyShiftHashFamily(g).sample(rng=seed)
        hashes = function.hash_array(np.asarray(values, dtype=np.int64))
        assert hashes.min() >= 0
        assert hashes.max() < g

    @given(
        g=st.integers(min_value=2, max_value=16),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        value=st.integers(min_value=0, max_value=10**6),
    )
    @settings(max_examples=40, deadline=None)
    def test_polynomial_determinism_property(self, g, seed, value):
        """The same member function always maps a value to the same hash."""
        function = PolynomialHashFamily(g).sample(rng=seed)
        assert function(value) == function(value)
