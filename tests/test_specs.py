"""Tests for the declarative construction API: ProtocolSpec / SweepSpec,
the protocol registry, and spec-driven sweep / shard equivalence."""

import json
import pickle

import numpy as np
import pytest

from repro.exceptions import ParameterError
from repro.longitudinal import (
    BiLOLOHA,
    DBitFlipPM,
    LGRR,
    LOLOHA,
    LOSUE,
    LSUE,
    OLOLOHA,
)
from repro.registry import (
    build_protocol,
    dbitflip_bucket_count,
    register_protocol,
    registered_protocols,
)
from repro.simulation import simulate_protocol_sharded
from repro.simulation.sweep import run_sweep
from repro.specs import ProtocolSpec, SweepSpec, load_sweep_spec

#: One concrete, buildable spec per registered protocol name.
CONCRETE_SPECS = {
    "L-GRR": ProtocolSpec(name="L-GRR", k=24, eps_inf=2.0, alpha=0.5),
    "L-SUE": ProtocolSpec(name="L-SUE", k=24, eps_inf=2.0, eps_1=1.0),
    "RAPPOR": ProtocolSpec(name="RAPPOR", k=24, eps_inf=2.0, alpha=0.5),
    "L-OSUE": ProtocolSpec(name="L-OSUE", k=24, eps_inf=2.0, alpha=0.5),
    "L-OUE": ProtocolSpec(name="L-OUE", k=24, eps_inf=2.0, alpha=0.5),
    "L-SOUE": ProtocolSpec(name="L-SOUE", k=24, eps_inf=2.0, alpha=0.5),
    "LOLOHA": ProtocolSpec(name="LOLOHA", k=24, eps_inf=2.0, alpha=0.5, params={"g": 4}),
    "BiLOLOHA": ProtocolSpec(name="BiLOLOHA", k=24, eps_inf=2.0, alpha=0.5),
    "OLOLOHA": ProtocolSpec(
        name="OLOLOHA", k=24, eps_inf=2.0, alpha=0.5, params={"hash_family": "polynomial"}
    ),
    "dBitFlipPM": ProtocolSpec(
        name="dBitFlipPM", k=24, eps_inf=2.0, params={"b": 12, "d": 3}
    ),
}

EXPECTED_TYPES = {
    "L-GRR": LGRR,
    "L-SUE": LSUE,
    "RAPPOR": LSUE,
    "L-OSUE": LOSUE,
    "LOLOHA": LOLOHA,
    "BiLOLOHA": BiLOLOHA,
    "OLOLOHA": OLOLOHA,
    "dBitFlipPM": DBitFlipPM,
}


class TestProtocolSpec:
    def test_every_registered_protocol_has_a_concrete_spec(self):
        assert set(registered_protocols()) == set(CONCRETE_SPECS)

    @pytest.mark.parametrize("name", sorted(CONCRETE_SPECS))
    def test_json_round_trip_every_protocol(self, name):
        spec = CONCRETE_SPECS[name]
        assert ProtocolSpec.from_json(spec.to_json()) == spec
        assert ProtocolSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    @pytest.mark.parametrize("name", sorted(CONCRETE_SPECS))
    def test_build_every_protocol(self, name):
        spec = CONCRETE_SPECS[name]
        protocol = build_protocol(spec)
        assert protocol.k == 24
        if name in EXPECTED_TYPES:
            assert isinstance(protocol, EXPECTED_TYPES[name])

    @pytest.mark.parametrize("name", sorted(CONCRETE_SPECS))
    def test_specs_are_picklable_and_hashable(self, name):
        spec = CONCRETE_SPECS[name]
        assert pickle.loads(pickle.dumps(spec)) == spec
        assert hash(spec) == hash(pickle.loads(pickle.dumps(spec)))

    def test_build_matches_direct_construction(self):
        spec = ProtocolSpec(name="OLOLOHA", k=24, eps_inf=2.0, alpha=0.5)
        built = build_protocol(spec)
        direct = OLOLOHA(24, 2.0, 1.0)
        assert built.g == direct.g
        assert built.chained_parameters == direct.chained_parameters

    def test_dbitflip_defaults_follow_paper_rule(self):
        small = build_protocol(ProtocolSpec(name="dBitFlipPM", k=100, eps_inf=2.0))
        assert (small.b, small.d) == (100, 1)
        large = build_protocol(
            ProtocolSpec(name="dBitFlipPM", k=1412, eps_inf=2.0, params={"d": "b"})
        )
        assert large.b == dbitflip_bucket_count(1412) == 353
        assert large.d == large.b

    def test_at_fills_grid_fields(self):
        template = ProtocolSpec(name="L-OSUE")
        concrete = template.at(k=16, eps_inf=2.0, alpha=0.5)
        assert concrete.is_concrete
        assert concrete.resolved_eps_1 == pytest.approx(1.0)
        # Overriding eps_1 clears alpha (and vice versa).
        assert concrete.at(eps_1=0.7).alpha is None
        assert concrete.at(eps_1=0.7).resolved_eps_1 == 0.7

    def test_display_name_defaults_to_name(self):
        assert ProtocolSpec(name="L-OSUE").display_name == "L-OSUE"
        assert ProtocolSpec(name="dBitFlipPM", label="1BitFlipPM").display_name == "1BitFlipPM"


class TestSpecValidation:
    def test_unknown_protocol_name_rejected(self):
        with pytest.raises(ParameterError, match="unknown protocol"):
            build_protocol(ProtocolSpec(name="L-IMAGINARY", k=8, eps_inf=1.0, alpha=0.5))

    def test_non_concrete_spec_rejected(self):
        with pytest.raises(ParameterError, match="not concrete"):
            build_protocol(ProtocolSpec(name="L-OSUE", alpha=0.5))

    def test_missing_first_report_budget_rejected(self):
        with pytest.raises(ParameterError, match="alpha.*eps_1|eps_1.*alpha"):
            build_protocol(ProtocolSpec(name="L-OSUE", k=8, eps_inf=1.0))

    def test_alpha_and_eps_1_mutually_exclusive(self):
        with pytest.raises(ParameterError, match="mutually exclusive"):
            ProtocolSpec(name="L-OSUE", alpha=0.5, eps_1=1.0)

    def test_alpha_out_of_range_rejected(self):
        with pytest.raises(ParameterError, match="alpha"):
            ProtocolSpec(name="L-OSUE", alpha=1.5)

    def test_unknown_builder_param_rejected(self):
        with pytest.raises(ParameterError, match="unknown params"):
            build_protocol(
                ProtocolSpec(name="L-GRR", k=8, eps_inf=1.0, alpha=0.5, params={"b": 4})
            )

    def test_non_scalar_param_rejected(self):
        with pytest.raises(ParameterError, match="JSON scalar"):
            ProtocolSpec(name="dBitFlipPM", params={"d": [1, 2]})

    def test_unknown_spec_field_rejected(self):
        with pytest.raises(ParameterError, match="unknown protocol spec fields"):
            ProtocolSpec.from_dict({"name": "L-OSUE", "epsilon": 1.0})

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_protocol("L-GRR", lambda spec: None)

    def test_invalid_dbitflip_d_string_rejected(self):
        with pytest.raises(ParameterError, match="'b'"):
            build_protocol(
                ProtocolSpec(name="dBitFlipPM", k=8, eps_inf=1.0, params={"d": "all"})
            )


class TestSweepSpec:
    def _spec(self):
        return SweepSpec(
            protocols=(
                ProtocolSpec(name="L-OSUE"),
                ProtocolSpec(name="dBitFlipPM", label="1BitFlipPM", params={"d": 1}),
            ),
            eps_inf_values=(0.5, 2.0),
            alpha_values=(0.5,),
            datasets=("syn",),
            n_runs=1,
            dataset_scale=0.02,
            seed=7,
            name="demo",
        )

    def test_json_round_trip(self, tmp_path):
        spec = self._spec()
        assert SweepSpec.from_json(spec.to_json()) == spec
        path = spec.save(tmp_path / "grid.json")
        assert load_sweep_spec(path) == spec

    def test_grid_accessors(self):
        spec = self._spec()
        assert list(spec.grid_protocols()) == ["L-OSUE", "1BitFlipPM"]
        assert spec.n_grid_points == 4
        assert spec.experiment_id("syn") == "demo_syn"

    def test_duplicate_display_names_rejected(self):
        with pytest.raises(ParameterError, match="unique"):
            SweepSpec(
                protocols=(
                    ProtocolSpec(name="dBitFlipPM"),
                    ProtocolSpec(name="dBitFlipPM"),
                ),
                eps_inf_values=(1.0,),
                alpha_values=(0.5,),
            )

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ParameterError, match="not found"):
            load_sweep_spec(tmp_path / "absent.json")

    def test_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ParameterError, match="invalid JSON"):
            load_sweep_spec(path)


class TestSpecSweepEquivalence:
    """Acceptance criterion: spec-driven sweeps are bit-identical to the
    legacy factory path, for two protocols x two grid points, serial and
    parallel."""

    GRID = dict(eps_inf_values=[1.0, 2.0], alpha_values=[0.5], n_runs=2, rng=123)

    def _legacy(self, dataset, **overrides):
        factories = {
            "OLOLOHA": lambda k, e, e1: OLOLOHA(k, e, e1),
            "RAPPOR": lambda k, e, e1: LSUE(k, e, e1),
        }
        with pytest.warns(DeprecationWarning):
            return run_sweep(
                factories, dataset, keep_runs=False, **{**self.GRID, **overrides}
            )

    def _specs(self, dataset, **overrides):
        specs = {
            "OLOLOHA": ProtocolSpec(name="OLOLOHA"),
            "RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR"),
        }
        return run_sweep(specs, dataset, keep_runs=False, **{**self.GRID, **overrides})

    def test_spec_sweep_bit_identical_to_legacy_factories(self, tiny_dataset):
        legacy = self._legacy(tiny_dataset)
        via_specs = self._specs(tiny_dataset)
        assert len(legacy) == len(via_specs) == 4
        for a, b in zip(legacy, via_specs):
            assert (a.protocol_name, a.alpha, a.eps_inf) == (
                b.protocol_name,
                b.alpha,
                b.eps_inf,
            )
            assert a.mse_avg == b.mse_avg
            assert a.eps_avg == b.eps_avg
            assert a.run_mses == b.run_mses

    def test_spec_sweep_bit_identical_serial_vs_two_workers(self, tiny_dataset):
        serial = self._specs(tiny_dataset)
        parallel = self._specs(tiny_dataset, n_workers=2)
        for a, b in zip(serial, parallel):
            assert a.mse_avg == b.mse_avg
            assert a.eps_avg == b.eps_avg
            assert a.run_mses == b.run_mses


class TestShardedSpecSimulation:
    def test_spec_shards_match_protocol_shards(self, tiny_dataset):
        spec = ProtocolSpec(name="L-OSUE", k=tiny_dataset.k, eps_inf=2.0, eps_1=1.0)
        from_protocol = simulate_protocol_sharded(
            build_protocol(spec), tiny_dataset, n_shards=3, rng=5
        )
        from_spec = simulate_protocol_sharded(spec, tiny_dataset, n_shards=3, rng=5)
        assert np.array_equal(from_protocol.estimates, from_spec.estimates)

    def test_distributed_shards_bit_identical(self, tiny_dataset):
        spec = ProtocolSpec(name="OLOLOHA", k=tiny_dataset.k, eps_inf=2.0, alpha=0.5)
        serial = simulate_protocol_sharded(spec, tiny_dataset, n_shards=4, rng=9)
        distributed = simulate_protocol_sharded(
            spec, tiny_dataset, n_shards=4, rng=9, n_workers=2
        )
        assert np.array_equal(serial.estimates, distributed.estimates)
        assert np.array_equal(
            serial.distinct_memoized_per_user, distributed.distinct_memoized_per_user
        )

    def test_distributing_protocol_objects_rejected(self, tiny_dataset):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError, match="ProtocolSpec"):
            simulate_protocol_sharded(
                OLOLOHA(tiny_dataset.k, 2.0, 1.0),
                tiny_dataset,
                n_shards=2,
                rng=0,
                n_workers=2,
            )


class TestSweepSpecFingerprint:
    def _base_spec(self, **overrides):
        kwargs = dict(
            name="fp",
            protocols=(ProtocolSpec(name="L-OSUE"),),
            eps_inf_values=(0.5, 2.0),
            alpha_values=(0.5,),
            datasets=("syn",),
            n_runs=2,
            dataset_scale=0.05,
            seed=11,
        )
        kwargs.update(overrides)
        return SweepSpec(**kwargs)

    def test_fingerprint_is_stable(self):
        assert self._base_spec().fingerprint() == self._base_spec().fingerprint()

    def test_fingerprint_changes_with_result_determining_fields(self):
        base = self._base_spec().fingerprint()
        assert self._base_spec(seed=12).fingerprint() != base
        assert self._base_spec(n_runs=3).fingerprint() != base
        assert self._base_spec(eps_inf_values=(0.5,)).fingerprint() != base
        assert self._base_spec(dataset_scale=0.1).fingerprint() != base

    def test_fingerprint_ignores_non_result_determining_fields(self):
        # Worker count never changes results (bit-identical sweeps), adding
        # a dataset does not change the finished datasets' rows, and the
        # name is already the CSV filename — none may invalidate a resume.
        base = self._base_spec().fingerprint()
        assert self._base_spec(n_workers=8).fingerprint() == base
        assert self._base_spec(datasets=("syn", "adult")).fingerprint() == base
        assert self._base_spec(name="renamed").fingerprint() == base


class TestIngestSpec:
    def _spec(self, **overrides):
        from repro.specs import IngestSpec

        kwargs = dict(
            protocol=ProtocolSpec(name="L-OSUE", k=8, eps_inf=2.0, eps_1=1.0),
            n_rounds=4,
        )
        kwargs.update(overrides)
        return IngestSpec(**kwargs)

    def test_json_round_trip(self, tmp_path):
        from repro.specs import IngestSpec, load_ingest_spec

        spec = self._spec(
            name="edge",
            port=8471,
            window_seconds=2.5,
            quorum=100,
            late_policy="absorb",
            queue_capacity=32,
            auth_key_env="INGEST_KEY",
        )
        path = spec.save(tmp_path / "ingest.json")
        restored = load_ingest_spec(path)
        assert restored == spec
        assert IngestSpec.from_json(spec.to_json()) == spec

    def test_defaults_round_trip_without_optional_noise(self):
        spec = self._spec()
        payload = spec.to_dict()
        # None-valued optionals (window, quorum, auth) stay out of the JSON.
        assert "window_seconds" not in payload
        assert "quorum" not in payload
        assert "auth_key_env" not in payload

    def test_protocol_must_be_concrete(self):
        with pytest.raises(ParameterError, match="concrete"):
            self._spec(protocol=ProtocolSpec(name="L-OSUE", alpha=0.5))

    def test_validation_catches_bad_fields(self):
        with pytest.raises(ParameterError, match="late_policy"):
            self._spec(late_policy="retry")
        with pytest.raises(ParameterError, match="port"):
            self._spec(port=70000)
        with pytest.raises(ParameterError, match="n_rounds"):
            self._spec(n_rounds=0)
        with pytest.raises(ParameterError, match="quorum"):
            self._spec(quorum=0)
        with pytest.raises(ParameterError, match="window_seconds"):
            self._spec(window_seconds=-1.0)
        with pytest.raises(ParameterError, match="auth_key_env"):
            self._spec(auth_key_env="")

    def test_unknown_fields_rejected(self):
        from repro.specs import IngestSpec

        with pytest.raises(ParameterError, match="unknown ingest spec fields"):
            IngestSpec.from_dict(
                {
                    "protocol": {"name": "L-OSUE", "k": 8, "eps_inf": 2.0, "eps_1": 1.0},
                    "n_rounds": 2,
                    "max_clients": 10,
                }
            )

    def test_missing_required_fields_rejected(self):
        from repro.specs import IngestSpec

        with pytest.raises(ParameterError, match="requires a 'protocol'"):
            IngestSpec.from_dict({"n_rounds": 2})

    def test_load_missing_or_invalid_file_rejected(self, tmp_path):
        from repro.specs import load_ingest_spec

        with pytest.raises(ParameterError, match="not found"):
            load_ingest_spec(tmp_path / "nope.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        with pytest.raises(ParameterError, match="invalid JSON"):
            load_ingest_spec(bad)
