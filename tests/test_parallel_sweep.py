"""Tests for the SweepExecutor: parallel bit-identity, fail-fast validation,
dispersion statistics, incremental result flushing and resume."""

import warnings

import numpy as np
import pytest

from repro.exceptions import ExperimentError
from repro.longitudinal import LGRR, LSUE, OLOLOHA
from repro.simulation.sweep import (
    SweepExecutor,
    SweepTask,
    completed_points_from_rows,
    run_sweep,
)
from repro.specs import ProtocolSpec
from repro.store import ResultsStore


def _specs():
    return {
        "OLOLOHA": ProtocolSpec(name="OLOLOHA"),
        "RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR"),
    }


class TestParallelBitIdentity:
    def test_parallel_reproduces_serial_bit_for_bit(self, tiny_dataset):
        kwargs = dict(
            protocols=_specs(),
            dataset=tiny_dataset,
            eps_inf_values=[1.0, 2.0],
            alpha_values=[0.5],
            n_runs=2,
            rng=123,
        )
        serial = run_sweep(**kwargs, n_workers=1)
        parallel = run_sweep(**kwargs, n_workers=2, keep_runs=False)
        assert len(serial) == len(parallel) == 4
        for s, p in zip(serial, parallel):
            assert (s.protocol_name, s.alpha, s.eps_inf) == (
                p.protocol_name,
                p.alpha,
                p.eps_inf,
            )
            # Bit-for-bit, not approx: both paths must consume identical
            # derived randomness streams.
            assert s.mse_avg == p.mse_avg
            assert s.eps_avg == p.eps_avg
            assert s.run_mses == p.run_mses

    def test_shared_dataset_pool_reproduces_serial_bit_for_bit(self, tiny_dataset):
        """shared_dataset=True publishes one shm copy of the dataset for the
        pool workers; results must stay bit-identical to the serial path."""
        kwargs = dict(
            protocols=_specs(),
            dataset=tiny_dataset,
            eps_inf_values=[1.0],
            alpha_values=[0.5],
            n_runs=2,
            rng=123,
            keep_runs=False,
        )
        serial = run_sweep(**kwargs, n_workers=1)
        shared = run_sweep(**kwargs, n_workers=2, shared_dataset=True)
        for s, p in zip(serial, shared):
            assert s.mse_avg == p.mse_avg
            assert s.eps_avg == p.eps_avg

    def test_worker_count_does_not_change_results(self, tiny_dataset):
        kwargs = dict(
            protocols={"L-GRR": ProtocolSpec(name="L-GRR")},
            dataset=tiny_dataset,
            eps_inf_values=[2.0],
            alpha_values=[0.4, 0.6],
            n_runs=3,
            rng=7,
            keep_runs=False,
        )
        two = run_sweep(**kwargs, n_workers=2)
        three = run_sweep(**kwargs, n_workers=3)
        for a, b in zip(two, three):
            assert a.mse_avg == b.mse_avg and a.eps_avg == b.eps_avg

    def test_task_rejects_wrong_dataset(self, tiny_dataset, small_dataset):
        executor = SweepExecutor(
            _specs(), tiny_dataset, eps_inf_values=[1.0], alpha_values=[0.5]
        )
        task = executor.tasks()[0]
        assert task.dataset_name == tiny_dataset.name
        with pytest.raises(ExperimentError, match="reached a worker"):
            task.check_dataset(small_dataset)

    def test_tasks_are_picklable(self, tiny_dataset):
        import pickle

        executor = SweepExecutor(
            _specs(), tiny_dataset, eps_inf_values=[1.0], alpha_values=[0.5], n_runs=2
        )
        tasks = executor.tasks()
        assert len(tasks) == 4
        restored = pickle.loads(pickle.dumps(tasks))
        assert all(isinstance(task, SweepTask) for task in restored)
        assert restored == tasks
        protocol = restored[0].build(tiny_dataset.k)
        assert protocol.k == tiny_dataset.k


class TestLegacyFactoryShim:
    def test_factories_still_run_but_warn(self, tiny_dataset):
        factories = {
            "OLOLOHA": lambda k, e, e1: OLOLOHA(k, e, e1),
            "RAPPOR": lambda k, e, e1: LSUE(k, e, e1),
        }
        kwargs = dict(
            dataset=tiny_dataset,
            eps_inf_values=[1.0, 2.0],
            alpha_values=[0.5],
            n_runs=1,
            rng=123,
            keep_runs=False,
        )
        with pytest.warns(DeprecationWarning, match="factories are deprecated"):
            legacy = run_sweep(factories, **kwargs)
        via_specs = run_sweep(_specs(), **kwargs)
        # The deprecated closure path and the spec path are bit-identical.
        for a, b in zip(legacy, via_specs):
            assert a.protocol_name == b.protocol_name
            assert a.mse_avg == b.mse_avg
            assert a.eps_avg == b.eps_avg

    def test_protocol_factories_keyword_still_accepted(self, tiny_dataset):
        with pytest.warns(DeprecationWarning):
            points = run_sweep(
                protocol_factories={"L-GRR": lambda k, e, e1: LGRR(k, e, e1)},
                dataset=tiny_dataset,
                eps_inf_values=[1.0],
                alpha_values=[0.5],
            )
        assert len(points) == 1

    def test_mixing_specs_and_factories_rejected(self, tiny_dataset):
        with pytest.raises(ExperimentError, match="mix"):
            SweepExecutor(
                {
                    "OLOLOHA": ProtocolSpec(name="OLOLOHA"),
                    "RAPPOR": lambda k, e, e1: LSUE(k, e, e1),
                },
                tiny_dataset,
                eps_inf_values=[1.0],
                alpha_values=[0.5],
            )


class TestFailFastValidation:
    def test_invalid_alpha_rejected_before_any_simulation(self, tiny_dataset):
        # A huge run count would make the old post-derivation validation
        # allocate an enormous generator table before failing; the executor
        # must reject the grid up front.
        with pytest.raises(ExperimentError, match="alpha"):
            SweepExecutor(
                _specs(),
                tiny_dataset,
                eps_inf_values=[1.0],
                alpha_values=[1.5],
                n_runs=1_000_000_000,
            )

    def test_empty_grid_rejected(self, tiny_dataset):
        with pytest.raises(ExperimentError):
            SweepExecutor(_specs(), tiny_dataset, eps_inf_values=[], alpha_values=[0.5])

    def test_grid_order_is_protocol_alpha_eps(self, tiny_dataset):
        executor = SweepExecutor(
            _specs(),
            tiny_dataset,
            eps_inf_values=[1.0, 2.0],
            alpha_values=[0.4, 0.6],
        )
        assert executor.grid[:4] == [
            ("OLOLOHA", 0.4, 1.0),
            ("OLOLOHA", 0.4, 2.0),
            ("OLOLOHA", 0.6, 1.0),
            ("OLOLOHA", 0.6, 2.0),
        ]


class TestDispersionStatistics:
    def test_mse_std_available_without_kept_runs(self, tiny_dataset):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # np.std([]) would warn
            points = run_sweep(
                {"RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR")},
                tiny_dataset,
                eps_inf_values=[1.0],
                alpha_values=[0.5],
                n_runs=3,
                keep_runs=False,
            )
            std = points[0].mse_std
        assert points[0].runs == []
        assert len(points[0].run_mses) == 3
        assert np.isfinite(std)
        assert std == pytest.approx(float(np.std(points[0].run_mses)))

    def test_mse_std_nan_without_any_runs(self):
        from repro.simulation.sweep import SweepPoint

        point = SweepPoint(
            protocol_name="x",
            dataset_name="y",
            eps_inf=1.0,
            alpha=0.5,
            mse_avg=0.0,
            eps_avg=0.0,
            worst_case_budget=0.0,
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.isnan(point.mse_std)


class TestIncrementalFlushing:
    def test_sweep_flushes_points_to_store(self, tiny_dataset, tmp_path):
        store = ResultsStore(tmp_path)
        points = run_sweep(
            _specs(),
            tiny_dataset,
            eps_inf_values=[1.0, 2.0],
            alpha_values=[0.5],
            n_runs=2,
            rng=0,
            keep_runs=False,
            store=store,
            experiment_id="sweep_test",
        )
        rows = store.load_rows("sweep_test")
        assert len(rows) == len(points) == 4
        for row, point in zip(rows, points):
            assert row["protocol"] == point.protocol_name
            assert float(row["mse_avg"]) == pytest.approx(point.mse_avg)
            assert int(row["n_runs"]) == 2

    def test_parallel_sweep_flushes_in_grid_order(self, tiny_dataset, tmp_path):
        store = ResultsStore(tmp_path)
        points = run_sweep(
            _specs(),
            tiny_dataset,
            eps_inf_values=[1.0, 2.0],
            alpha_values=[0.5],
            n_runs=1,
            rng=0,
            keep_runs=False,
            n_workers=2,
            store=store,
            experiment_id="sweep_par",
            flush_every=2,
        )
        rows = store.load_rows("sweep_par")
        assert [row["protocol"] for row in rows] == [p.protocol_name for p in points]
        assert [float(row["eps_inf"]) for row in rows] == [p.eps_inf for p in points]

    def test_rerun_with_same_experiment_id_rejected(self, tiny_dataset, tmp_path):
        """A second sweep must not silently append duplicate grid points."""
        store = ResultsStore(tmp_path)
        kwargs = dict(
            protocols={"RAPPOR": ProtocolSpec(name="L-SUE", label="RAPPOR")},
            dataset=tiny_dataset,
            eps_inf_values=[1.0],
            alpha_values=[0.5],
            keep_runs=False,
            store=store,
            experiment_id="dup",
        )
        run_sweep(**kwargs)
        with pytest.raises(ExperimentError, match="already exist"):
            run_sweep(**kwargs)
        assert len(store.load_rows("dup")) == 1

    def test_completed_prefix_flushed_when_a_task_fails(self, tiny_dataset, tmp_path):
        """Finished grid points reach the store even if a later point errors."""
        store = ResultsStore(tmp_path)

        def late_fail_factory(k, eps_inf, eps_1):
            # constructs fine; fails inside simulate_protocol (domain mismatch)
            return LSUE(k + (1 if eps_inf == 3.0 else 0), eps_inf, eps_1)

        with pytest.raises(ExperimentError):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                run_sweep(
                    {"RAPPOR": late_fail_factory},
                    tiny_dataset,
                    eps_inf_values=[1.0, 2.0, 3.0],
                    alpha_values=[0.5],
                    keep_runs=False,
                    store=store,
                    experiment_id="latefail",
                    flush_every=10,
                )
        rows = store.load_rows("latefail")
        assert [float(row["eps_inf"]) for row in rows] == [1.0, 2.0]

    def test_append_rows_accumulates(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows("inc", [{"a": 1, "b": 2}])
        store.append_rows("inc", [{"a": 3, "b": 4}])
        rows = store.load_rows("inc")
        assert [row["a"] for row in rows] == ["1", "3"]

    def test_append_rows_rejects_column_mismatch(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows("inc2", [{"a": 1}])
        with pytest.raises(ExperimentError):
            store.append_rows("inc2", [{"c": 1}])


class TestResume:
    def _run(self, dataset, store, completed=None, resume=False):
        return run_sweep(
            _specs(),
            dataset,
            eps_inf_values=[1.0, 2.0],
            alpha_values=[0.5],
            n_runs=2,
            rng=42,
            keep_runs=False,
            store=store,
            experiment_id="resumable",
            completed=completed,
            resume=resume,
        )

    def test_resume_skips_completed_and_matches_uninterrupted_run(
        self, tiny_dataset, tmp_path
    ):
        full_store = ResultsStore(tmp_path / "full")
        self._run(tiny_dataset, full_store)
        full_rows = full_store.load_rows("resumable")
        assert len(full_rows) == 4

        # Simulate an interrupted sweep: only the first two rows survived.
        partial_store = ResultsStore(tmp_path / "partial")
        partial_store.append_rows("resumable", [dict(row) for row in full_rows[:2]])
        completed = completed_points_from_rows(partial_store.load_rows("resumable"))
        assert len(completed) == 2

        points = self._run(
            tiny_dataset, partial_store, completed=completed, resume=True
        )
        # Skipped points are returned as None, recomputed ones as SweepPoint.
        assert [point is None for point in points] == [True, True, False, False]
        resumed_rows = partial_store.load_rows("resumable")
        assert resumed_rows == full_rows

    def test_resume_without_flag_rejected(self, tiny_dataset, tmp_path):
        store = ResultsStore(tmp_path)
        self._run(tiny_dataset, store)
        with pytest.raises(ExperimentError, match="resume"):
            self._run(tiny_dataset, store, completed=set())

    def test_completed_points_from_rows_rejects_malformed(self):
        with pytest.raises(ExperimentError, match="cannot resume"):
            completed_points_from_rows([{"protocol": "x"}])

    def test_fully_completed_grid_runs_nothing(self, tiny_dataset, tmp_path):
        store = ResultsStore(tmp_path)
        self._run(tiny_dataset, store)
        completed = completed_points_from_rows(store.load_rows("resumable"))
        points = self._run(
            tiny_dataset, store, completed=completed, resume=True
        )
        assert all(point is None for point in points)
        assert len(store.load_rows("resumable")) == 4
