"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.specs import SweepSpec, load_sweep_spec


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prog_name_matches_installed_script(self):
        # pyproject installs the entry point as ``repro-ldp``.
        assert build_parser().prog == "repro-ldp"

    def test_figure3_accepts_dataset_choices(self):
        args = build_parser().parse_args(["figure3", "--dataset", "syn", "adult"])
        assert args.dataset == ["syn", "adult"]

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3", "--dataset", "imaginary"])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.eps == [0.5, 2.0, 5.0]
        assert args.alpha == [0.5]


class TestCommands:
    def test_datasets_summary(self, capsys):
        assert main(["datasets", "--scale", "0.01", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "syn" in output and "adult" in output

    def test_figure1_command(self, capsys):
        assert main(["figure1", "--eps", "0.5", "2.0", "--alpha", "0.5"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure2_command(self, capsys):
        assert main(["figure2", "--eps", "0.5", "2.0", "--alpha", "0.4"]) == 0
        assert "OLOLOHA" in capsys.readouterr().out

    def test_table1_command_with_save(self, capsys, tmp_path):
        code = main(["table1", "--k", "100", "--eps-inf", "2.0", "--output-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert list(tmp_path.glob("*.csv"))

    def test_figure3_command_small(self, capsys, tmp_path):
        code = main(
            [
                "figure3",
                "--dataset", "syn",
                "--eps", "0.5", "2.0",
                "--alpha", "0.5",
                "--scale", "0.02",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "MSE_avg" in output
        assert list(tmp_path.glob("figure3.csv"))

    def test_table2_command_small(self, capsys):
        code = main(
            ["table2", "--dataset", "syn", "--eps", "0.5", "--alpha", "0.5", "--scale", "0.02"]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_streams_grid_to_csv(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(grid), "--output-dir", str(out)]) == 0
        output = capsys.readouterr().out
        assert "4 grid points" in output and "0 already complete" in output
        csv_path = out / "cli_syn.csv"
        assert csv_path.exists()
        lines = csv_path.read_text().strip().splitlines()
        # fingerprint comment + header + 4 rows
        assert len(lines) == 6
        assert lines[0].startswith("# sweep_spec_fingerprint=")

    def test_sweep_shared_dataset_and_backend_flags(
        self, capsys, tmp_path, write_sweep_grid, monkeypatch
    ):
        """--shared-dataset and --kernel-backend produce the same CSV as the
        default sweep (bit-identical grid, numpy backend pinned via env)."""
        import os

        from repro.simulation.kernels_backend import BACKEND_ENV_VAR

        # setenv (not delenv) so teardown restores a known value even though
        # the CLI writes os.environ directly; "auto" is the default policy.
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        grid = write_sweep_grid()
        plain_out, shared_out = tmp_path / "plain", tmp_path / "shared"
        assert main(["sweep", "--spec", str(grid), "--output-dir", str(plain_out)]) == 0
        assert (
            main(
                [
                    "sweep",
                    "--spec", str(grid),
                    "--output-dir", str(shared_out),
                    "--shared-dataset",
                    "--workers", "2",
                    "--kernel-backend", "numpy",
                ]
            )
            == 0
        )
        assert "kernel backend: numpy" in capsys.readouterr().out
        assert os.environ[BACKEND_ENV_VAR] == "numpy"
        assert (plain_out / "cli_syn.csv").read_text().splitlines()[1:] == (
            shared_out / "cli_syn.csv"
        ).read_text().splitlines()[1:]

    def test_sweep_csv_fingerprint_matches_spec(self, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        comment = (out / "cli_syn.csv").read_text().splitlines()[0]
        spec = load_sweep_spec(grid)
        assert comment == f"# sweep_spec_fingerprint={spec.fingerprint()}"

    def test_sweep_resume_recomputes_only_missing_points(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        csv_path = out / "cli_syn.csv"
        full = csv_path.read_text()

        # Simulate an interrupted sweep: drop the last two data rows
        # (keeping the fingerprint comment, the header and two rows).
        lines = full.strip().splitlines()
        csv_path.write_text("\n".join(lines[:4]) + "\n", encoding="utf-8")

        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 already complete" in output and "2 to run" in output
        # Bit-identical to the uninterrupted run: resumed points consume the
        # same derived streams.
        assert csv_path.read_text() == full

    def test_sweep_resume_refuses_csv_from_a_different_spec(self, capsys, tmp_path, write_sweep_grid):
        """A fingerprinted CSV written by a different grid must be refused."""
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        before = (out / "cli_syn.csv").read_text()

        # Re-point the spec at a different eps grid under the same name.
        payload = json.loads((tmp_path / "grid.json").read_text())
        payload["eps_inf_values"] = [1.0, 4.0]
        (tmp_path / "grid.json").write_text(json.dumps(payload))

        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"])
        assert code == 2
        assert "refusing to resume" in capsys.readouterr().err
        # The refusal must leave the old CSV untouched.
        assert (out / "cli_syn.csv").read_text() == before

    def test_sweep_resume_warns_on_legacy_csv_without_fingerprint(
        self, capsys, tmp_path, write_sweep_grid
    ):
        """Pre-fingerprint CSVs still resume (per-row key intersection only)."""
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        csv_path = out / "cli_syn.csv"
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("#")
        # Strip the comment (a CSV from before fingerprinting) and a row.
        csv_path.write_text("\n".join(lines[1:4]) + "\n", encoding="utf-8")

        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"])
        assert code == 0
        output = capsys.readouterr().out
        assert "no spec fingerprint" in output
        assert "2 already complete" in output and "2 to run" in output

    def test_sweep_resume_noop_when_complete(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        assert main(
            ["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"]
        ) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_sweep_without_resume_refuses_existing_csv(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        assert code == 2
        assert "already exist" in capsys.readouterr().err

    def test_sweep_with_bad_spec_file_fails_cleanly(self, capsys, tmp_path, write_sweep_grid):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken", encoding="utf-8")
        code = main(["sweep", "--spec", str(bad), "--output-dir", str(tmp_path / "o")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestEmitSpec:
    def test_figure3_emits_consumable_sweep_spec(self, capsys, tmp_path):
        target = tmp_path / "figure3.json"
        code = main(
            [
                "figure3",
                "--dataset", "syn",
                "--eps", "0.5", "2.0",
                "--alpha", "0.5",
                "--scale", "0.02",
                "--emit-spec", str(target),
            ]
        )
        assert code == 0
        assert "wrote sweep spec" in capsys.readouterr().out
        spec = load_sweep_spec(target)
        assert spec.eps_inf_values == (0.5, 2.0)
        assert spec.datasets == ("syn",)
        # The emitted grid names the full paper line-up.
        assert {"RAPPOR", "OLOLOHA", "1BitFlipPM"} <= set(spec.grid_protocols())
        # And it round-trips through JSON on disk.
        assert SweepSpec.from_dict(json.loads(target.read_text())) == spec
