"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure3_accepts_dataset_choices(self):
        args = build_parser().parse_args(["figure3", "--dataset", "syn", "adult"])
        assert args.dataset == ["syn", "adult"]

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3", "--dataset", "imaginary"])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.eps == [0.5, 2.0, 5.0]
        assert args.alpha == [0.5]


class TestCommands:
    def test_datasets_summary(self, capsys):
        assert main(["datasets", "--scale", "0.01", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "syn" in output and "adult" in output

    def test_figure1_command(self, capsys):
        assert main(["figure1", "--eps", "0.5", "2.0", "--alpha", "0.5"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure2_command(self, capsys):
        assert main(["figure2", "--eps", "0.5", "2.0", "--alpha", "0.4"]) == 0
        assert "OLOLOHA" in capsys.readouterr().out

    def test_table1_command_with_save(self, capsys, tmp_path):
        code = main(["table1", "--k", "100", "--eps-inf", "2.0", "--output-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert list(tmp_path.glob("*.csv"))

    def test_figure3_command_small(self, capsys, tmp_path):
        code = main(
            [
                "figure3",
                "--dataset", "syn",
                "--eps", "0.5", "2.0",
                "--alpha", "0.5",
                "--scale", "0.02",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "MSE_avg" in output
        assert list(tmp_path.glob("figure3.csv"))

    def test_table2_command_small(self, capsys):
        code = main(
            ["table2", "--dataset", "syn", "--eps", "0.5", "--alpha", "0.5", "--scale", "0.02"]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out
