"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.specs import SweepSpec, load_sweep_spec


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_prog_name_matches_installed_script(self):
        # pyproject installs the entry point as ``repro-ldp``.
        assert build_parser().prog == "repro-ldp"

    def test_figure3_accepts_dataset_choices(self):
        args = build_parser().parse_args(["figure3", "--dataset", "syn", "adult"])
        assert args.dataset == ["syn", "adult"]

    def test_invalid_dataset_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure3", "--dataset", "imaginary"])

    def test_grid_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.eps == [0.5, 2.0, 5.0]
        assert args.alpha == [0.5]


class TestCommands:
    def test_datasets_summary(self, capsys):
        assert main(["datasets", "--scale", "0.01", "--seed", "0"]) == 0
        output = capsys.readouterr().out
        assert "syn" in output and "adult" in output

    def test_figure1_command(self, capsys):
        assert main(["figure1", "--eps", "0.5", "2.0", "--alpha", "0.5"]) == 0
        assert "Figure 1" in capsys.readouterr().out

    def test_figure2_command(self, capsys):
        assert main(["figure2", "--eps", "0.5", "2.0", "--alpha", "0.4"]) == 0
        assert "OLOLOHA" in capsys.readouterr().out

    def test_table1_command_with_save(self, capsys, tmp_path):
        code = main(["table1", "--k", "100", "--eps-inf", "2.0", "--output-dir", str(tmp_path)])
        assert code == 0
        output = capsys.readouterr().out
        assert "Table 1" in output
        assert list(tmp_path.glob("*.csv"))

    def test_figure3_command_small(self, capsys, tmp_path):
        code = main(
            [
                "figure3",
                "--dataset", "syn",
                "--eps", "0.5", "2.0",
                "--alpha", "0.5",
                "--scale", "0.02",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "MSE_avg" in output
        assert list(tmp_path.glob("figure3.csv"))

    def test_table2_command_small(self, capsys):
        code = main(
            ["table2", "--dataset", "syn", "--eps", "0.5", "--alpha", "0.5", "--scale", "0.02"]
        )
        assert code == 0
        assert "Table 2" in capsys.readouterr().out


class TestSweepCommand:
    def test_sweep_streams_grid_to_csv(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        assert main(["sweep", "--spec", str(grid), "--output-dir", str(out)]) == 0
        output = capsys.readouterr().out
        assert "4 grid points" in output and "0 already complete" in output
        csv_path = out / "cli_syn.csv"
        assert csv_path.exists()
        lines = csv_path.read_text().strip().splitlines()
        # fingerprint comment + header + 4 rows
        assert len(lines) == 6
        assert lines[0].startswith("# sweep_spec_fingerprint=")

    def test_sweep_shared_dataset_and_backend_flags(
        self, capsys, tmp_path, write_sweep_grid, monkeypatch
    ):
        """--shared-dataset and --kernel-backend produce the same CSV as the
        default sweep (bit-identical grid, numpy backend pinned via env)."""
        import os

        from repro.simulation.kernels_backend import BACKEND_ENV_VAR

        # setenv (not delenv) so teardown restores a known value even though
        # the CLI writes os.environ directly; "auto" is the default policy.
        monkeypatch.setenv(BACKEND_ENV_VAR, "auto")
        grid = write_sweep_grid()
        plain_out, shared_out = tmp_path / "plain", tmp_path / "shared"
        assert main(["sweep", "--spec", str(grid), "--output-dir", str(plain_out)]) == 0
        assert (
            main(
                [
                    "sweep",
                    "--spec", str(grid),
                    "--output-dir", str(shared_out),
                    "--shared-dataset",
                    "--workers", "2",
                    "--kernel-backend", "numpy",
                ]
            )
            == 0
        )
        assert "kernel backend: numpy" in capsys.readouterr().out
        assert os.environ[BACKEND_ENV_VAR] == "numpy"
        assert (plain_out / "cli_syn.csv").read_text().splitlines()[1:] == (
            shared_out / "cli_syn.csv"
        ).read_text().splitlines()[1:]

    def test_sweep_csv_fingerprint_matches_spec(self, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        comment = (out / "cli_syn.csv").read_text().splitlines()[0]
        spec = load_sweep_spec(grid)
        assert comment == f"# sweep_spec_fingerprint={spec.fingerprint()}"

    def test_sweep_resume_recomputes_only_missing_points(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        csv_path = out / "cli_syn.csv"
        full = csv_path.read_text()

        # Simulate an interrupted sweep: drop the last two data rows
        # (keeping the fingerprint comment, the header and two rows).
        lines = full.strip().splitlines()
        csv_path.write_text("\n".join(lines[:4]) + "\n", encoding="utf-8")

        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"])
        assert code == 0
        output = capsys.readouterr().out
        assert "2 already complete" in output and "2 to run" in output
        # Bit-identical to the uninterrupted run: resumed points consume the
        # same derived streams.
        assert csv_path.read_text() == full

    def test_sweep_resume_refuses_csv_from_a_different_spec(self, capsys, tmp_path, write_sweep_grid):
        """A fingerprinted CSV written by a different grid must be refused."""
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        before = (out / "cli_syn.csv").read_text()

        # Re-point the spec at a different eps grid under the same name.
        payload = json.loads((tmp_path / "grid.json").read_text())
        payload["eps_inf_values"] = [1.0, 4.0]
        (tmp_path / "grid.json").write_text(json.dumps(payload))

        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"])
        assert code == 2
        assert "refusing to resume" in capsys.readouterr().err
        # The refusal must leave the old CSV untouched.
        assert (out / "cli_syn.csv").read_text() == before

    def test_sweep_resume_warns_on_legacy_csv_without_fingerprint(
        self, capsys, tmp_path, write_sweep_grid
    ):
        """Pre-fingerprint CSVs still resume (per-row key intersection only)."""
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        csv_path = out / "cli_syn.csv"
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("#")
        # Strip the comment (a CSV from before fingerprinting) and a row.
        csv_path.write_text("\n".join(lines[1:4]) + "\n", encoding="utf-8")

        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"])
        assert code == 0
        output = capsys.readouterr().out
        assert "no spec fingerprint" in output
        assert "2 already complete" in output and "2 to run" in output

    def test_sweep_resume_noop_when_complete(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        assert main(
            ["sweep", "--spec", str(grid), "--output-dir", str(out), "--resume"]
        ) == 0
        assert "nothing to do" in capsys.readouterr().out

    def test_sweep_without_resume_refuses_existing_csv(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        capsys.readouterr()
        code = main(["sweep", "--spec", str(grid), "--output-dir", str(out)])
        assert code == 2
        assert "already exist" in capsys.readouterr().err

    def test_sweep_with_bad_spec_file_fails_cleanly(self, capsys, tmp_path, write_sweep_grid):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken", encoding="utf-8")
        code = main(["sweep", "--spec", str(bad), "--output-dir", str(tmp_path / "o")])
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestSweepStoreBackends:
    """`sweep --store`, `query` and `migrate-store` end to end."""

    def _run(self, grid, out, *extra):
        return main(["sweep", "--spec", str(grid), "--output-dir", str(out), *extra])

    def test_sqlite_sweep_rows_match_csv_sweep(
        self, capsys, tmp_path, write_sweep_grid
    ):
        from repro.store import make_backend

        grid = write_sweep_grid()
        assert self._run(grid, tmp_path / "csvout") == 0
        assert self._run(grid, tmp_path / "dbout", "--store", "sqlite") == 0
        assert "results.sqlite" in capsys.readouterr().out
        with make_backend("csv", tmp_path / "csvout") as c, make_backend(
            "sqlite", tmp_path / "dbout"
        ) as s:
            assert c.load_rows("cli_syn") == s.load_rows("cli_syn")
            assert c.fingerprint("cli_syn") == s.fingerprint("cli_syn")

    def test_spec_store_field_selects_backend_without_flag(
        self, tmp_path, write_sweep_grid
    ):
        grid = write_sweep_grid()
        payload = json.loads(grid.read_text())
        payload["store"] = "sqlite"
        grid.write_text(json.dumps(payload))
        assert self._run(grid, tmp_path / "out") == 0
        assert (tmp_path / "out" / "results.sqlite").exists()
        assert not list((tmp_path / "out").glob("*.csv"))

    def test_sqlite_interrupted_resume_is_bit_identical(
        self, capsys, tmp_path, write_sweep_grid
    ):
        """The sqlite analogue of the CSV truncate-then-resume guarantee:
        delete one committed row, resume, end bit-identical."""
        import sqlite3

        from repro.store import make_backend

        grid = write_sweep_grid()
        out = tmp_path / "out"
        self._run(grid, out, "--store", "sqlite")
        capsys.readouterr()
        with make_backend("sqlite", out) as backend:
            full = backend.load_rows("cli_syn")
        connection = sqlite3.connect(out / "results.sqlite")
        connection.execute(
            "DELETE FROM rows WHERE seq = (SELECT MAX(seq) FROM rows)"
        )
        connection.commit()
        connection.close()
        code = self._run(grid, out, "--store", "sqlite", "--resume")
        assert code == 0
        assert "3 already complete" in capsys.readouterr().out
        with make_backend("sqlite", out) as backend:
            assert backend.load_rows("cli_syn") == full

    def test_sqlite_resume_refuses_different_spec(
        self, capsys, tmp_path, write_sweep_grid
    ):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        self._run(grid, out, "--store", "sqlite")
        capsys.readouterr()
        payload = json.loads(grid.read_text())
        payload["eps_inf_values"] = [1.0, 4.0]
        grid.write_text(json.dumps(payload))
        code = self._run(grid, out, "--store", "sqlite", "--resume")
        assert code == 2
        assert "refusing to resume" in capsys.readouterr().err

    def test_query_filters_and_formats(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        self._run(grid, out, "--store", "sqlite")
        fingerprint = load_sweep_spec(grid).fingerprint()
        capsys.readouterr()

        assert main(["query", "--dir", str(out), "--fingerprint", fingerprint]) == 0
        csv_text = capsys.readouterr().out
        assert csv_text.count("\n") == 5  # header + 4 rows
        assert csv_text.startswith("experiment_id,")

        assert main(["query", "--dir", str(out), "--fingerprint", "0" * 16]) == 0
        assert capsys.readouterr().out == ""

        assert (
            main(
                ["query", "--dir", str(out), "--protocol", "L-OSUE",
                 "--eps-min", "1.0", "--format", "json"]
            )
            == 0
        )
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 1
        assert rows[0]["protocol"] == "L-OSUE" and rows[0]["eps_inf"] == "2.0"

    def test_query_output_file_and_autodetect(self, capsys, tmp_path, write_sweep_grid):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        self._run(grid, out)  # csv backend, auto-detected by query
        capsys.readouterr()
        target = tmp_path / "result.csv"
        assert main(["query", "--dir", str(out), "--output", str(target)]) == 0
        assert "4 matching rows" in capsys.readouterr().out
        assert target.read_text().count("\n") == 5

    def test_query_missing_dir_fails_cleanly(self, capsys, tmp_path):
        code = main(["query", "--dir", str(tmp_path / "absent")])
        assert code == 2
        assert "no results directory" in capsys.readouterr().err

    def test_migrate_store_csv_to_sqlite_round_trip(
        self, capsys, tmp_path, write_sweep_grid
    ):
        from repro.store import make_backend

        grid = write_sweep_grid()
        out = tmp_path / "out"
        self._run(grid, out)
        capsys.readouterr()
        code = main(
            ["migrate-store", "--source", str(out), "--dest", str(tmp_path / "db"),
             "--to", "sqlite"]
        )
        assert code == 0
        assert "migrated 1 experiment (4 rows)" in capsys.readouterr().out
        with make_backend("csv", out) as c, make_backend(
            "sqlite", tmp_path / "db"
        ) as s:
            assert c.load_rows("cli_syn") == s.load_rows("cli_syn")
            assert c.read_header_comment("cli_syn") == s.read_header_comment("cli_syn")
        # The migrated store resumes cleanly: everything is already complete.
        code = main(
            ["sweep", "--spec", str(grid), "--output-dir", str(tmp_path / "db"),
             "--store", "sqlite", "--resume"]
        )
        assert code == 0
        assert "already complete, nothing to do" in capsys.readouterr().out

    def test_migrate_store_refuses_existing_destination(
        self, capsys, tmp_path, write_sweep_grid
    ):
        grid = write_sweep_grid()
        out = tmp_path / "out"
        self._run(grid, out)
        capsys.readouterr()
        args = ["migrate-store", "--source", str(out), "--dest",
                str(tmp_path / "db"), "--to", "sqlite"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 2
        assert "refusing to mix" in capsys.readouterr().err


class TestEmitSpec:
    def test_figure3_emits_consumable_sweep_spec(self, capsys, tmp_path):
        target = tmp_path / "figure3.json"
        code = main(
            [
                "figure3",
                "--dataset", "syn",
                "--eps", "0.5", "2.0",
                "--alpha", "0.5",
                "--scale", "0.02",
                "--emit-spec", str(target),
            ]
        )
        assert code == 0
        assert "wrote sweep spec" in capsys.readouterr().out
        spec = load_sweep_spec(target)
        assert spec.eps_inf_values == (0.5, 2.0)
        assert spec.datasets == ("syn",)
        # The emitted grid names the full paper line-up.
        assert {"RAPPOR", "OLOLOHA", "1BitFlipPM"} <= set(spec.grid_protocols())
        # And it round-trips through JSON on disk.
        assert SweepSpec.from_dict(json.loads(target.read_text())) == spec


class TestIngestLoadgenCli:
    """Flag parity and lifecycle for the live ingestion commands."""

    @pytest.fixture
    def ingest_spec_path(self, tmp_path):
        from repro.specs import IngestSpec, ProtocolSpec

        spec = IngestSpec(
            protocol=ProtocolSpec(name="L-OSUE", k=8, eps_inf=2.0, eps_1=1.0),
            n_rounds=2,
            name="cli-test",
            host="127.0.0.1",
            port=0,
            quorum=20,
        )
        path = tmp_path / "ingest.json"
        path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        return path

    def test_ingest_parser_accepts_service_flags(self):
        args = build_parser().parse_args(
            [
                "ingest",
                "--spec", "ingest.json",
                "--bind", "127.0.0.1:9000",
                "--checkpoint", "state.npz",
                "--checkpoint-interval", "5",
                "--auth-key-env", "REPRO_KEY",
                "--run-seconds", "1.5",
            ]
        )
        assert args.command == "ingest"
        assert args.bind == "127.0.0.1:9000"
        assert args.checkpoint_interval == 5.0
        assert args.run_seconds == 1.5

    def test_loadgen_parser_accepts_traffic_flags(self):
        args = build_parser().parse_args(
            [
                "loadgen",
                "--spec", "ingest.json",
                "--connect", "127.0.0.1:9000",
                "--users", "50",
                "--seed", "7",
                "--batch-size", "16",
                "--rate", "200",
                "--mode", "counts",
            ]
        )
        assert args.command == "loadgen"
        assert args.users == 50
        assert args.mode == "counts"
        assert not args.wrong_key

    def test_subcommands_refuse_inapplicable_flags(self):
        # loadgen has no checkpointing; ingest generates no traffic.
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--spec", "s.json", "--connect", "h:1", "--checkpoint", "c.npz"]
            )
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--spec", "s.json", "--users", "10"])
        with pytest.raises(SystemExit):
            build_parser().parse_args(["ingest", "--spec", "s.json", "--wrong-key"])

    def test_checkpoint_interval_without_checkpoint_is_an_error(
        self, capsys, ingest_spec_path
    ):
        code = main(
            ["ingest", "--spec", str(ingest_spec_path), "--checkpoint-interval", "5"]
        )
        assert code == 2
        assert "requires --checkpoint" in capsys.readouterr().err

    def test_wrong_key_and_auth_key_env_are_mutually_exclusive(
        self, capsys, ingest_spec_path
    ):
        code = main(
            [
                "loadgen",
                "--spec", str(ingest_spec_path),
                "--connect", "127.0.0.1:9000",
                "--wrong-key",
                "--auth-key-env", "REPRO_KEY",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_malformed_bind_rejected(self, capsys, ingest_spec_path):
        code = main(
            ["ingest", "--spec", str(ingest_spec_path), "--bind", "no-port-here"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_spec_file_fails_cleanly(self, capsys, tmp_path):
        code = main(["ingest", "--spec", str(tmp_path / "absent.json")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_unauthenticated_ingest_warns_and_serves(self, capsys, ingest_spec_path):
        code = main(
            ["ingest", "--spec", str(ingest_spec_path), "--run-seconds", "0.2"]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "UNAUTHENTICATED" in captured.err
        assert "listening on 127.0.0.1:" in captured.out
        assert "drained at round 0/2" in captured.out

    def test_authenticated_ingest_does_not_warn(
        self, capsys, monkeypatch, ingest_spec_path
    ):
        monkeypatch.setenv("REPRO_CLI_TEST_KEY", "super-secret")
        code = main(
            [
                "ingest",
                "--spec", str(ingest_spec_path),
                "--auth-key-env", "REPRO_CLI_TEST_KEY",
                "--run-seconds", "0.2",
            ]
        )
        assert code == 0
        assert "UNAUTHENTICATED" not in capsys.readouterr().err


class TestIngestEndToEnd:
    """The full CLI lifecycle over a real socket: serve, drive, kill."""

    def _env(self):
        import os
        import pathlib

        src = pathlib.Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        env["REPRO_E2E_KEY"] = "cli-e2e-shared-secret"
        return env

    def _start_server(self, spec_path, checkpoint, env):
        import subprocess
        import sys

        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "ingest",
                "--spec", str(spec_path),
                "--auth-key-env", "REPRO_E2E_KEY",
                "--checkpoint", str(checkpoint),
                "--checkpoint-interval", "0.05",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        banner = process.stdout.readline()
        assert "listening on" in banner, banner + process.stderr.read()
        port = int(banner.rsplit(":", 1)[1])
        return process, port

    def _loadgen(self, spec_path, port, env, *extra):
        import subprocess
        import sys

        return subprocess.run(
            [
                sys.executable, "-m", "repro.cli",
                "loadgen",
                "--spec", str(spec_path),
                "--connect", f"127.0.0.1:{port}",
                "--users", "20",
                "--seed", "11",
                *extra,
            ],
            capture_output=True,
            text=True,
            timeout=120,
            env=env,
        )

    def test_serve_drive_sigterm_drains(self, tmp_path):
        import signal

        from repro.specs import IngestSpec, ProtocolSpec

        spec = IngestSpec(
            protocol=ProtocolSpec(name="L-OSUE", k=8, eps_inf=2.0, eps_1=1.0),
            n_rounds=2,
            name="e2e",
            port=0,
            quorum=20,
            auth_key_env="REPRO_E2E_KEY",
        )
        spec_path = tmp_path / "e2e.json"
        spec_path.write_text(json.dumps(spec.to_dict()), encoding="utf-8")
        env = self._env()
        server, port = self._start_server(spec_path, tmp_path / "e2e.npz", env)
        try:
            # A client signing with the wrong key is rejected on every batch.
            wrong = self._loadgen(spec_path, port, env, "--wrong-key")
            assert wrong.returncode == 1, wrong.stdout + wrong.stderr
            assert "401" in wrong.stdout

            # The honest client (key from the spec's auth_key_env) gets
            # every report in; quorum seals both rounds.
            good = self._loadgen(spec_path, port, env)
            assert good.returncode == 0, good.stdout + good.stderr
            assert "40/40 reports accepted" in good.stdout
        finally:
            server.send_signal(signal.SIGTERM)
            out, err = server.communicate(timeout=60)
        assert server.returncode == 0, out + err
        assert "drained at round 2/2" in out
        assert "40 reports folded" in out
        assert (tmp_path / "e2e.npz").exists()
        assert (tmp_path / "e2e.npz.clock.json").exists()
