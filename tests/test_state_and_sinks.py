"""Tests for the dense memoization state and the aggregation sinks."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ParameterError
from repro.longitudinal import DBitFlipPM, LGRR, LSUE, OLOLOHA
from repro.simulation import simulate_protocol, simulate_protocol_sharded
from repro.simulation.sinks import (
    ShardSummary,
    ShardedSink,
    SupportCountSink,
    estimate_support_counts,
)
from repro.simulation.state import (
    DenseSymbolMemo,
    PackedBitMemo,
    SparsePackedBitMemo,
    make_packed_bit_memo,
)


class TestDenseSymbolMemo:
    def test_lazy_allocation_and_zero_distinct(self):
        memo = DenseSymbolMemo(5, 8)
        assert list(memo.distinct_per_user()) == [0, 0, 0, 0, 0]

    def test_fresh_called_only_for_missing(self):
        memo = DenseSymbolMemo(4, 6)
        calls = []

        def fresh(users, keys):
            calls.append((users.copy(), keys.copy()))
            return keys * 10

        keys = np.asarray([0, 1, 2, 3])
        first = memo.resolve(keys, fresh)
        assert np.array_equal(first, [0, 10, 20, 30])
        assert len(calls) == 1

        # Same keys again: everything memoized, fresh must not run.
        second = memo.resolve(keys, lambda u, k: pytest.fail("fresh re-invoked"))
        assert np.array_equal(second, first)

    def test_partial_miss_batches_only_missing_users(self):
        memo = DenseSymbolMemo(3, 4)
        memo.resolve(np.asarray([0, 0, 0]), lambda u, k: np.zeros(u.size, dtype=int))
        seen = {}

        def fresh(users, keys):
            seen["users"] = users.copy()
            return keys

        memo.resolve(np.asarray([0, 1, 1]), fresh)
        assert np.array_equal(seen["users"], [1, 2])
        assert list(memo.distinct_per_user()) == [1, 2, 2]


class TestPackedBitMemo:
    def test_lazy_allocation(self):
        memo = PackedBitMemo(10, 4, 12)
        assert memo.nbytes_allocated == 0
        assert memo.get_row(0, 0) is None
        assert list(memo.distinct_per_user()) == [0] * 10

    def test_rows_survive_pack_unpack_roundtrip(self):
        rng = np.random.default_rng(0)
        memo = PackedBitMemo(20, 3, 11)
        rows = {}

        def fresh(users, keys):
            fresh_rows = (rng.random((users.size, 11)) < 0.5).astype(np.uint8)
            for u, k, row in zip(users, keys, fresh_rows):
                rows[(int(u), int(k))] = row
            return fresh_rows

        keys = rng.integers(0, 3, size=20)
        resolved = memo.resolve(keys, fresh)
        for user in range(20):
            assert np.array_equal(resolved[user], rows[(user, int(keys[user]))])
            assert np.array_equal(memo.get_row(user, int(keys[user])), rows[(user, int(keys[user]))])

        # Second resolve with the same keys returns the stored rows unchanged.
        again = memo.resolve(keys, lambda u, k: pytest.fail("fresh re-invoked"))
        assert np.array_equal(again, resolved)

    def test_distinct_counts_per_user(self):
        memo = PackedBitMemo(2, 4, 5)
        make = lambda users, keys: np.ones((users.size, 5), dtype=np.uint8)
        memo.resolve(np.asarray([0, 1]), make)
        memo.resolve(np.asarray([0, 2]), make)
        memo.resolve(np.asarray([3, 2]), make)
        # user 0 memoized keys {0, 3}; user 1 memoized keys {1, 2}
        assert list(memo.distinct_per_user()) == [2, 2]


def _random_fresh(seed):
    """A deterministic fresh-row callback shared by layout-equivalence tests."""
    rng = np.random.default_rng(seed)

    def fresh(users, keys):
        return (rng.random((users.size, 13)) < 0.5).astype(np.uint8)

    return fresh


class TestSparsePackedBitMemo:
    def test_lazy_allocation(self):
        memo = SparsePackedBitMemo(10, 4, 12)
        assert memo.nbytes_allocated == 0
        assert memo.get_row(0, 0) is None
        assert list(memo.distinct_per_user()) == [0] * 10

    def test_pool_grows_geometrically_and_preserves_rows(self):
        n_users, n_keys = 6, 50
        memo = SparsePackedBitMemo(n_users, n_keys, 13)
        fresh = _random_fresh(7)
        rng = np.random.default_rng(8)
        resolved = {}
        for _ in range(40):
            keys = rng.integers(0, n_keys, size=n_users)
            rows = memo.resolve(keys, fresh)
            for user in range(n_users):
                pair = (user, int(keys[user]))
                if pair in resolved:
                    assert np.array_equal(rows[user], resolved[pair])
                else:
                    resolved[pair] = rows[user].copy()
        assert memo.n_rows_memoized == len(resolved)
        for (user, key), row in resolved.items():
            assert np.array_equal(memo.get_row(user, key), row)

    @pytest.mark.parametrize("layout", ["dense", "sparse"])
    def test_column_sums_equals_unpacked_ground_truth(self, layout):
        memo = make_packed_bit_memo(30, 5, 13, layout=layout)
        shadow = make_packed_bit_memo(30, 5, 13, layout=layout)
        keys = np.random.default_rng(3).integers(0, 5, size=30)
        sums = memo.column_sums(keys, _random_fresh(11))
        unpacked = shadow.resolve(keys, _random_fresh(11))
        assert np.array_equal(sums, unpacked.sum(axis=0, dtype=np.int64))

    def test_dense_and_sparse_are_bit_identical(self):
        """Same fresh sequence => identical rows, sums and accounting."""
        dense = PackedBitMemo(25, 6, 13)
        sparse = SparsePackedBitMemo(25, 6, 13)
        dense_fresh, sparse_fresh = _random_fresh(21), _random_fresh(21)
        rng = np.random.default_rng(22)
        for _ in range(12):
            keys = rng.integers(0, 6, size=25)
            assert np.array_equal(
                dense.resolve(keys, dense_fresh), sparse.resolve(keys, sparse_fresh)
            )
            assert np.array_equal(
                dense.column_sums(keys, _boom), sparse.column_sums(keys, _boom)
            )
        assert np.array_equal(dense.distinct_per_user(), sparse.distinct_per_user())
        for user in range(25):
            for key in range(6):
                dense_row, sparse_row = dense.get_row(user, key), sparse.get_row(user, key)
                if dense_row is None:
                    assert sparse_row is None
                else:
                    assert np.array_equal(dense_row, sparse_row)


    def test_pool_growth_across_geometric_boundary_preserves_rows(self):
        """Crossing the pool's doubling boundary must not corrupt or reorder
        the rows appended before the reallocation."""
        n_users, n_keys = 4, 32
        memo = SparsePackedBitMemo(n_users, n_keys, 13)
        fresh = _random_fresh(31)
        snapshots = {}
        # Pool capacity starts at n_users (4); nine distinct keys per user
        # forces 36 rows through the 4 -> 8 -> 16 -> 32 -> 64 reallocations.
        for key in range(9):
            keys = np.full(n_users, key)
            rows = memo.resolve(keys, fresh)
            for user in range(n_users):
                snapshots[(user, key)] = rows[user].copy()
        assert memo.n_rows_memoized == 36
        for (user, key), row in snapshots.items():
            assert np.array_equal(memo.get_row(user, key), row)

    def test_single_user_population(self):
        """n_users=1: the hashed index, pool and per-user accounting all
        work at the degenerate population size."""
        memo = SparsePackedBitMemo(1, 8, 13)
        fresh = _random_fresh(32)
        first = memo.resolve(np.array([3]), fresh).copy()
        again = memo.resolve(np.array([3]), _boom)
        assert np.array_equal(first, again)
        memo.resolve(np.array([5]), fresh)
        assert list(memo.distinct_per_user()) == [2]
        assert np.array_equal(memo.column_sums(np.array([3]), _boom), first.sum(axis=0))

    def test_full_population_churn_matches_dense(self):
        """Every user changes key every round (the delta-fold's worst case):
        sparse accounting and sums stay bit-identical to the dense table."""
        n_users, n_keys = 12, 10
        dense = PackedBitMemo(n_users, n_keys, 13)
        sparse = SparsePackedBitMemo(n_users, n_keys, 13)
        dense_fresh, sparse_fresh = _random_fresh(33), _random_fresh(33)
        for shift in range(n_keys):
            keys = (np.arange(n_users) + shift) % n_keys
            assert np.array_equal(
                dense.column_sums(keys, dense_fresh),
                sparse.column_sums(keys, sparse_fresh),
            )
        assert sparse.n_rows_memoized == n_users * n_keys
        assert np.array_equal(dense.distinct_per_user(), sparse.distinct_per_user())


def _boom(users, keys):  # pragma: no cover - must never run
    raise AssertionError("fresh invoked for already-memoized pairs")


class TestMakePackedBitMemo:
    def test_small_tables_stay_dense(self):
        assert isinstance(make_packed_bit_memo(100, 16, 16), PackedBitMemo)

    def test_huge_tables_switch_to_sparse_without_allocating(self):
        # Dense would project ~53 GiB here; auto must pick sparse (and stay
        # lazy, so this test allocates nothing).
        memo = make_packed_bit_memo(100_000, 2_048, 2_048)
        assert isinstance(memo, SparsePackedBitMemo)
        assert memo.nbytes_allocated == 0

    def test_explicit_override(self):
        assert isinstance(
            make_packed_bit_memo(100_000, 2_048, 2_048, layout="dense"), PackedBitMemo
        )
        assert isinstance(make_packed_bit_memo(4, 2, 2, layout="sparse"), SparsePackedBitMemo)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ParameterError, match="layout"):
            make_packed_bit_memo(4, 2, 2, layout="compressed")


class TestSupportCountSink:
    def test_duplicate_round_rejected(self):
        sink = SupportCountSink(3, 4, 10)
        sink.add_round(0, np.ones(4))
        with pytest.raises(AggregationError):
            sink.add_round(0, np.ones(4))

    def test_out_of_range_round_rejected(self):
        sink = SupportCountSink(3, 4, 10)
        with pytest.raises(AggregationError):
            sink.add_round(-1, np.ones(4))
        with pytest.raises(AggregationError):
            sink.add_round(3, np.ones(4))

    def test_incomplete_matrix_rejected(self):
        sink = SupportCountSink(2, 4, 10)
        sink.add_round(1, np.ones(4))
        with pytest.raises(AggregationError):
            _ = sink.support_counts

    def test_estimates_match_direct_debias(self):
        protocol = LGRR(4, 2.0, 1.0)
        sink = SupportCountSink(2, 4, 100)
        counts = np.asarray([[30.0, 25.0, 25.0, 20.0], [40.0, 20.0, 20.0, 20.0]])
        sink.add_round(0, counts[0])
        sink.add_round(1, counts[1])
        assert np.array_equal(
            sink.estimates(protocol), estimate_support_counts(protocol, counts, 100)
        )


class TestShardedSink:
    @staticmethod
    def _summary(rng, n_rounds=3, m=5, n_users=7):
        return ShardSummary(
            support_counts=rng.integers(0, 50, size=(n_rounds, m)).astype(float),
            distinct_memoized_per_user=rng.integers(0, 4, size=n_users),
            n_users=n_users,
        )

    def test_merge_is_associative_bit_for_bit(self):
        rng = np.random.default_rng(42)
        a, b, c = (self._summary(rng) for _ in range(3))
        left = ShardedSink().absorb(a).merge(ShardedSink().absorb(b)).merge(
            ShardedSink().absorb(c)
        )
        right = ShardedSink().absorb(a).merge(
            ShardedSink().absorb(b).merge(ShardedSink().absorb(c))
        )
        flat = ShardedSink().absorb(a).absorb(b).absorb(c)
        for sink in (left, right):
            assert np.array_equal(sink.support_counts, flat.support_counts)
            assert np.array_equal(
                sink.distinct_memoized_per_user, flat.distinct_memoized_per_user
            )
            assert sink.n_users == flat.n_users == 21

    def test_shape_mismatch_rejected(self):
        rng = np.random.default_rng(1)
        sink = ShardedSink().absorb(self._summary(rng))
        with pytest.raises(AggregationError):
            sink.absorb(self._summary(rng, n_rounds=4))

    def test_empty_sink_rejects_estimation(self):
        with pytest.raises(AggregationError):
            ShardedSink().estimates(LGRR(4, 2.0, 1.0))

    def test_summary_validates_user_count(self):
        with pytest.raises(AggregationError):
            ShardSummary(
                support_counts=np.zeros((2, 3)),
                distinct_memoized_per_user=np.zeros(4, dtype=np.int64),
                n_users=5,
            )


class TestShardedSimulation:
    @pytest.mark.parametrize(
        "protocol_factory",
        [
            lambda k: LGRR(k, 3.0, 1.5),
            lambda k: LSUE(k, 3.0, 1.5),
            lambda k: OLOLOHA(k, 3.0, 1.5),
            lambda k: DBitFlipPM(k, 3.0, d=4),
        ],
        ids=["L-GRR", "RAPPOR", "OLOLOHA", "dBitFlipPM"],
    )
    def test_sharded_matches_unsharded_statistically(self, protocol_factory, small_dataset):
        whole = simulate_protocol(protocol_factory(small_dataset.k), small_dataset, rng=0)
        sharded = simulate_protocol_sharded(
            protocol_factory(small_dataset.k), small_dataset, n_shards=4, rng=0
        )
        assert sharded.estimates.shape == whole.estimates.shape
        assert sharded.distinct_memoized_per_user.shape == (small_dataset.n_users,)
        assert sharded.mse_avg < 8 * whole.mse_avg + 0.05
        assert whole.mse_avg < 8 * sharded.mse_avg + 0.05
        assert sharded.eps_avg == pytest.approx(whole.eps_avg, rel=0.25)
        assert sharded.extra["n_shards"] == 4

    def test_too_many_shards_rejected(self, tiny_dataset):
        from repro.exceptions import ExperimentError

        with pytest.raises(ExperimentError):
            simulate_protocol_sharded(
                LGRR(tiny_dataset.k, 2.0, 1.0),
                tiny_dataset,
                n_shards=tiny_dataset.n_users + 1,
                rng=0,
            )
