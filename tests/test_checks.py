"""Tests for the AST-based invariant checker (``repro-ldp check``)."""

import json
import textwrap
from pathlib import Path

import pytest

from repro.checks import (
    CheckEngine,
    DEFAULT_BASELINE_NAME,
    all_rules,
    load_baseline,
    parse_suppressions,
    write_baseline,
)
from repro.checks.engine import (
    META_SUPPRESS_RULE_ID,
    PARSE_RULE_ID,
    module_path_for,
)
from repro.cli import main
from repro.exceptions import ReproError

REPO_ROOT = Path(__file__).resolve().parents[1]


def write_module(root: Path, relative: str, body: str) -> Path:
    """Write a module (creating package __init__.py files along the way)."""
    path = root / relative
    path.parent.mkdir(parents=True, exist_ok=True)
    ancestor = path.parent
    while ancestor != root:
        init = ancestor / "__init__.py"
        if not init.exists():
            init.write_text("", encoding="utf-8")
        ancestor = ancestor.parent
    path.write_text(textwrap.dedent(body), encoding="utf-8")
    return path


def findings_for(path: Path, rule_id: str = None):
    findings = CheckEngine().check_file(path)
    if rule_id is None:
        return findings
    return [f for f in findings if f.rule_id == rule_id]


CLEAN_MODULE = """\
    import numpy as np

    from repro.rng import derive_seed_sequences


    def streams(seed, n):
        return [np.random.default_rng(ss) for ss in derive_seed_sequences(seed, n)]
"""


class TestRuleTriggers:
    """Each rule fires on its trigger fixture and stays quiet on clean code."""

    def test_clean_module_has_no_findings(self, tmp_path):
        path = write_module(tmp_path, "clean.py", CLEAN_MODULE)
        assert findings_for(path) == []

    def test_rng_seed_unseeded_default_rng(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            import numpy as np

            gen = np.random.default_rng()
            """,
        )
        found = findings_for(path, "RNG-SEED")
        assert len(found) == 1
        assert found[0].line == 3

    def test_rng_seed_none_argument_still_flagged(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py", "from numpy.random import SeedSequence\nss = SeedSequence(None)\n"
        )
        assert len(findings_for(path, "RNG-SEED")) == 1

    def test_rng_seed_explicit_seed_passes(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "import numpy as np\ngen = np.random.default_rng(20230328)\n",
        )
        assert findings_for(path, "RNG-SEED") == []

    def test_rng_seed_allowlisted_in_rng_module(self, tmp_path):
        path = write_module(
            tmp_path, "repro/rng.py",
            "import numpy as np\ngen = np.random.default_rng()\n",
        )
        assert module_path_for(path) == "repro/rng.py"
        assert findings_for(path, "RNG-SEED") == []

    def test_rng_module_import_random(self, tmp_path):
        path = write_module(tmp_path, "mod.py", "import random\n")
        assert len(findings_for(path, "RNG-MODULE")) == 1

    def test_rng_module_from_random_import(self, tmp_path):
        path = write_module(tmp_path, "mod.py", "from random import shuffle\n")
        assert len(findings_for(path, "RNG-MODULE")) == 1

    def test_wallclock_in_simulation_package(self, tmp_path):
        path = write_module(
            tmp_path, "simulation/mod.py",
            "import time\n\nstart = time.monotonic()\n",
        )
        found = findings_for(path, "TIME-WALLCLOCK")
        assert len(found) == 1
        assert found[0].line == 3

    def test_wallclock_from_import_in_simulation_package(self, tmp_path):
        path = write_module(
            tmp_path, "simulation/mod.py", "from time import time\n"
        )
        assert len(findings_for(path, "TIME-WALLCLOCK")) == 1

    def test_wallclock_fine_outside_scoped_packages(self, tmp_path):
        path = write_module(
            tmp_path, "service/mod.py", "import time\n\nnow = time.time()\n"
        )
        assert findings_for(path, "TIME-WALLCLOCK") == []

    def test_wallclock_perf_counter_is_allowed(self, tmp_path):
        path = write_module(
            tmp_path, "simulation/mod.py",
            "import time\n\nstart = time.perf_counter()\n",
        )
        assert findings_for(path, "TIME-WALLCLOCK") == []

    def test_io_atomic_bare_open_write(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            def save(path, text):
                with open(path, "w") as handle:
                    handle.write(text)
            """,
        )
        assert len(findings_for(path, "IO-ATOMIC")) == 1

    def test_io_atomic_path_write_text(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "def save(path, text):\n    path.write_text(text)\n",
        )
        assert len(findings_for(path, "IO-ATOMIC")) == 1

    def test_io_atomic_read_mode_passes(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            'def load(path):\n    with open(path, "r") as handle:\n        return handle.read()\n',
        )
        assert findings_for(path, "IO-ATOMIC") == []

    def test_io_atomic_allowlisted_in_atomicio(self, tmp_path):
        path = write_module(
            tmp_path, "repro/_atomicio.py",
            'def write(path, text):\n    with open(path, "w") as handle:\n        handle.write(text)\n',
        )
        assert findings_for(path, "IO-ATOMIC") == []

    def test_pickle_import(self, tmp_path):
        path = write_module(tmp_path, "mod.py", "import pickle\n")
        assert len(findings_for(path, "PICKLE-IMPORT")) == 1

    def test_pickle_from_import(self, tmp_path):
        path = write_module(tmp_path, "mod.py", "from dill import dumps\n")
        assert len(findings_for(path, "PICKLE-IMPORT")) == 1

    def test_bare_except(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "try:\n    x = 1\nexcept:\n    pass\n",
        )
        assert len(findings_for(path, "EXC-BARE")) == 1

    def test_broad_except_without_comment(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "try:\n    x = 1\nexcept Exception:\n    pass\n",
        )
        assert len(findings_for(path, "EXC-BROAD")) == 1

    def test_broad_except_with_trailing_comment_passes(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "try:\n    x = 1\nexcept Exception:  # keep the server up\n    pass\n",
        )
        assert findings_for(path, "EXC-BROAD") == []

    def test_broad_except_with_comment_above_passes(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "try:\n    x = 1\n# any failure means unavailable\nexcept Exception:\n    pass\n",
        )
        assert findings_for(path, "EXC-BROAD") == []

    def test_narrow_except_needs_no_comment(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "try:\n    x = 1\nexcept ValueError:\n    pass\n",
        )
        assert findings_for(path, "EXC-BROAD") == []

    def test_lock_global_unguarded_rebinding(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            import threading

            _LOCK = threading.Lock()
            _STATE = None


            def swap(value):
                global _STATE
                _STATE = value
            """,
        )
        found = findings_for(path, "LOCK-GLOBAL")
        assert len(found) == 1
        assert found[0].line == 9

    def test_lock_global_guarded_rebinding_passes(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            import threading

            _LOCK = threading.Lock()
            _STATE = None


            def swap(value):
                global _STATE
                with _LOCK:
                    previous, _STATE = _STATE, value
                return previous
            """,
        )
        assert findings_for(path, "LOCK-GLOBAL") == []

    def test_lock_global_out_of_scope_without_module_lock(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            _WORKER_DATASET = None


            def init(dataset):
                global _WORKER_DATASET
                _WORKER_DATASET = dataset
            """,
        )
        assert findings_for(path, "LOCK-GLOBAL") == []

    def test_spec_frozen_missing(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            from dataclasses import dataclass


            @dataclass
            class FooSpec:
                name: str
            """,
        )
        assert len(findings_for(path, "SPEC-FROZEN")) == 1

    def test_spec_frozen_true_passes(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            from dataclasses import dataclass


            @dataclass(frozen=True)
            class FooSpec:
                name: str
            """,
        )
        assert findings_for(path, "SPEC-FROZEN") == []

    def test_non_spec_dataclass_unconstrained(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            from dataclasses import dataclass


            @dataclass
            class Accumulator:
                total: int = 0
            """,
        )
        assert findings_for(path, "SPEC-FROZEN") == []

    def test_metric_name_bad_prefix(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            'counter = registry.counter("requests_total", "Requests.")\n',
        )
        assert len(findings_for(path, "METRIC-NAME")) == 1

    def test_metric_name_counter_without_total(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            'counter = registry.counter("repro_requests", "Requests.")\n',
        )
        assert len(findings_for(path, "METRIC-NAME")) == 1

    def test_metric_name_histogram_without_unit(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            'hist = registry.histogram("repro_latency", "Latency.")\n',
        )
        assert len(findings_for(path, "METRIC-NAME")) == 1

    def test_metric_name_conforming_instruments_pass(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            """\
            c = registry.counter("repro_requests_total", "Requests.")
            g = registry.gauge("repro_open_round", "Open round index.")
            h = registry.histogram("repro_latency_seconds", "Latency.")
            """,
        )
        assert findings_for(path, "METRIC-NAME") == []

    def test_parse_error_reported_as_finding(self, tmp_path):
        path = write_module(tmp_path, "mod.py", "def broken(:\n")
        found = findings_for(path, PARSE_RULE_ID)
        assert len(found) == 1
        assert found[0].severity == "error"


class TestSuppressions:
    def test_trailing_suppression_silences_own_line(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "import random  # repro: allow[RNG-MODULE] test fixture needs it\n",
        )
        assert findings_for(path) == []

    def test_comment_line_suppression_targets_next_line(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "# repro: allow[RNG-MODULE] test fixture needs it\nimport random\n",
        )
        assert findings_for(path) == []

    def test_suppression_is_rule_specific(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "import random  # repro: allow[IO-ATOMIC] wrong rule id\n",
        )
        assert len(findings_for(path, "RNG-MODULE")) == 1

    def test_reasonless_suppression_is_itself_a_finding(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py",
            "import random  # repro: allow[RNG-MODULE]\n",
        )
        findings = findings_for(path)
        assert [f.rule_id for f in findings] == [META_SUPPRESS_RULE_ID]

    def test_parse_suppressions_grammar(self):
        lines = [
            'x = open(p, "w")  # repro: allow[IO-ATOMIC] staging write',
            "# repro: allow[EXC-BROAD] probe boundary",
            "except Exception:",
        ]
        parsed = parse_suppressions(lines)
        assert [(s.rule_id, s.target_line) for s in parsed] == [
            ("IO-ATOMIC", 1),
            ("EXC-BROAD", 3),
        ]
        assert parsed[0].reason == "staging write"

    def test_suppressed_findings_are_counted(self, tmp_path):
        write_module(
            tmp_path, "mod.py",
            "import random  # repro: allow[RNG-MODULE] fixture\n",
        )
        result = CheckEngine().check_paths([tmp_path])
        assert result.findings == []
        assert result.suppressed == 1


class TestBaseline:
    def test_round_trip(self, tmp_path):
        module = write_module(tmp_path, "mod.py", "import pickle\n")
        findings = findings_for(module)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, findings)
        accepted = load_baseline(baseline_path)
        assert accepted == {f.fingerprint for f in findings}
        result = CheckEngine().check_paths([module], baseline=accepted)
        assert result.findings == []
        assert len(result.baselined) == 1

    def test_fingerprint_survives_line_moves(self, tmp_path):
        first = write_module(tmp_path / "a", "mod.py", "import pickle\n")
        second = write_module(
            tmp_path / "b", "mod.py", "# a new leading comment\n\nimport pickle\n"
        )
        assert (
            findings_for(first)[0].fingerprint
            == findings_for(second)[0].fingerprint
        )

    def test_identical_lines_get_distinct_fingerprints(self, tmp_path):
        path = write_module(
            tmp_path, "mod.py", "import pickle\nimport pickle\n"
        )
        prints = [f.fingerprint for f in findings_for(path, "PICKLE-IMPORT")]
        assert len(prints) == 2
        assert prints[0] != prints[1]

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_baseline(tmp_path / "missing.json")

    def test_wrong_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"version": 99, "findings": []}', encoding="utf-8")
        with pytest.raises(ReproError):
            load_baseline(path)

    def test_malformed_entry_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            '{"version": 1, "findings": [{"rule": "X"}]}', encoding="utf-8"
        )
        with pytest.raises(ReproError):
            load_baseline(path)


class TestCheckCli:
    def test_exit_one_on_finding(self, tmp_path, capsys):
        write_module(tmp_path, "mod.py", "import pickle\n")
        assert main(["check", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "PICKLE-IMPORT" in out

    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        write_module(tmp_path, "clean.py", CLEAN_MODULE)
        assert main(["check", str(tmp_path)]) == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_json_report_schema(self, tmp_path, capsys):
        write_module(tmp_path, "mod.py", "import pickle\n")
        assert main(["check", "--json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["blocking"] == 1
        assert payload["files_checked"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "PICKLE-IMPORT"
        assert finding["line"] == 1
        assert finding["fingerprint"]
        assert set(payload["rules"]) == {r.rule_id for r in all_rules()}

    def test_output_artifact_written(self, tmp_path, capsys):
        write_module(tmp_path, "mod.py", "import pickle\n")
        artifact = tmp_path / "report.json"
        assert main(["check", "--output", str(artifact), str(tmp_path)]) == 1
        capsys.readouterr()
        payload = json.loads(artifact.read_text(encoding="utf-8"))
        assert payload["blocking"] == 1

    def test_write_baseline_then_clean(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        write_module(tmp_path, "mod.py", "import pickle\n")
        assert main(["check", "--write-baseline", "mod.py"]) == 0
        assert (tmp_path / DEFAULT_BASELINE_NAME).exists()
        capsys.readouterr()
        # The default baseline in the working directory is auto-discovered.
        assert main(["check", "mod.py"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_baseline_does_not_mask_new_findings(self, tmp_path, capsys):
        module = write_module(tmp_path, "mod.py", "import pickle\n")
        baseline = tmp_path / "baseline.json"
        assert main([
            "check", "--write-baseline", "--baseline", str(baseline), str(module)
        ]) == 0
        module.write_text("import pickle\nimport dill\n", encoding="utf-8")
        capsys.readouterr()
        assert main(["check", "--baseline", str(baseline), str(module)]) == 1
        out = capsys.readouterr().out
        assert "dill" in out

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in all_rules():
            assert rule.rule_id in out

    def test_missing_path_is_usage_error(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nowhere")]) == 2

    def test_self_check_repo_source_tree_is_clean(self, capsys):
        """The repo's own src tree passes its own gate (empty baseline)."""
        src = REPO_ROOT / "src" / "repro"
        baseline = REPO_ROOT / DEFAULT_BASELINE_NAME
        assert src.is_dir() and baseline.is_file()
        code = main(["check", "--baseline", str(baseline), str(src)])
        output = capsys.readouterr().out
        assert code == 0, f"repo fails its own invariant gate:\n{output}"
