"""Tests for the report store and the results store."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, ExperimentError
from repro.store import ReportStore, ResultsStore, safe_experiment_stem


class TestReportStore:
    def test_add_and_query(self):
        store = ReportStore(expected_users=3)
        store.add(0, 0, "r0")
        store.add(0, 1, "r1")
        assert store.n_reports(0) == 2
        assert not store.is_round_complete(0)
        store.add(0, 2, "r2")
        assert store.is_round_complete(0)
        assert store.batch(0).reports == ["r0", "r1", "r2"]

    def test_duplicate_submission_rejected(self):
        store = ReportStore()
        store.add(0, 7, "a")
        with pytest.raises(AggregationError):
            store.add(0, 7, "b")

    def test_same_user_can_report_in_different_rounds(self):
        store = ReportStore()
        store.add(0, 7, "a")
        store.add(1, 7, "b")
        assert store.rounds() == [0, 1]

    def test_negative_round_rejected(self):
        with pytest.raises(AggregationError):
            ReportStore().add(-1, 0, "x")

    def test_missing_round_raises(self):
        with pytest.raises(AggregationError):
            ReportStore().batch(3)

    def test_add_round_bulk(self):
        store = ReportStore(expected_users=4)
        store.add_round(2, ["a", "b", "c", "d"])
        assert store.is_round_complete(2)
        assert len(store) == 1

    def test_is_round_complete_requires_expectation(self):
        store = ReportStore()
        store.add(0, 0, "a")
        with pytest.raises(AggregationError):
            store.is_round_complete(0)

    def test_iter_complete_rounds(self):
        store = ReportStore(expected_users=2)
        store.add_round(0, ["a", "b"])
        store.add(1, 0, "c")
        complete = list(store.iter_complete_rounds())
        assert [batch.round_index for batch in complete] == [0]

    def test_negative_user_id_rejected(self):
        with pytest.raises(AggregationError, match="user_id must be non-negative"):
            ReportStore().add(0, -1, "x")

    def test_add_round_negative_round_rejected_before_any_mutation(self):
        store = ReportStore()
        with pytest.raises(AggregationError):
            store.add_round(-1, ["a"])
        assert len(store) == 0

    def test_add_round_is_all_or_nothing_on_duplicate_users(self):
        """A rejected round must leave the store exactly as it was: the old
        per-report loop registered users 0..k-1 before raising on the first
        duplicate, so retrying the round failed on users it never accepted."""
        store = ReportStore(expected_users=3)
        store.add(5, 1, "early")  # user 1 already reported for round 5
        with pytest.raises(AggregationError, match="all-or-nothing"):
            store.add_round(5, ["a", "b", "c"])
        # Users 0 and 2 were NOT registered by the failed bulk call...
        assert store.n_reports(5) == 1
        store.add(5, 0, "a")
        store.add(5, 2, "c")
        assert store.is_round_complete(5)


class TestResultsStore:
    def test_json_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        payload = {"mse": 0.1, "curve": np.asarray([1.0, 2.0]), "n": np.int64(5)}
        store.save_json("figure3", payload)
        loaded = store.load_json("figure3")
        assert loaded["mse"] == 0.1
        assert loaded["curve"] == [1.0, 2.0]
        assert loaded["n"] == 5

    def test_overwrite_protection(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save_json("exp", {"a": 1})
        with pytest.raises(ExperimentError):
            store.save_json("exp", {"a": 2})
        store.save_json("exp", {"a": 2}, overwrite=True)
        assert store.load_json("exp")["a"] == 2

    def test_save_json_failed_encode_leaves_existing_document_intact(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save_json("exp", {"a": 1})
        with pytest.raises(TypeError):
            store.save_json("exp", {"bad": object()}, overwrite=True)
        assert store.load_json("exp") == {"a": 1}
        leftovers = [p for p in tmp_path.iterdir() if p.name != "exp.json"]
        assert leftovers == []

    def test_csv_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        rows = [{"protocol": "OLOLOHA", "mse": 0.01}, {"protocol": "RAPPOR", "mse": 0.02}]
        store.save_rows("table", rows)
        loaded = store.load_rows("table")
        assert loaded[0]["protocol"] == "OLOLOHA"
        assert float(loaded[1]["mse"]) == 0.02

    def test_csv_requires_consistent_columns(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.save_rows("bad", [{"a": 1}, {"b": 2}])

    def test_empty_rows_rejected(self, tmp_path):
        with pytest.raises(ExperimentError):
            ResultsStore(tmp_path).save_rows("empty", [])

    def test_missing_files_raise(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ExperimentError):
            store.load_json("nothing")
        with pytest.raises(ExperimentError):
            store.load_rows("nothing")

    def test_list_experiments(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.list_experiments() == []
        store.save_json("b_exp", {})
        store.save_json("a_exp", {})
        assert store.list_experiments() == ["a_exp", "b_exp"]


class TestHeaderCommentAndAtomicity:
    def test_append_rows_writes_header_comment_once(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows("fp", [{"a": 1}], header_comment="spec_fingerprint=abc123")
        store.append_rows("fp", [{"a": 2}], header_comment="spec_fingerprint=zzz999")
        text = (tmp_path / "fp.csv").read_text()
        lines = text.strip().splitlines()
        # The comment of the file's creation wins; later comments are ignored.
        assert lines[0] == "# spec_fingerprint=abc123"
        assert lines[1] == "a"
        assert store.read_header_comment("fp") == "spec_fingerprint=abc123"

    def test_load_rows_skips_comment_lines(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows("fp2", [{"a": 1}, {"a": 2}], header_comment="k=v")
        rows = store.load_rows("fp2")
        assert [row["a"] for row in rows] == ["1", "2"]

    def test_read_header_comment_absent(self, tmp_path):
        store = ResultsStore(tmp_path)
        assert store.read_header_comment("nothing") is None
        store.append_rows("plain", [{"a": 1}])
        assert store.read_header_comment("plain") is None

    def test_multiline_header_comment_rejected(self, tmp_path):
        store = ResultsStore(tmp_path)
        with pytest.raises(ExperimentError, match="single line"):
            store.append_rows("bad", [{"a": 1}], header_comment="two\nlines")

    def test_append_flush_is_atomic_no_temp_left_behind(self, tmp_path):
        """Flushes go through temp+rename: no partial CSV state is visible."""
        store = ResultsStore(tmp_path)
        store.append_rows("atomic", [{"a": 1}])
        store.append_rows("atomic", [{"a": 2}])
        # Only the finished CSV remains — no stranded staging files.
        leftovers = [p.name for p in tmp_path.iterdir() if p.name != "atomic.csv"]
        assert leftovers == []
        assert len(store.load_rows("atomic")) == 2

    def test_append_to_commented_csv_preserves_comment(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows("keep", [{"a": 1}], header_comment="fp=1")
        store.append_rows("keep", [{"a": 2}])
        lines = (tmp_path / "keep.csv").read_text().strip().splitlines()
        assert lines == ["# fp=1", "a", "1", "2"]

    def test_append_to_commented_csv_checks_columns(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows("cols", [{"a": 1}], header_comment="fp=1")
        with pytest.raises(ExperimentError, match="existing columns"):
            store.append_rows("cols", [{"b": 1}])


class TestHashPrefixedDataRows:
    """Only lines *above* the header are comments; '#'-leading cells are data."""

    def test_hash_prefixed_cell_survives_append_load_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path)
        rows = [{"label": "#special"}, {"label": "ok"}]
        store.append_rows("hashes", rows)
        loaded = store.load_rows("hashes")
        assert [row["label"] for row in loaded] == ["#special", "ok"]

    def test_hash_prefixed_cell_survives_with_fingerprint_comment(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.append_rows(
            "hashes_fp",
            [{"label": "#special", "x": 1}],
            header_comment="sweep_spec_fingerprint=abc",
        )
        store.append_rows("hashes_fp", [{"label": "#another", "x": 2}])
        assert store.read_header_comment("hashes_fp") == "sweep_spec_fingerprint=abc"
        loaded = store.load_rows("hashes_fp")
        assert [row["label"] for row in loaded] == ["#special", "#another"]

    def test_hash_prefixed_cell_survives_save_rows(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save_rows("saved", [{"label": "#1"}, {"label": "plain"}])
        assert [row["label"] for row in store.load_rows("saved")] == ["#1", "plain"]


class TestAppendModeAndTornTails:
    def test_append_does_not_rewrite_the_file(self, tmp_path):
        """Flushes are O(batch): the inode survives, earlier bytes are a
        stable prefix (the old implementation rewrote the whole CSV)."""
        store = ResultsStore(tmp_path)
        path = store.append_rows("incr", [{"a": 1}])
        inode = path.stat().st_ino
        before = path.read_bytes()
        store.append_rows("incr", [{"a": 2}])
        after = path.read_bytes()
        assert path.stat().st_ino == inode
        assert after.startswith(before)
        assert len(store.load_rows("incr")) == 2

    def test_load_rows_drops_single_torn_trailing_line(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.append_rows("torn", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        with path.open("ab") as handle:
            handle.write(b"5,")  # a flush killed mid-write
        rows = store.load_rows("torn")
        assert [(row["a"], row["b"]) for row in rows] == [("1", "2"), ("3", "4")]

    def test_append_after_torn_tail_repairs_before_appending(self, tmp_path):
        store = ResultsStore(tmp_path)
        path = store.append_rows("repair", [{"a": 1, "b": 2}])
        with path.open("ab") as handle:
            handle.write(b"99,")  # torn row from a crashed writer
        store.append_rows("repair", [{"a": 5, "b": 6}])
        rows = store.load_rows("repair")
        assert [(row["a"], row["b"]) for row in rows] == [("1", "2"), ("5", "6")]

    def test_multiline_cell_values_rejected(self, tmp_path):
        """A quoted multi-line cell could tear between physical lines with
        the last byte a newline — invisible to the torn-tail guard — so
        append_rows refuses embedded newlines outright."""
        store = ResultsStore(tmp_path)
        with pytest.raises(ExperimentError, match="newlines"):
            store.append_rows("nl", [{"a": "two\nlines"}])

    def test_torn_header_line_recovers(self, tmp_path):
        """A writer killed during the very first flush leaves a torn header;
        the next append rewrites a complete one."""
        store = ResultsStore(tmp_path)
        path = tmp_path / "fresh.csv"
        path.write_bytes(b"a,")  # torn header, no newline
        store.append_rows("fresh", [{"a": 1, "b": 2}])
        rows = store.load_rows("fresh")
        assert [(row["a"], row["b"]) for row in rows] == [("1", "2")]


class TestSafeExperimentStem:
    """Regression tests for the id-sanitization collision (`"a/b"`, `"a b"`
    and `"A_B"` all mapped to `a_b.*`, silently interleaving their rows)."""

    def test_safe_ids_keep_their_historical_filenames(self):
        for experiment_id in ("table1", "sweep_syn", "demo.run-2"):
            assert safe_experiment_stem(experiment_id) == experiment_id

    def test_ambiguous_ids_get_distinct_stems(self):
        stems = {safe_experiment_stem(i) for i in ("a/b", "a b", "A_B", "a_b")}
        assert len(stems) == 4

    def test_mapping_is_deterministic(self):
        assert safe_experiment_stem("a/b") == safe_experiment_stem("a/b")

    def test_invalid_ids_rejected(self):
        with pytest.raises(ExperimentError):
            safe_experiment_stem("")
        with pytest.raises(ExperimentError):
            safe_experiment_stem(None)

    def test_cross_id_append_does_not_interleave(self, tmp_path):
        """Two ids that used to collide write and read back independently."""
        store = ResultsStore(tmp_path)
        store.append_rows("a/b", [{"x": "slash"}])
        store.append_rows("a b", [{"x": "space"}])
        store.append_rows("A_B", [{"x": "upper"}])
        store.append_rows("a_b", [{"x": "safe"}])
        assert [r["x"] for r in store.load_rows("a/b")] == ["slash"]
        assert [r["x"] for r in store.load_rows("a b")] == ["space"]
        assert [r["x"] for r in store.load_rows("A_B")] == ["upper"]
        assert [r["x"] for r in store.load_rows("a_b")] == ["safe"]
        assert len(list(tmp_path.glob("*.csv"))) == 4

    def test_json_and_csv_of_one_id_share_a_stem(self, tmp_path):
        store = ResultsStore(tmp_path)
        store.save_json("Mixed Case", {"v": 1})
        store.append_rows("Mixed Case", [{"v": 1}])
        stems = {path.stem for path in tmp_path.iterdir()}
        assert len(stems) == 1


class TestReaderAlignment:
    """`read_header_comment` must agree with `load_rows` on what counts as
    the comment block: a blank line above the fingerprint comment used to
    make the rows load fine while the comment 'disappeared', silently
    downgrading the sweep --resume fingerprint check."""

    def test_comment_found_after_leading_blank_lines(self, tmp_path):
        store = ResultsStore(tmp_path)
        (tmp_path / "padded.csv").write_text(
            "\n\n# sweep_spec_fingerprint=abc\na\n1\n"
        )
        assert store.read_header_comment("padded") == "sweep_spec_fingerprint=abc"
        assert [row["a"] for row in store.load_rows("padded")] == ["1"]

    def test_blank_lines_then_header_means_no_comment(self, tmp_path):
        store = ResultsStore(tmp_path)
        (tmp_path / "blank.csv").write_text("\na\n1\n")
        assert store.read_header_comment("blank") is None
        assert [row["a"] for row in store.load_rows("blank")] == ["1"]

    def test_data_row_hash_is_not_a_comment(self, tmp_path):
        store = ResultsStore(tmp_path)
        (tmp_path / "data.csv").write_text("a\n#cell\n")
        assert store.read_header_comment("data") is None


class TestJsonifyNumpyBool:
    def test_np_bool_round_trips_through_save_json(self, tmp_path):
        """np.bool_ is not an np.integer subclass; save_json used to raise
        TypeError on any payload holding a numpy comparison result."""
        store = ResultsStore(tmp_path)
        store.save_json(
            "flags",
            {
                "converged": np.bool_(True),
                "clipped": np.bool_(False),
                "mask": np.asarray([1.0, -1.0]) > 0,
            },
        )
        loaded = store.load_json("flags")
        assert loaded["converged"] is True
        assert loaded["clipped"] is False
        assert loaded["mask"] == [True, False]
