"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import make_syn, make_uniform_changing
from repro.longitudinal import (
    BiLOLOHA,
    DBitFlipPM,
    LGRR,
    LOSUE,
    LOUE,
    LSOUE,
    LSUE,
    OLOLOHA,
)
from repro.specs import CollectionSpec, ProtocolSpec, SweepSpec


@pytest.fixture
def rng():
    """A deterministic generator for tests that need explicit randomness."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_dataset():
    """A small Syn-like dataset: 400 users, 6 rounds, domain 24."""
    return make_uniform_changing(
        k=24, n_users=400, n_rounds=6, change_probability=0.3, name="small", rng=7
    )


@pytest.fixture
def tiny_dataset():
    """A tiny dataset for client-level (slow-path) simulations."""
    return make_uniform_changing(
        k=12, n_users=120, n_rounds=4, change_probability=0.4, name="tiny", rng=11
    )


@pytest.fixture
def syn_dataset():
    """A scaled-down version of the paper's Syn dataset."""
    return make_syn(n_users=800, n_rounds=10, k=60, rng=3)


@pytest.fixture
def oneshot_dataset():
    """A single-round workload: the one-shot collection degenerate case."""
    return make_uniform_changing(
        k=16, n_users=200, n_rounds=1, change_probability=0.5, name="oneshot", rng=3
    )


@pytest.fixture
def queue_dir(tmp_path):
    """A per-test spool directory for file-queue transports."""
    return tmp_path / "queue"


@pytest.fixture
def write_collection_spec(tmp_path):
    """Factory: build a small CollectionSpec and save it as JSON.

    Returns ``(spec, path)``; keyword overrides replace the defaults (a
    3-shard L-OSUE collection over the scaled-down ``syn`` dataset).
    """

    def _write(**overrides):
        fields = dict(
            protocol=ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5),
            dataset="syn",
            dataset_scale=0.02,
            n_shards=3,
            seed=20230328,
            name="test-collection",
        )
        fields.update(overrides)
        spec = CollectionSpec(**fields)
        return spec, spec.save(tmp_path / f"{spec.name}.json")

    return _write


@pytest.fixture
def write_sweep_grid(tmp_path):
    """Factory: build a small two-protocol SweepSpec and save it as JSON.

    Returns the saved path; keyword overrides replace the defaults.
    """

    def _write(**overrides):
        fields = dict(
            name="cli",
            protocols=(
                ProtocolSpec(name="L-OSUE"),
                ProtocolSpec(name="dBitFlipPM", label="1BitFlipPM", params={"d": 1}),
            ),
            eps_inf_values=(0.5, 2.0),
            alpha_values=(0.5,),
            datasets=("syn",),
            n_runs=1,
            dataset_scale=0.02,
            seed=11,
        )
        fields.update(overrides)
        spec = SweepSpec(**fields)
        return spec.save(tmp_path / "grid.json")

    return _write


def _protocol_factories(k: int):
    """All longitudinal protocols configured for a domain of size ``k``."""
    eps_inf, eps_1 = 2.0, 1.0
    return {
        "L-GRR": LGRR(k, eps_inf, eps_1),
        "RAPPOR": LSUE(k, eps_inf, eps_1),
        "L-OSUE": LOSUE(k, eps_inf, eps_1),
        "L-OUE": LOUE(k, eps_inf, eps_1),
        "L-SOUE": LSOUE(k, eps_inf, eps_1),
        "BiLOLOHA": BiLOLOHA(k, eps_inf, eps_1),
        "OLOLOHA": OLOLOHA(k, eps_inf, eps_1),
        "1BitFlipPM": DBitFlipPM(k, eps_inf, d=1),
        "bBitFlipPM": DBitFlipPM(k, eps_inf, d=k),
    }


@pytest.fixture
def all_protocols_k24():
    """Every longitudinal protocol over a domain of 24 values."""
    return _protocol_factories(24)


@pytest.fixture(params=["L-GRR", "RAPPOR", "L-OSUE", "BiLOLOHA", "OLOLOHA"])
def double_round_protocol(request):
    """Parametrized fixture over the double-randomization protocols (k=24)."""
    return _protocol_factories(24)[request.param]
