"""Tests for the dataset container and the four workload generators."""

import numpy as np
import pytest

from repro.datasets import (
    LongitudinalDataset,
    dataset_summaries,
    make_adult,
    make_census_counters,
    make_dataset,
    make_db_de,
    make_db_mt,
    make_syn,
    make_uniform_changing,
)
from repro.datasets.adult import ADULT_DOMAIN_SIZE, adult_hours_marginal
from repro.exceptions import DatasetError


class TestContainer:
    def test_shape_properties(self):
        values = np.zeros((5, 3), dtype=np.int64)
        dataset = LongitudinalDataset(name="x", values=values, k=2)
        assert dataset.n_users == 5
        assert dataset.n_rounds == 3

    def test_rejects_non_integer_values(self):
        with pytest.raises(DatasetError):
            LongitudinalDataset(name="x", values=np.zeros((2, 2)), k=2)

    def test_rejects_out_of_domain_values(self):
        with pytest.raises(DatasetError):
            LongitudinalDataset(name="x", values=np.full((2, 2), 5, dtype=np.int64), k=3)

    def test_rejects_wrong_dimensionality(self):
        with pytest.raises(DatasetError):
            LongitudinalDataset(name="x", values=np.zeros(4, dtype=np.int64), k=2)

    def test_true_frequencies_normalized(self):
        dataset = make_uniform_changing(k=6, n_users=50, n_rounds=4, change_probability=0.5, rng=0)
        for t in range(4):
            frequencies = dataset.true_frequencies(t)
            assert frequencies.shape == (6,)
            assert frequencies.sum() == pytest.approx(1.0)

    def test_true_frequency_matrix_shape(self):
        dataset = make_uniform_changing(k=6, n_users=50, n_rounds=4, change_probability=0.5, rng=0)
        assert dataset.true_frequency_matrix().shape == (4, 6)

    def test_round_values_bounds_check(self):
        dataset = make_uniform_changing(k=6, n_users=10, n_rounds=2, change_probability=0.5, rng=0)
        with pytest.raises(DatasetError):
            dataset.round_values(2)

    def test_change_counts_zero_when_static(self):
        values = np.tile(np.arange(4, dtype=np.int64).reshape(-1, 1), (1, 5))
        dataset = LongitudinalDataset(name="static", values=values, k=4)
        assert dataset.change_counts().sum() == 0
        assert np.all(dataset.distinct_values_per_user() == 1)

    def test_subsample_shapes(self):
        dataset = make_syn(n_users=100, n_rounds=10, k=20, rng=0)
        small = dataset.subsample(n_users=30, n_rounds=4)
        assert small.n_users == 30
        assert small.n_rounds == 4
        assert small.k == dataset.k

    def test_subsample_random_user_selection(self):
        dataset = make_syn(n_users=100, n_rounds=5, k=20, rng=0)
        small = dataset.subsample(n_users=10, rng=np.random.default_rng(1))
        assert small.n_users == 10


class TestSynGenerator:
    def test_paper_default_shape_parameters(self):
        dataset = make_syn(n_users=200, n_rounds=10, rng=0)
        assert dataset.k == 360
        assert dataset.metadata["paper_defaults"]["p_ch"] == 0.25

    def test_change_probability_controls_changes(self):
        static = make_uniform_changing(k=10, n_users=300, n_rounds=20, change_probability=0.0, rng=1)
        dynamic = make_uniform_changing(k=10, n_users=300, n_rounds=20, change_probability=0.9, rng=1)
        assert static.change_counts().sum() == 0
        assert dynamic.change_counts().mean() > 10

    def test_observed_change_rate_matches_probability(self):
        p_change = 0.25
        dataset = make_uniform_changing(
            k=50, n_users=2000, n_rounds=20, change_probability=p_change, rng=2
        )
        observed = dataset.change_counts().mean() / (dataset.n_rounds - 1)
        # A change draw can keep the same value with probability 1/k.
        expected = p_change * (1 - 1 / dataset.k)
        assert observed == pytest.approx(expected, rel=0.1)

    def test_deterministic_with_seed(self):
        a = make_syn(n_users=50, n_rounds=5, rng=3)
        b = make_syn(n_users=50, n_rounds=5, rng=3)
        assert np.array_equal(a.values, b.values)


class TestAdultGenerator:
    def test_marginal_is_distribution_with_mode_at_40_hours(self):
        marginal = adult_hours_marginal()
        assert marginal.sum() == pytest.approx(1.0)
        assert marginal.argmax() == 39  # index 39 = 40 hours

    def test_population_histogram_constant_over_rounds(self):
        dataset = make_adult(n_users=500, n_rounds=6, rng=0)
        first = dataset.true_frequencies(0)
        for t in range(1, 6):
            assert np.allclose(dataset.true_frequencies(t), first)

    def test_individual_sequences_change(self):
        dataset = make_adult(n_users=500, n_rounds=6, rng=0)
        assert dataset.change_counts().mean() > 1.0

    def test_domain_size(self):
        dataset = make_adult(n_users=100, n_rounds=2, rng=0)
        assert dataset.k == ADULT_DOMAIN_SIZE


class TestCensusGenerators:
    def test_domain_is_dense_relabelling(self):
        dataset = make_census_counters(n_users=300, n_rounds=10, rng=0)
        assert dataset.values.max() == dataset.k - 1
        assert dataset.values.min() == 0

    def test_large_population_yields_large_domain(self):
        dataset = make_db_mt(n_users=3000, n_rounds=40, rng=1)
        assert dataset.k > 300

    def test_values_cluster_per_user(self):
        dataset = make_census_counters(n_users=200, n_rounds=20, rng=2)
        distinct = dataset.distinct_values_per_user()
        # Replicates hover around a base weight: well below 20 distinct raw
        # values would collapse to even fewer dense labels, but they must not
        # span the whole domain either.
        assert distinct.mean() < dataset.k / 2

    def test_db_de_metadata(self):
        dataset = make_db_de(n_users=100, n_rounds=5, rng=3)
        assert dataset.metadata["paper_defaults"]["k"] == 1234


class TestRegistry:
    def test_make_dataset_by_name(self):
        dataset = make_dataset("syn", scale=0.01, rng=0)
        assert dataset.name == "syn"
        assert dataset.n_users == 100

    def test_explicit_overrides_take_precedence(self):
        dataset = make_dataset("adult", n_users=77, n_rounds=3, rng=0)
        assert dataset.n_users == 77
        assert dataset.n_rounds == 3

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            make_dataset("imaginary")

    def test_dataset_summaries_cover_all_workloads(self):
        summaries = dataset_summaries(scale=0.01, rng=0)
        assert {s["name"] for s in summaries} == {"syn", "adult", "db_mt", "db_de"}
        for summary in summaries:
            assert summary["n_users"] >= 2
            assert summary["k"] >= 2
