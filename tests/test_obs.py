"""Tests for the repo-wide observability core (``repro.obs``).

Covers the metrics move out of ``repro.service`` (deprecation shim, the
process-global default registry), Prometheus exposition edge cases (label
escaping, non-finite observations, empty registries, scrape-while-mutating),
the structured JSONL event log (envelope validation, crash-safe appends,
strict readers), span tracing (near-zero disabled path, histogram recording,
span events, error propagation), the threaded :class:`MetricsExporter`, the
``repro-ldp status`` snapshot/render layer over both a scrape and the spool,
the coordinator/worker instrumentation of a live fleet, and the bit-identity
of estimates with instrumentation on versus off.
"""

import importlib
import json
import math
import sys
import threading
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro.distributed import (
    Coordinator,
    FileQueueTransport,
    InProcessTransport,
    TaskEnvelope,
    local_worker_threads,
    run_worker,
)
from repro.exceptions import ParameterError, ReproError
from repro.obs import (
    EventLog,
    MetricsExporter,
    MetricsRegistry,
    SCHEMA_VERSION,
    configure_tracing,
    default_registry,
    emit_event,
    get_default_event_log,
    read_events,
    set_default_event_log,
    set_default_registry,
    span,
    tracing_enabled,
)
from repro.obs.status import (
    StatusSnapshot,
    parse_exposition,
    render_status,
    snapshot_from_metrics_text,
    snapshot_from_spool,
)
from repro.simulation.runner import (
    make_shard_tasks,
    result_from_summaries,
    simulate_protocol,
    simulate_protocol_sharded,
)
from repro.specs import ProtocolSpec

SPEC = ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5)


@pytest.fixture(autouse=True)
def _isolated_obs_state():
    """Every test runs against a fresh registry, no event log, tracing off."""
    previous_registry = set_default_registry(MetricsRegistry())
    previous_log = set_default_event_log(None)
    yield
    configure_tracing(False)
    set_default_registry(previous_registry)
    set_default_event_log(previous_log)


# --------------------------------------------------------------------- #
# The move: repro.service.metrics -> repro.obs.metrics
# --------------------------------------------------------------------- #
class TestModuleMove:
    def test_old_import_path_warns_and_aliases(self):
        sys.modules.pop("repro.service.metrics", None)
        with pytest.warns(DeprecationWarning, match="repro.obs.metrics"):
            shim = importlib.import_module("repro.service.metrics")
        from repro.obs import metrics as new_home

        assert shim.MetricsRegistry is new_home.MetricsRegistry
        assert shim.Counter is new_home.Counter
        assert shim.Histogram is new_home.Histogram
        assert shim.default_registry is new_home.default_registry

    def test_service_package_reexport_does_not_warn(self):
        # ``from repro.service import MetricsRegistry`` is the supported
        # compatibility spelling; only the submodule path is deprecated.
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            from repro.service import MetricsRegistry as via_service
        from repro.obs.metrics import MetricsRegistry as canonical

        assert via_service is canonical


class TestDefaultRegistry:
    def test_swap_returns_previous(self):
        current = default_registry()
        fresh = MetricsRegistry()
        assert set_default_registry(fresh) is current
        assert default_registry() is fresh
        assert set_default_registry(current) is fresh

    def test_rejects_non_registry(self):
        with pytest.raises(ParameterError, match="MetricsRegistry"):
            set_default_registry({})

    def test_register_or_return_shares_series(self):
        registry = default_registry()
        a = registry.counter("repro_test_total", "help")
        b = registry.counter("repro_test_total")
        a.inc()
        b.inc(2)
        assert a.value() == 3.0

    def test_kind_conflict_raises(self):
        registry = default_registry()
        registry.counter("repro_test_conflict")
        with pytest.raises(ParameterError, match="already registered"):
            registry.gauge("repro_test_conflict")


# --------------------------------------------------------------------- #
# Exposition edge cases
# --------------------------------------------------------------------- #
class TestExpositionEdgeCases:
    def test_label_escaping_round_trips(self):
        registry = MetricsRegistry()
        nasty = 'line1\nline2 "quoted" back\\slash'
        registry.counter("repro_escape_total").labels(reason=nasty).inc()
        text = registry.render()
        # The raw exposition holds the escaped form on a single sample line.
        assert '\\n' in text and '\\"' in text and "\\\\" in text
        (labels, value), = parse_exposition(text)["repro_escape_total"]
        assert labels == {"reason": nasty}
        assert value == 1.0

    def test_non_finite_observation_rejected_and_state_unchanged(self):
        histogram = MetricsRegistry().histogram("repro_lat_seconds")
        histogram.observe(0.5)
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ParameterError, match="non-finite"):
                histogram.observe(bad)
        assert histogram.count() == 1

    def test_empty_registry_renders_bare_newline(self):
        assert MetricsRegistry().render() == "\n"
        assert parse_exposition(MetricsRegistry().render()) == {}

    def test_untouched_instrument_exposes_zero_sample(self):
        registry = MetricsRegistry()
        registry.counter("repro_untouched_total", "never incremented")
        (labels, value), = parse_exposition(registry.render())[
            "repro_untouched_total"
        ]
        assert labels == {} and value == 0.0

    def test_histogram_exposition_is_cumulative_with_inf_bucket(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "repro_lat_seconds", buckets=(0.1, 1.0)
        )
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        samples = parse_exposition(registry.render())
        buckets = {
            labels["le"]: value
            for labels, value in samples["repro_lat_seconds_bucket"]
        }
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 3.0}
        assert samples["repro_lat_seconds_count"][0][1] == 3.0
        assert samples["repro_lat_seconds_sum"][0][1] == pytest.approx(5.55)

    def test_concurrent_scrape_while_mutating(self):
        registry = MetricsRegistry()
        counter = registry.counter("repro_hammer_total")
        histogram = registry.histogram("repro_hammer_seconds")
        stop = threading.Event()
        errors = []

        def mutate(worker_id):
            try:
                i = 0
                while not stop.is_set():
                    counter.labels(worker=str(worker_id)).inc()
                    histogram.observe(0.001 * (i % 7))
                    i += 1
            except Exception as error:  # pragma: no cover - the assertion
                errors.append(error)

        threads = [
            threading.Thread(target=mutate, args=(n,)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        try:
            for _ in range(50):
                parse_exposition(registry.render())
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not errors
        final = parse_exposition(registry.render())
        total = sum(value for _, value in final["repro_hammer_total"])
        assert total == histogram.count() >= 1


# --------------------------------------------------------------------- #
# Event log
# --------------------------------------------------------------------- #
class TestEventLog:
    def test_emit_read_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(path, component="tester", run_id="r1", clock=lambda: 42.5)
        written = log.emit("started", shards=3, note="hello")
        assert written == {
            "v": SCHEMA_VERSION,
            "ts": 42.5,
            "component": "tester",
            "event": "started",
            "run_id": "r1",
            "shards": 3,
            "note": "hello",
        }
        log.emit("finished", component="override", ok=True)
        records = read_events(path)
        assert [r["event"] for r in records] == ["started", "finished"]
        assert records[1]["component"] == "override"
        assert log.emitted == 2

    def test_fields_are_jsonable_converted(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl", clock=lambda: 0.0)
        record = log.emit(
            "mixed", shards=(1, 2), where=tmp_path, nested={"k": np.float64(1.5)}
        )
        assert record["shards"] == [1, 2]
        assert record["where"] == str(tmp_path)
        assert record["nested"] == {"k": 1.5}
        assert read_events(log.path)[0]["shards"] == [1, 2]

    def test_envelope_shadowing_rejected(self, tmp_path):
        log = EventLog(tmp_path / "e.jsonl")
        with pytest.raises(ReproError, match="shadow"):
            log.emit("bad", ts=123.0)
        assert log.emitted == 0 and not log.path.exists()

    def test_reader_rejects_malformed_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"v": 1, "ts": 0,\n')
        with pytest.raises(ReproError, match=":1: not valid JSON"):
            read_events(path)

    def test_reader_rejects_non_object_and_missing_keys(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("[1, 2]\n")
        with pytest.raises(ReproError, match="not an object"):
            read_events(path)
        path.write_text('{"v": 1, "ts": 0.0}\n')
        with pytest.raises(ReproError, match="missing envelope keys"):
            read_events(path)

    def test_reader_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "e.jsonl"
        record = {"v": 99, "ts": 0.0, "component": "", "event": "x", "run_id": ""}
        path.write_text(json.dumps(record) + "\n")
        with pytest.raises(ReproError, match="unsupported event schema version"):
            read_events(path)

    def test_reader_skips_blank_lines(self, tmp_path):
        path = tmp_path / "e.jsonl"
        EventLog(path, clock=lambda: 1.0).emit("one")
        with path.open("a") as handle:
            handle.write("\n\n")
        EventLog(path, clock=lambda: 2.0).emit("two")
        assert [r["event"] for r in read_events(path)] == ["one", "two"]

    def test_default_log_install_and_noop(self, tmp_path):
        assert emit_event("dropped") is None
        log = EventLog(tmp_path / "e.jsonl", component="base", run_id="rid")
        assert set_default_event_log(log) is None
        assert get_default_event_log() is log
        record = emit_event("kept", component="worker", shard=1)
        assert record["component"] == "worker" and record["run_id"] == "rid"
        assert set_default_event_log(None) is log
        assert emit_event("dropped-again") is None
        assert [r["event"] for r in read_events(log.path)] == ["kept"]


# --------------------------------------------------------------------- #
# Spans
# --------------------------------------------------------------------- #
class TestSpans:
    def test_disabled_span_is_shared_noop_and_records_nothing(self):
        assert not tracing_enabled()
        first, second = span("a", x=1), span("b")
        assert first is second  # the shared no-op: no per-call allocation
        with first:
            pass
        assert default_registry().names() == []

    def test_enabled_span_records_histograms_and_counter(self):
        registry = MetricsRegistry()
        configure_tracing(True, registry=registry)
        assert tracing_enabled()
        with span("shard.run", shard_id=3):
            pass
        wall = registry.get("repro_span_seconds")
        assert wall.count(span="shard.run") == 1
        assert registry.get("repro_span_cpu_seconds").count(span="shard.run") == 1
        assert registry.get("repro_spans_total").value(span="shard.run") == 1.0

    def test_span_events_mirror_to_event_log(self, tmp_path):
        set_default_event_log(EventLog(tmp_path / "e.jsonl", run_id="r"))
        configure_tracing(True, registry=MetricsRegistry(), span_events=True)
        with span("sweep.point", component="sweep", point=7):
            pass
        record, = read_events(tmp_path / "e.jsonl")
        assert record["event"] == "span"
        assert record["span"] == "sweep.point"
        assert record["component"] == "sweep"
        assert record["point"] == 7
        assert record["error"] is False
        assert record["wall_seconds"] >= 0.0 and record["cpu_seconds"] >= 0.0

    def test_span_exception_propagates_and_flags_error(self, tmp_path):
        set_default_event_log(EventLog(tmp_path / "e.jsonl"))
        registry = MetricsRegistry()
        configure_tracing(True, registry=registry, span_events=True)
        with pytest.raises(ValueError, match="boom"):
            with span("fragile"):
                raise ValueError("boom")
        record, = read_events(tmp_path / "e.jsonl")
        assert record["error"] is True
        assert registry.get("repro_spans_total").value(span="fragile") == 1.0

    def test_configure_resets_to_default_registry(self):
        configure_tracing(True, registry=MetricsRegistry())
        configure_tracing(True)  # registry=None -> back to the default
        with span("resolved.late"):
            pass
        assert default_registry().get("repro_spans_total").value(
            span="resolved.late"
        ) == 1.0


# --------------------------------------------------------------------- #
# Metrics exporter
# --------------------------------------------------------------------- #
def _http(url, method="GET"):
    request = urllib.request.Request(url, method=method)
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, response.read().decode("utf-8")


class TestMetricsExporter:
    def test_serves_metrics_and_healthz(self):
        registry = MetricsRegistry()
        registry.counter("repro_demo_total").inc(5)
        with MetricsExporter(registry=registry) as exporter:
            host, port = exporter.address
            status, text = _http(f"http://{host}:{port}/metrics")
            assert status == 200
            assert "repro_demo_total 5" in text
            # The scrape itself is counted; the next scrape sees it.
            _, text = _http(f"http://{host}:{port}/metrics")
            samples = parse_exposition(text)
            assert samples["repro_metrics_scrapes_total"][0][1] >= 1.0
            status, body = _http(f"http://{host}:{port}/healthz")
            payload = json.loads(body)
            assert status == 200 and payload["status"] == "ok"
            assert payload["uptime_seconds"] >= 0.0

    def test_unknown_path_and_non_get_rejected(self):
        with MetricsExporter(registry=MetricsRegistry()) as exporter:
            host, port = exporter.address
            with pytest.raises(urllib.error.HTTPError) as info:
                _http(f"http://{host}:{port}/nope")
            assert info.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as info:
                _http(f"http://{host}:{port}/metrics", method="POST")
            assert info.value.code == 405

    def test_address_requires_start_and_close_is_idempotent(self):
        exporter = MetricsExporter(registry=MetricsRegistry())
        with pytest.raises(ReproError, match="not started"):
            exporter.address
        exporter.start()
        exporter.close()
        exporter.close()

    def test_bind_conflict_raises_repro_error(self):
        with MetricsExporter(registry=MetricsRegistry()) as exporter:
            _, port = exporter.address
            rival = MetricsExporter(registry=MetricsRegistry(), port=port)
            with pytest.raises(ReproError, match="cannot serve metrics"):
                rival.start()


# --------------------------------------------------------------------- #
# Status: parsing, snapshots, rendering
# --------------------------------------------------------------------- #
class TestStatusParsing:
    def test_parse_skips_comments_and_reads_inf(self):
        text = (
            "# HELP x help\n# TYPE x counter\n"
            'x_bucket{le="+Inf"} 3\nceiling +Inf\nplain 2\n'
        )
        samples = parse_exposition(text)
        assert samples["x_bucket"][0] == ({"le": "+Inf"}, 3.0)
        assert samples["ceiling"][0] == ({}, math.inf)
        assert samples["plain"][0] == ({}, 2.0)

    def test_unparseable_line_raises(self):
        with pytest.raises(ReproError, match="unparseable"):
            parse_exposition("not a sample line at all!\n")

    def test_snapshot_from_metrics_text(self):
        registry = MetricsRegistry()
        registry.gauge("repro_coord_shards_total").set(8)
        registry.gauge("repro_coord_shards_done").set(3)
        registry.gauge("repro_coord_shards_pending").set(5)
        registry.counter("repro_coord_tasks_requeued_total").inc(2)
        registry.counter("repro_worker_tasks_claimed_total").inc(5)
        sweep = registry.counter("repro_sweep_points_total")
        sweep.labels(status="done").inc(4)
        sweep.labels(status="skipped").inc(1)
        snapshot = snapshot_from_metrics_text(registry.render(), source="t")
        assert snapshot.source == "t"
        assert (snapshot.shards_total, snapshot.shards_done) == (8, 3)
        assert snapshot.shards_pending == 5
        assert snapshot.counters["requeued"] == 2.0
        assert snapshot.counters["worker_claims"] == 5.0
        assert (snapshot.sweep_done, snapshot.sweep_skipped) == (4, 1)

    def test_render_with_previous_shows_throughput_and_eta(self):
        previous = StatusSnapshot(
            source="t", captured_at=100.0, shards_total=10, shards_done=2
        )
        current = StatusSnapshot(
            source="t",
            captured_at=102.0,
            shards_total=10,
            shards_done=6,
            shards_pending=4,
        )
        text = render_status(current, previous)
        assert "shards: 10 total | 6 done | 4 pending" in text
        assert "throughput: 2.00 shards/s (ETA 2s)" in text

    def test_render_empty_snapshot_says_so(self):
        text = render_status(StatusSnapshot(source="t", captured_at=0.0))
        assert "no fleet or sweep series found" in text


class TestStatusFromSpool:
    def test_missing_queue_dir_raises(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            snapshot_from_spool(tmp_path / "nope")

    def test_spool_counts_without_checkpoint(self, tmp_path):
        for sub in ("tasks", "claims", "summaries"):
            (tmp_path / sub).mkdir()
        (tmp_path / "tasks" / "task-000001.json").write_text("{}")
        (tmp_path / "tasks" / "task-000002.json").write_text("{}")
        (tmp_path / "claims" / "task-000003.json").write_text("{}")
        (tmp_path / "summaries" / "summary-000000.npz").write_bytes(b"x")
        snapshot = snapshot_from_spool(tmp_path)
        assert snapshot.shards_total == 4
        assert snapshot.shards_done == 1
        assert snapshot.shards_pending == 3
        assert snapshot.shards_leased == 1
        assert snapshot.counters["spool_unclaimed"] == 2.0
        assert snapshot.counters["spool_delivered"] == 1.0

    def test_checkpoint_progress_meta_wins(self, tmp_path, tiny_dataset):
        queue = tmp_path / "queue"
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(SPEC, tiny_dataset, 3, rng=5)
        transport = FileQueueTransport(queue)
        coordinator = Coordinator(
            tasks, transport, poll_interval=0.02, checkpoint_path=checkpoint
        )
        coordinator.publish_pending()
        with local_worker_threads(transport, 2, dataset=tiny_dataset) as pool:
            coordinator.run(timeout=60.0, abort=pool.failure_reason)
        snapshot = snapshot_from_spool(queue, checkpoint=checkpoint)
        assert snapshot.shards_total == 3
        assert snapshot.shards_done == 3
        assert snapshot.shards_pending == 0
        assert snapshot.counters["requeued"] == 0.0


# --------------------------------------------------------------------- #
# Fleet instrumentation end to end
# --------------------------------------------------------------------- #
class TestFleetInstrumentation:
    def test_coordinator_and_worker_metrics_after_collection(
        self, tmp_path, tiny_dataset
    ):
        serial = simulate_protocol_sharded(SPEC, tiny_dataset, n_shards=3, rng=9)
        events_path = tmp_path / "events.jsonl"
        set_default_event_log(
            EventLog(events_path, component="test", run_id="fleet")
        )
        transport = FileQueueTransport(tmp_path / "queue")
        tasks = make_shard_tasks(SPEC, tiny_dataset, 3, rng=9)
        coordinator = Coordinator(tasks, transport, poll_interval=0.02)
        coordinator.publish_pending()
        with local_worker_threads(transport, 2, dataset=tiny_dataset) as pool:
            coordinator.run(timeout=60.0, abort=pool.failure_reason)

        registry = default_registry()
        assert registry.get("repro_coord_tasks_published_total").value() == 3.0
        assert registry.get("repro_coord_summaries_total").value() == 3.0
        assert registry.get("repro_coord_shards_done").value() == 3.0
        assert registry.get("repro_coord_shards_pending").value() == 0.0
        assert registry.get("repro_worker_tasks_claimed_total").value() == 3.0
        assert registry.get("repro_worker_summaries_total").value() == 3.0
        assert registry.get("repro_worker_task_seconds").count() == 3

        kinds = [record["event"] for record in read_events(events_path)]
        assert "tasks_published" in kinds
        assert "collection_complete" in kinds
        assert kinds.count("task_done") == 3
        assert all(r["run_id"] == "fleet" for r in read_events(events_path))

        result = result_from_summaries(
            SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_worker_failure_event_metric_and_stderr(self, tmp_path, capsys):
        events_path = tmp_path / "events.jsonl"
        set_default_event_log(EventLog(events_path, run_id="crash"))
        transport = InProcessTransport()
        transport.publish(TaskEnvelope(shard_id=0, payload=b"not a task"))
        with pytest.raises(Exception):
            run_worker(transport.worker(), idle_timeout=0.5)

        assert default_registry().get("repro_worker_errors_total").value(
            stage="task_decode"
        ) == 1.0
        record, = read_events(events_path)
        assert record["event"] == "error"
        assert record["component"] == "worker"
        assert record["stage"] == "task_decode"
        assert "Traceback" in record["traceback"]
        stderr_record = json.loads(capsys.readouterr().err.strip().splitlines()[-1])
        assert stderr_record["event"] == "error"
        assert stderr_record["stage"] == "task_decode"

    def test_instrumentation_never_perturbs_estimates(self, tiny_dataset, tmp_path):
        from repro.longitudinal import LOSUE

        protocol = LOSUE(tiny_dataset.k, 2.0, 1.0)
        configure_tracing(False)
        baseline = simulate_protocol(protocol, tiny_dataset, rng=11)

        set_default_event_log(EventLog(tmp_path / "e.jsonl"))
        configure_tracing(True, span_events=True)
        protocol = LOSUE(tiny_dataset.k, 2.0, 1.0)
        traced = simulate_protocol(protocol, tiny_dataset, rng=11)
        assert np.array_equal(baseline.estimates, traced.estimates)


# --------------------------------------------------------------------- #
# CLI status command
# --------------------------------------------------------------------- #
class TestStatusCli:
    def test_status_from_spool_and_checkpoint(self, tmp_path, tiny_dataset, capsys):
        from repro.cli import main

        queue = tmp_path / "queue"
        checkpoint = tmp_path / "coordinator.npz"
        transport = FileQueueTransport(queue)
        tasks = make_shard_tasks(SPEC, tiny_dataset, 2, rng=5)
        coordinator = Coordinator(
            tasks, transport, poll_interval=0.02, checkpoint_path=checkpoint
        )
        coordinator.publish_pending()
        with local_worker_threads(transport, 1, dataset=tiny_dataset) as pool:
            coordinator.run(timeout=60.0, abort=pool.failure_reason)

        code = main(
            [
                "status",
                "--queue-dir", str(queue),
                "--checkpoint", str(checkpoint),
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "repro-ldp status" in output
        assert "shards: 2 total | 2 done" in output

    def test_status_from_metrics_endpoint(self, capsys):
        from repro.cli import main

        registry = default_registry()
        registry.gauge("repro_coord_shards_total").set(4)
        registry.gauge("repro_coord_shards_done").set(1)
        registry.gauge("repro_coord_shards_pending").set(3)
        with MetricsExporter(registry=registry) as exporter:
            host, port = exporter.address
            assert main(["status", "--metrics", f"{host}:{port}"]) == 0
        output = capsys.readouterr().out
        assert "shards: 4 total | 1 done | 3 pending" in output

    def test_watch_iterations_prints_repeated_dashboards(
        self, tmp_path, capsys
    ):
        from repro.cli import main

        for sub in ("tasks", "claims", "summaries"):
            (tmp_path / "queue" / sub).mkdir(parents=True)
        (tmp_path / "queue" / "summaries" / "summary-000000.npz").write_bytes(b"x")
        code = main(
            [
                "status",
                "--queue-dir", str(tmp_path / "queue"),
                "--watch",
                "--interval", "0.01",
                "--iterations", "2",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out.count("repro-ldp status") == 2

    def test_checkpoint_without_queue_dir_is_an_error(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["status", "--metrics", "127.0.0.1:9", "--checkpoint", "x.npz"])
        assert code == 2
        assert "--checkpoint only applies" in capsys.readouterr().err

    def test_unreachable_endpoint_is_an_error(self, capsys):
        from repro.cli import main

        # Port 9 (discard) is almost certainly closed; the scrape must fail
        # as a clean CLI error, not a traceback.
        code = main(["status", "--metrics", "127.0.0.1:9"])
        assert code == 2
        assert "cannot scrape" in capsys.readouterr().err
