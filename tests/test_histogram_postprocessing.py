"""Tests for histogram post-processing (clipping, simplex projection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.exceptions import ParameterError
from repro.freq_oneshot import (
    clip_and_normalize,
    estimate_with_postprocessing,
    normalize_non_negative,
    project_onto_simplex,
)


class TestClipAndNormalize:
    def test_result_is_a_distribution(self):
        result = clip_and_normalize(np.asarray([0.5, -0.1, 0.7]))
        assert result.min() >= 0
        assert result.sum() == pytest.approx(1.0)

    def test_all_negative_falls_back_to_uniform(self):
        result = clip_and_normalize(np.asarray([-1.0, -2.0, -3.0, -4.0]))
        assert np.allclose(result, 0.25)

    def test_already_normalized_input_unchanged(self):
        values = np.asarray([0.25, 0.25, 0.5])
        assert np.allclose(clip_and_normalize(values), values)


class TestNormalizeNonNegative:
    def test_result_is_a_distribution(self):
        result = normalize_non_negative(np.asarray([0.2, -0.3, 0.6]))
        assert result.min() >= 0
        assert result.sum() == pytest.approx(1.0)

    def test_constant_input_becomes_uniform(self):
        result = normalize_non_negative(np.zeros(5))
        assert np.allclose(result, 0.2)


class TestSimplexProjection:
    def test_result_is_a_distribution(self):
        result = project_onto_simplex(np.asarray([0.9, -0.4, 0.6]))
        assert result.min() >= -1e-12
        assert result.sum() == pytest.approx(1.0)

    def test_projection_of_distribution_is_identity(self):
        values = np.asarray([0.1, 0.2, 0.3, 0.4])
        assert np.allclose(project_onto_simplex(values), values)

    def test_rejects_matrices(self):
        with pytest.raises(ParameterError):
            project_onto_simplex(np.zeros((2, 2)))

    @given(
        arrays(
            np.float64,
            st.integers(min_value=2, max_value=30),
            elements=st.floats(min_value=-2.0, max_value=2.0, allow_nan=False),
        )
    )
    @settings(max_examples=80, deadline=None)
    def test_projection_properties(self, values):
        """Projection output is always a point of the probability simplex and
        is never farther (in L2) from the input than any other simplex point
        we can cheaply construct (the uniform distribution)."""
        projected = project_onto_simplex(values)
        assert projected.min() >= -1e-9
        assert projected.sum() == pytest.approx(1.0, abs=1e-9)
        uniform = np.full_like(values, 1.0 / values.size)
        assert np.linalg.norm(projected - values) <= np.linalg.norm(uniform - values) + 1e-9


class TestRegistry:
    def test_named_methods_apply(self):
        raw = np.asarray([0.7, -0.1, 0.4])
        for method in ("none", "clip", "shift", "simplex"):
            result = estimate_with_postprocessing(raw, method)
            assert result.shape == raw.shape

    def test_unknown_method_raises(self):
        with pytest.raises(ParameterError):
            estimate_with_postprocessing(np.asarray([0.5, 0.5]), "magic")

    def test_none_returns_input_values(self):
        raw = np.asarray([0.7, -0.1, 0.4])
        assert np.allclose(estimate_with_postprocessing(raw, "none"), raw)
