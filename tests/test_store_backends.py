"""Conformance suite for the pluggable results backends.

Every test in :class:`TestBackendConformance` runs against each registered
backend (csv, sqlite, parquet) through one parametrized fixture — the
contract of :class:`repro.store.ResultsBackend` is whatever this file
asserts.  Separate classes cover crash safety under a mid-write SIGKILL,
concurrent writers, cross-backend migration, the sweep/CLI integration and
the coordinator's store-backed checkpointing.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time

import numpy as np
import pytest

from repro.exceptions import ExperimentError, ParameterError
from repro.specs import ProtocolSpec, SweepSpec
from repro.store import (
    FINGERPRINT_KEY,
    CsvBackend,
    ParquetBackend,
    ResultsStore,
    SqliteBackend,
    available_backend_kinds,
    detect_backend_kind,
    fingerprint_from_comment,
    make_backend,
    migrate_store,
    pyarrow_available,
)

KINDS = ("csv", "sqlite", "parquet")


@pytest.fixture(params=KINDS)
def backend(request, tmp_path):
    with make_backend(request.param, tmp_path / request.param) as instance:
        yield instance


ROWS = [
    {"protocol": "L-OSUE", "eps_inf": 2.0, "alpha": 0.5, "mse": 0.25},
    {"protocol": "1BitFlipPM", "eps_inf": 0.5, "alpha": 0.5, "mse": None},
]
#: What every backend must return for ROWS: CSV stringification, None -> "".
ROWS_LOADED = [
    {"protocol": "L-OSUE", "eps_inf": "2.0", "alpha": "0.5", "mse": "0.25"},
    {"protocol": "1BitFlipPM", "eps_inf": "0.5", "alpha": "0.5", "mse": ""},
]


class TestRegistry:
    def test_all_builtin_kinds_registered(self):
        assert set(KINDS) <= set(available_backend_kinds())

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="unknown results backend"):
            make_backend("oracle", tmp_path)

    def test_detect_backend_kind(self, tmp_path):
        for kind in KINDS:
            root = tmp_path / kind
            with make_backend(kind, root) as b:
                b.append_rows("exp", ROWS)
            assert detect_backend_kind(root) == kind

    def test_detect_prefers_sqlite_over_csv(self, tmp_path):
        for kind in ("csv", "sqlite"):
            with make_backend(kind, tmp_path) as b:
                b.append_rows("exp", ROWS)
        assert detect_backend_kind(tmp_path) == "sqlite"

    def test_detect_rejects_missing_and_unrecognizable(self, tmp_path):
        with pytest.raises(ExperimentError, match="no results directory"):
            detect_backend_kind(tmp_path / "absent")
        (tmp_path / "stray.txt").write_text("not a store\n")
        with pytest.raises(ExperimentError, match="no recognizable results store"):
            detect_backend_kind(tmp_path)

    def test_fingerprint_from_comment(self):
        assert fingerprint_from_comment(f"{FINGERPRINT_KEY}=abc") == "abc"
        assert fingerprint_from_comment("other=abc") is None
        assert fingerprint_from_comment(None) is None


class TestBackendConformance:
    def test_append_load_round_trip_stringifies_like_csv(self, backend):
        backend.append_rows("exp", ROWS)
        assert backend.load_rows("exp") == ROWS_LOADED

    def test_append_preserves_order_across_batches(self, backend):
        for i in range(5):
            backend.append_rows("exp", [{"i": i, "tag": f"row{i}"}])
        assert [row["i"] for row in backend.load_rows("exp")] == [
            "0", "1", "2", "3", "4"
        ]

    def test_empty_append_is_a_noop(self, backend):
        backend.append_rows("exp", [])
        assert not backend.has_rows("exp")

    def test_load_missing_experiment_raises(self, backend):
        with pytest.raises(ExperimentError, match="no saved results"):
            backend.load_rows("nothing")

    def test_header_comment_first_append_wins(self, backend):
        backend.append_rows("exp", ROWS[:1], header_comment="fp=first")
        backend.append_rows("exp", ROWS[1:], header_comment="fp=second")
        assert backend.read_header_comment("exp") == "fp=first"

    def test_header_comment_absent(self, backend):
        assert backend.read_header_comment("nothing") is None
        backend.append_rows("plain", ROWS)
        assert backend.read_header_comment("plain") is None

    def test_multiline_header_comment_rejected(self, backend):
        with pytest.raises(ExperimentError, match="single line"):
            backend.append_rows("bad", ROWS, header_comment="two\nlines")

    def test_fingerprint_parsed_from_comment(self, backend):
        backend.append_rows(
            "exp", ROWS, header_comment=f"{FINGERPRINT_KEY}=deadbeef"
        )
        assert backend.fingerprint("exp") == "deadbeef"

    def test_column_mismatch_rejected(self, backend):
        backend.append_rows("exp", [{"a": 1}])
        with pytest.raises(ExperimentError, match="columns"):
            backend.append_rows("exp", [{"b": 2}])
        with pytest.raises(ExperimentError, match="columns"):
            backend.append_rows("other", [{"a": 1}, {"b": 2}])

    def test_newline_cells_rejected(self, backend):
        with pytest.raises(ExperimentError, match="newlines"):
            backend.append_rows("bad", [{"a": "two\nlines"}])

    def test_has_rows_and_list_experiments(self, backend):
        assert backend.list_experiments() == []
        assert not backend.has_rows("exp_b")
        backend.append_rows("exp_b", ROWS)
        backend.append_rows("exp_a", ROWS)
        assert backend.has_rows("exp_b")
        assert backend.list_experiments() == ["exp_a", "exp_b"]

    def test_location_is_informative(self, backend):
        backend.append_rows("exp", ROWS)
        assert "exp" in backend.location("exp")

    def test_distinct_ids_never_share_rows(self, backend):
        """The sanitization-collision bugfix holds through every backend."""
        backend.append_rows("a/b", [{"x": "slash"}])
        backend.append_rows("a b", [{"x": "space"}])
        backend.append_rows("A_B", [{"x": "upper"}])
        assert [row["x"] for row in backend.load_rows("a/b")] == ["slash"]
        assert [row["x"] for row in backend.load_rows("a b")] == ["space"]
        assert [row["x"] for row in backend.load_rows("A_B")] == ["upper"]

    def test_empty_experiment_id_rejected(self, backend):
        with pytest.raises(ExperimentError, match="non-empty"):
            backend.append_rows("", [{"a": 1}])

    def test_context_manager_reopens(self, backend):
        backend.append_rows("exp", ROWS)
        backend.close()
        reopened = make_backend(backend.kind, backend.root)
        try:
            assert reopened.load_rows("exp") == ROWS_LOADED
        finally:
            reopened.close()


class TestQuery:
    @pytest.fixture(params=KINDS)
    def populated(self, request, tmp_path):
        with make_backend(request.param, tmp_path) as backend:
            backend.append_rows(
                "sweep_syn",
                [
                    {"protocol": "L-OSUE", "eps_inf": 0.5, "mse": 0.1},
                    {"protocol": "L-OSUE", "eps_inf": 2.0, "mse": 0.2},
                    {"protocol": "1BitFlipPM", "eps_inf": 2.0, "mse": 0.3},
                ],
                header_comment=f"{FINGERPRINT_KEY}=fp_one",
            )
            backend.append_rows(
                "sweep_adult",
                [{"protocol": "L-OSUE", "eps_inf": 5.0, "mse": 0.4}],
                header_comment=f"{FINGERPRINT_KEY}=fp_two",
            )
            yield backend

    def test_no_filters_returns_everything_tagged(self, populated):
        rows = populated.query()
        assert len(rows) == 4
        assert {row["experiment_id"] for row in rows} == {"sweep_syn", "sweep_adult"}

    def test_experiment_filter(self, populated):
        rows = populated.query(experiment_id="sweep_adult")
        assert [row["mse"] for row in rows] == ["0.4"]
        assert populated.query(experiment_id="nothing") == []

    def test_fingerprint_filter_skips_other_experiments(self, populated):
        rows = populated.query(fingerprint="fp_one")
        assert len(rows) == 3
        assert all(row["experiment_id"] == "sweep_syn" for row in rows)
        assert populated.query(fingerprint="unknown") == []

    def test_protocol_and_eps_range_filters(self, populated):
        rows = populated.query(protocol="L-OSUE", eps_min=1.0)
        assert sorted(row["eps_inf"] for row in rows) == ["2.0", "5.0"]
        rows = populated.query(eps_min=1.0, eps_max=3.0)
        assert sorted(row["mse"] for row in rows) == ["0.2", "0.3"]

    def test_combined_filters(self, populated):
        rows = populated.query(
            fingerprint="fp_one", protocol="1BitFlipPM", eps_min=1.0, eps_max=2.5
        )
        assert [row["mse"] for row in rows] == ["0.3"]

    def test_rows_without_numeric_eps_never_match_range(self, tmp_path):
        for kind in KINDS:
            with make_backend(kind, tmp_path / kind) as backend:
                backend.append_rows("exp", [{"protocol": "X", "note": "no eps"}])
                assert backend.query(eps_min=0.0) == []
                assert len(backend.query(protocol="X")) == 1


_KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    sys.path.insert(0, {src!r})
    from repro.store import make_backend
    backend = make_backend({kind!r}, {root!r})
    i = 0
    while True:
        backend.append_rows(
            "victim",
            [{{"i": i * 3 + j, "payload": "x" * 64}} for j in range(3)],
        )
        i += 1
    """
)


class TestCrashSafety:
    @pytest.mark.parametrize("kind", KINDS)
    def test_sigkill_mid_write_leaves_loadable_prefix(self, kind, tmp_path):
        """Kill an appending writer at an arbitrary instant; the store must
        load cleanly and hold an uncorrupted prefix of the append sequence."""
        root = tmp_path / kind
        script = _KILL_SCRIPT.format(
            src=str((os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
                    + "/src"),
            kind=kind,
            root=str(root),
        )
        process = subprocess.Popen([sys.executable, "-c", script])
        try:
            deadline = time.monotonic() + 30.0
            backend = make_backend(kind, root)
            while time.monotonic() < deadline:
                if backend.has_rows("victim") and len(backend.load_rows("victim")) >= 9:
                    break
                time.sleep(0.01)
            else:
                pytest.fail("writer produced no rows in time")
            backend.close()
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait()
        with make_backend(kind, root) as backend:
            rows = backend.load_rows("victim")
        assert rows, "all rows lost"
        # Every surviving row is complete and they form an exact prefix-free
        # subsequence 0..n-1 of what the writer appended, in order.
        for position, row in enumerate(rows):
            assert set(row) == {"i", "payload"}
            assert row["i"] == str(position)
            assert row["payload"] == "x" * 64

    @pytest.mark.parametrize("kind", KINDS)
    def test_two_concurrent_writers_interleave_whole_batches(self, kind, tmp_path):
        root = tmp_path / kind
        script = textwrap.dedent(
            """
            import sys
            sys.path.insert(0, sys.argv[1])
            from repro.store import make_backend
            backend = make_backend(sys.argv[2], sys.argv[3])
            writer = sys.argv[4]
            for i in range(20):
                backend.append_rows(
                    "shared", [{"writer": writer, "i": i}]
                )
            backend.close()
            """
        )
        src = os.path.dirname(os.path.dirname(os.path.abspath(__file__))) + "/src"
        workers = [
            subprocess.Popen(
                [sys.executable, "-c", script, src, kind, str(root), name]
            )
            for name in ("alpha", "beta")
        ]
        for worker in workers:
            assert worker.wait(timeout=120) == 0
        with make_backend(kind, root) as backend:
            rows = backend.load_rows("shared")
        assert len(rows) == 40
        for name in ("alpha", "beta"):
            mine = [int(row["i"]) for row in rows if row["writer"] == name]
            assert mine == list(range(20)), f"writer {name} rows reordered or lost"


class TestMigrateStore:
    def _populate(self, kind, root):
        with make_backend(kind, root) as backend:
            backend.append_rows(
                "sweep_syn", ROWS, header_comment=f"{FINGERPRINT_KEY}=fp_mig"
            )
            backend.append_rows("plain", [{"a": 1}])

    @pytest.mark.parametrize("source_kind", KINDS)
    @pytest.mark.parametrize("dest_kind", KINDS)
    def test_rows_and_comments_migrate_bit_identically(
        self, source_kind, dest_kind, tmp_path
    ):
        source, dest = tmp_path / "src", tmp_path / "dst"
        self._populate(source_kind, source)
        counts = migrate_store(source, dest, source_kind, dest_kind)
        assert counts == {"plain": 1, "sweep_syn": 2}
        with make_backend(dest_kind, dest) as backend:
            assert backend.load_rows("sweep_syn") == ROWS_LOADED
            assert backend.read_header_comment("sweep_syn") == (
                f"{FINGERPRINT_KEY}=fp_mig"
            )
            assert backend.read_header_comment("plain") is None

    def test_migrated_csv_is_byte_identical_to_direct_write(self, tmp_path):
        """csv -> sqlite -> csv reproduces the original file exactly."""
        first, db, second = tmp_path / "a", tmp_path / "b", tmp_path / "c"
        self._populate("csv", first)
        migrate_store(first, db, "csv", "sqlite")
        migrate_store(db, second, "sqlite", "csv")
        assert (second / "sweep_syn.csv").read_bytes() == (
            first / "sweep_syn.csv"
        ).read_bytes()

    def test_refuses_existing_destination_experiment(self, tmp_path):
        source, dest = tmp_path / "src", tmp_path / "dst"
        self._populate("csv", source)
        with make_backend("sqlite", dest) as backend:
            backend.append_rows("plain", [{"a": 99}])
        with pytest.raises(ExperimentError, match="refusing to mix"):
            migrate_store(source, dest, "csv", "sqlite")
        # Untouched experiments migrate fine when selected explicitly.
        counts = migrate_store(
            source, dest, "csv", "sqlite", experiments=["sweep_syn"]
        )
        assert counts == {"sweep_syn": 2}

    def test_empty_source_rejected(self, tmp_path):
        (tmp_path / "src").mkdir()
        with pytest.raises(ExperimentError, match="no experiments"):
            migrate_store(tmp_path / "src", tmp_path / "dst", "csv", "sqlite")


class TestSqliteSpecifics:
    def test_single_database_file_per_root(self, tmp_path):
        with SqliteBackend(tmp_path) as backend:
            backend.append_rows("one", [{"a": 1}])
            backend.append_rows("two", [{"a": 2}])
        stores = [p.name for p in tmp_path.iterdir() if p.suffix == ".sqlite"]
        assert stores == ["results.sqlite"]

    def test_fingerprint_query_uses_index_not_table_scan(self, tmp_path):
        """The query plan for a fingerprint filter must hit the fingerprint
        index — the acceptance criterion that queries do not load the
        whole table."""
        with SqliteBackend(tmp_path) as backend:
            backend.append_rows(
                "exp", ROWS, header_comment=f"{FINGERPRINT_KEY}=abc"
            )
            plan = backend._connect().execute(
                "EXPLAIN QUERY PLAN "
                "SELECT rows.data FROM rows JOIN experiments "
                "ON experiments.experiment_id = rows.experiment_id "
                "WHERE experiments.fingerprint = ?",
                ("abc",),
            ).fetchall()
        plan_text = " ".join(str(step) for step in plan)
        assert "idx_experiments_fingerprint" in plan_text

    def test_failed_append_rolls_back_entirely(self, tmp_path):
        with SqliteBackend(tmp_path) as backend:
            backend.append_rows("exp", [{"a": 1}])
            with pytest.raises(ExperimentError, match="columns"):
                backend.append_rows("exp", [{"a": 2}, {"b": 3}])
            assert [row["a"] for row in backend.load_rows("exp")] == ["1"]


class TestParquetSpecifics:
    def test_npz_fallback_active_without_pyarrow(self, tmp_path):
        with ParquetBackend(tmp_path) as backend:
            backend.append_rows("exp", ROWS)
            parts = list((tmp_path / "exp.parts").glob("part-*"))
            assert parts, "no chunk written"
            expected = ".parquet" if pyarrow_available() else ".npz"
            assert all(p.suffix == expected for p in parts)

    def test_chunks_are_immutable_across_appends(self, tmp_path):
        with ParquetBackend(tmp_path) as backend:
            backend.append_rows("exp", ROWS[:1])
            first = sorted((tmp_path / "exp.parts").glob("part-*"))
            before = first[0].read_bytes()
            backend.append_rows("exp", ROWS[1:])
            assert first[0].read_bytes() == before
            assert len(list((tmp_path / "exp.parts").glob("part-*"))) == 2


class TestSweepSpecStoreField:
    def _spec(self, **overrides):
        kwargs = dict(
            protocols=(ProtocolSpec(name="L-OSUE"),),
            eps_inf_values=(1.0,),
            alpha_values=(0.5,),
        )
        kwargs.update(overrides)
        return SweepSpec(**kwargs)

    def test_default_and_round_trip(self):
        spec = self._spec(store="sqlite")
        assert self._spec().store == "csv"
        assert SweepSpec.from_dict(spec.to_dict()).store == "sqlite"

    def test_unknown_store_rejected(self):
        with pytest.raises(ParameterError, match="unknown results store"):
            self._spec(store="oracle")

    def test_store_excluded_from_fingerprint(self):
        assert self._spec(store="csv").fingerprint() == self._spec(
            store="sqlite"
        ).fingerprint()


class TestCoordinatorStoreCheckpoint:
    def _coordinator(self, store):
        from repro.datasets import make_dataset
        from repro.distributed import Coordinator, InProcessTransport
        from repro.simulation.runner import make_shard_tasks
        from repro.specs import ProtocolSpec

        spec = ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5)
        self._dataset = make_dataset("syn", scale=0.01, rng=3)
        tasks = make_shard_tasks(spec, self._dataset, 4, rng=3)
        return Coordinator(
            tasks,
            InProcessTransport(),
            checkpoint_store=store,
            checkpoint_experiment_id="ckpt",
        )

    @pytest.mark.parametrize("kind", KINDS)
    def test_absorb_appends_and_restore_round_trips(self, kind, tmp_path):
        from repro.distributed import local_worker_threads

        with make_backend(kind, tmp_path) as store:
            first = self._coordinator(store)
            with local_worker_threads(first.transport, 1, dataset=self._dataset):
                first.run(timeout=60.0)
            first.transport.close()
            assert first.is_complete
            assert store.has_rows("ckpt")
            comment = store.read_header_comment("ckpt")
            assert comment == f"plan_fingerprint={first.plan_fingerprint}"

            second = self._coordinator(store)
            restored = second.load_checkpoint_from_store()
            assert restored == first.n_shards
            assert second.is_complete
            for shard_id in range(first.n_shards):
                np.testing.assert_array_equal(
                    second.summaries[shard_id].support_counts,
                    first.summaries[shard_id].support_counts,
                )
                np.testing.assert_array_equal(
                    second.summaries[shard_id].distinct_memoized_per_user,
                    first.summaries[shard_id].distinct_memoized_per_user,
                )
            # Restoring must not have re-appended checkpoint rows.
            assert len(store.load_rows("ckpt")) == first.n_shards

    def test_foreign_plan_checkpoint_refused(self, tmp_path):
        with make_backend("sqlite", tmp_path) as store:
            store.append_rows(
                "ckpt",
                [{"shard_id": 0, "n_users": 1, "support_counts": "[0.0]",
                  "distinct_memoized_per_user": "[1]"}],
                header_comment="plan_fingerprint=someoneelse",
            )
            coordinator = self._coordinator(store)
            with pytest.raises(ExperimentError, match="different collection plan"):
                coordinator.load_checkpoint_from_store()

    def test_no_store_configured_raises(self):
        coordinator = self._coordinator(None)
        with pytest.raises(ExperimentError, match="no checkpoint store"):
            coordinator.load_checkpoint_from_store()


class TestLegacyInterop:
    def test_results_store_and_csv_backend_share_files(self, tmp_path):
        """The adapter is the legacy store: files written by either class
        are read by the other, so nothing existing needs migration."""
        legacy = ResultsStore(tmp_path)
        legacy.append_rows("exp", [{"a": 1}], header_comment="fp=legacy")
        with CsvBackend(tmp_path) as backend:
            assert backend.load_rows("exp") == [{"a": "1"}]
            assert backend.read_header_comment("exp") == "fp=legacy"
            backend.append_rows("exp", [{"a": 2}])
        assert [row["a"] for row in legacy.load_rows("exp")] == ["1", "2"]
