"""Statistical tests of the longitudinal estimators (Eq. 3) across protocols."""

import numpy as np
import pytest

from repro.exceptions import AggregationError, EncodingError
from repro.longitudinal import BiLOLOHA, DBitFlipPM, LGRR, LOSUE, LSUE, OLOLOHA
from repro.longitudinal.base import longitudinal_estimate
from repro.longitudinal.parameters import l_osue_parameters


def _estimate_once(protocol, values, rng):
    """Run one collection round with fresh clients and estimate the histogram."""
    clients = [protocol.create_client(rng) for _ in range(len(values))]
    reports = [client.report(int(v), rng) for client, v in zip(clients, values)]
    return protocol.estimate_frequencies(reports)


class TestEstimatorAlgebra:
    def test_longitudinal_estimate_formula(self):
        params = l_osue_parameters(2.0, 1.0)
        counts = np.asarray([40.0, 60.0])
        n = 100
        estimate = longitudinal_estimate(counts, n, params)
        expected = (
            counts - n * params.q1 * (params.p2 - params.q2) - n * params.q2
        ) / (n * (params.p1 - params.q1) * (params.p2 - params.q2))
        assert np.allclose(estimate, expected)

    def test_estimate_requires_positive_n(self):
        params = l_osue_parameters(2.0, 1.0)
        with pytest.raises(Exception):
            longitudinal_estimate(np.asarray([1.0]), 0, params)


@pytest.mark.parametrize(
    "protocol_factory",
    [
        lambda k: LGRR(k, 3.0, 1.5),
        lambda k: LSUE(k, 3.0, 1.5),
        lambda k: LOSUE(k, 3.0, 1.5),
        lambda k: BiLOLOHA(k, 3.0, 1.5),
        lambda k: OLOLOHA(k, 3.0, 1.5),
    ],
    ids=["L-GRR", "RAPPOR", "L-OSUE", "BiLOLOHA", "OLOLOHA"],
)
class TestSingleRoundAccuracy:
    """With a generous budget and a skewed distribution, every protocol's
    estimate of the dominant value must land near the truth."""

    def test_dominant_value_recovered(self, protocol_factory):
        k, n = 8, 6000
        rng = np.random.default_rng(99)
        true = np.asarray([0.55] + [0.45 / (k - 1)] * (k - 1))
        values = rng.choice(k, size=n, p=true)
        protocol = protocol_factory(k)
        estimate = _estimate_once(protocol, values, rng)
        assert estimate.shape == (k,)
        assert abs(estimate[0] - 0.55) < 0.12

    def test_estimates_sum_close_to_one(self, protocol_factory):
        k, n = 8, 6000
        rng = np.random.default_rng(7)
        values = rng.integers(0, k, size=n)
        protocol = protocol_factory(k)
        estimate = _estimate_once(protocol, values, rng)
        assert abs(estimate.sum() - 1.0) < 0.35


class TestDBitFlipEstimation:
    def test_full_sampling_recovers_bucket_histogram(self):
        k, n = 10, 8000
        rng = np.random.default_rng(11)
        true = np.asarray([0.4, 0.3] + [0.3 / 8] * 8)
        values = rng.choice(k, size=n, p=true)
        protocol = DBitFlipPM(k, eps_inf=4.0, d=k)
        clients = [protocol.create_client(rng) for _ in range(n)]
        reports = [client.report(int(v), rng) for client, v in zip(clients, values)]
        estimate = protocol.estimate_frequencies(reports)
        assert estimate.shape == (k,)
        assert abs(estimate[0] - 0.4) < 0.1

    def test_subsampled_estimation_uses_effective_n(self):
        k, n = 10, 8000
        rng = np.random.default_rng(13)
        values = rng.integers(0, k, size=n)
        protocol = DBitFlipPM(k, eps_inf=4.0, d=2)
        clients = [protocol.create_client(rng) for _ in range(n)]
        reports = [client.report(int(v), rng) for client, v in zip(clients, values)]
        estimate = protocol.estimate_frequencies(reports)
        # Uniform truth: every bucket near 1/k even though only d of b bits
        # are observed per user.
        assert np.all(np.abs(estimate - 0.1) < 0.1)

    def test_empty_reports_raise(self):
        protocol = DBitFlipPM(10, eps_inf=1.0)
        with pytest.raises(AggregationError):
            protocol.estimate_frequencies([])

    def test_foreign_report_type_rejected(self):
        protocol = DBitFlipPM(10, eps_inf=1.0)
        with pytest.raises(EncodingError):
            protocol.support_counts([object()])


class TestLOLOHAServer:
    def test_support_counts_rejects_foreign_reports(self):
        protocol = BiLOLOHA(10, 2.0, 1.0)
        with pytest.raises(EncodingError):
            protocol.support_counts(["not-a-report"])

    def test_variance_prediction_matches_empirical_error(self):
        """The empirical MSE over repeated estimates is close to the
        theoretical approximate variance (within loose statistical slack)."""
        k, n = 6, 4000
        protocol = OLOLOHA(k, 3.0, 1.5)
        rng = np.random.default_rng(5)
        true = np.full(k, 1.0 / k)
        values = rng.choice(k, size=n, p=true)
        errors = []
        for _ in range(3):
            estimate = _estimate_once(protocol, values, rng)
            errors.append(np.mean((estimate - true) ** 2))
        empirical = float(np.mean(errors))
        theoretical = protocol.approximate_variance(n)
        assert empirical < 6 * theoretical
        assert empirical > theoretical / 6
