"""Tests for the distributed collection subsystem.

Covers the wire codec, the three transports (in-process, file spool, TCP
broker), the fault-tolerant coordinator — worker crash with lease-expiry
requeue, duplicate summary delivery, out-of-order arrival, coordinator
checkpoint/restore — and the end-to-end bit-identity of
``simulate_protocol_sharded(transport=...)`` against the serial path for a
one-shot (single-round) and a longitudinal workload.
"""

import threading
import time

import numpy as np
import pytest

from repro.datasets import make_uniform_changing
from repro.distributed import (
    Coordinator,
    DatasetRef,
    FileQueueTransport,
    FileQueueWorker,
    InProcessTransport,
    SocketTransport,
    SummaryEnvelope,
    TransportError,
    decode_summary,
    decode_task,
    encode_summary,
    encode_task,
    local_worker_threads,
    run_worker,
)
from repro.exceptions import ExperimentError
from repro.service import CollectorSession
from repro.simulation.runner import (
    make_shard_tasks,
    result_from_summaries,
    run_shard_task,
    simulate_protocol_sharded,
)
from repro.specs import CollectionSpec, ProtocolSpec

LONGITUDINAL_SPEC = ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5)
ONESHOT_SPEC = ProtocolSpec(name="L-GRR", eps_inf=1.0, alpha=0.5)


@pytest.fixture
def oneshot_dataset():
    """A single-round workload: the one-shot collection degenerate case."""
    return make_uniform_changing(
        k=16, n_users=200, n_rounds=1, change_probability=0.5, name="oneshot", rng=3
    )


def _file_transport(tmp_path):
    return FileQueueTransport(tmp_path / "queue")


# --------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------- #
class TestCodec:
    def test_task_round_trip(self, tiny_dataset):
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=5)
        ref = DatasetRef(name="syn", scale=0.05, seed=7)
        payload = encode_task(1, tasks[1], ref)
        shard_id, decoded, decoded_ref, plan = decode_task(payload)
        assert shard_id == 1
        assert decoded.spec == tasks[1].spec
        assert (decoded.start, decoded.stop) == (tasks[1].start, tasks[1].stop)
        assert decoded.dataset_name == tiny_dataset.name
        assert decoded_ref == ref
        # The reconstructed seed drives a bit-identical stream.
        a = np.random.default_rng(tasks[1].seed).random(8)
        b = np.random.default_rng(decoded.seed).random(8)
        assert np.array_equal(a, b)

    def test_task_without_dataset_ref(self, tiny_dataset):
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        _, _, ref, _ = decode_task(encode_task(0, task))
        assert ref is None

    def test_summary_round_trip(self, tiny_dataset):
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        summary = run_shard_task(task, tiny_dataset)
        shard_id, decoded, _ = decode_summary(encode_summary(0, summary))
        assert shard_id == 0
        assert np.array_equal(decoded.support_counts, summary.support_counts)
        assert np.array_equal(
            decoded.distinct_memoized_per_user, summary.distinct_memoized_per_user
        )
        assert decoded.n_users == summary.n_users

    def test_decode_rejects_garbage(self):
        with pytest.raises(TransportError, match="malformed task"):
            decode_task(b"not json")
        with pytest.raises(TransportError, match="not a shard task"):
            decode_task(b'{"kind": "something-else"}')
        with pytest.raises(TransportError, match="malformed summary"):
            decode_summary(b"not a zip archive")


# --------------------------------------------------------------------- #
# Transport contract (shared behaviours)
# --------------------------------------------------------------------- #
class TestTransportContract:
    @pytest.fixture(params=["inprocess", "file", "socket"])
    def transport(self, request, tmp_path):
        if request.param == "inprocess":
            transport = InProcessTransport()
        elif request.param == "file":
            transport = _file_transport(tmp_path)
        else:
            transport = SocketTransport()
        yield transport
        transport.close()

    def test_publish_claim_complete_poll(self, transport, tiny_dataset):
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        payload = encode_task(0, task)
        from repro.distributed import TaskEnvelope

        transport.publish(TaskEnvelope(shard_id=0, payload=payload))
        worker = transport.worker()
        try:
            envelope = worker.claim(timeout=5.0)
            assert envelope is not None and envelope.shard_id == 0
            assert envelope.payload == payload
            summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
            worker.complete(0, encode_summary(0, summary))
            received = transport.poll_summary(timeout=5.0)
            assert received is not None and received.shard_id == 0
            assert decode_summary(received.payload)[0] == 0
        finally:
            worker.close()

    def test_claim_times_out_when_empty(self, transport):
        worker = transport.worker()
        try:
            assert worker.claim(timeout=0.05) is None
        finally:
            worker.close()

    def test_abandoned_claim_is_reclaimed(self, transport, tiny_dataset):
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        from repro.distributed import TaskEnvelope

        transport.publish(TaskEnvelope(shard_id=0, payload=encode_task(0, task)))
        doomed = transport.worker()
        assert doomed.claim(timeout=5.0) is not None
        # The worker dies without completing; nothing is claimable ...
        second = transport.worker()
        try:
            assert second.claim(timeout=0.05) is None
            # ... until the lease expires and the shard is requeued.
            time.sleep(0.05)
            reclaimed = transport.reclaim_expired(lease_timeout=0.01)
            assert reclaimed == [0]
            envelope = second.claim(timeout=5.0)
            assert envelope is not None and envelope.shard_id == 0
        finally:
            doomed.close()
            second.close()


class TestFileQueueDetails:
    def test_concurrent_workers_claim_distinct_tasks(self, tmp_path, tiny_dataset):
        transport = _file_transport(tmp_path)
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=5)
        from repro.distributed import TaskEnvelope

        for shard_id, task in enumerate(tasks):
            transport.publish(
                TaskEnvelope(shard_id=shard_id, payload=encode_task(shard_id, task))
            )
        first = FileQueueWorker(tmp_path / "queue")
        second = FileQueueWorker(tmp_path / "queue")
        claimed = {first.claim(0.1).shard_id, second.claim(0.1).shard_id,
                   first.claim(0.1).shard_id, second.claim(0.1).shard_id}
        assert claimed == {0, 1, 2, 3}

    def test_staged_files_are_invisible_to_claims(self, tmp_path, tiny_dataset):
        """A torn (half-written) publish must never be claimable."""
        transport = _file_transport(tmp_path)
        queue_dir = tmp_path / "queue"
        (queue_dir / "tmp" / "task-000000.json.999.deadbeef").write_bytes(b"{half")
        worker = FileQueueWorker(queue_dir)
        assert worker.claim(timeout=0.05) is None

    def test_completed_shard_claim_is_dropped_not_requeued(
        self, tmp_path, tiny_dataset
    ):
        """A claim whose summary already landed must not resurrect the task."""
        transport = _file_transport(tmp_path)
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        from repro.distributed import TaskEnvelope

        transport.publish(TaskEnvelope(shard_id=0, payload=encode_task(0, task)))
        worker = transport.worker()
        envelope = worker.claim(timeout=5.0)
        summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
        payload = encode_summary(0, summary)
        # Simulate "summary delivered but claim file survived" (a crash
        # between the summary rename and the claim unlink).
        (queue_layout := transport._layout).summaries.joinpath(
            queue_layout.summary_name(0)
        ).write_bytes(payload)
        assert transport.reclaim_expired(lease_timeout=0.0) == []
        assert worker.claim(timeout=0.05) is None


# --------------------------------------------------------------------- #
# End-to-end bit-identity over every transport
# --------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.fixture(params=["inprocess", "file", "socket"])
    def make_transport(self, request, tmp_path):
        def factory():
            if request.param == "inprocess":
                return InProcessTransport()
            if request.param == "file":
                return FileQueueTransport(tmp_path / f"queue-{time.monotonic_ns()}")
            return SocketTransport()

        return factory

    @pytest.mark.parametrize(
        "spec_name", ["longitudinal", "oneshot"], ids=["L-OSUE", "L-GRR-oneshot"]
    )
    def test_transport_reproduces_serial_estimates(
        self, make_transport, spec_name, tiny_dataset, oneshot_dataset
    ):
        if spec_name == "longitudinal":
            spec, dataset = LONGITUDINAL_SPEC, tiny_dataset
        else:
            spec, dataset = ONESHOT_SPEC, oneshot_dataset
        serial = simulate_protocol_sharded(spec, dataset, n_shards=4, rng=9)
        transport = make_transport()
        try:
            distributed = simulate_protocol_sharded(
                spec, dataset, n_shards=4, rng=9, n_workers=2, transport=transport
            )
        finally:
            transport.close()
        assert np.array_equal(distributed.estimates, serial.estimates)
        assert np.array_equal(
            distributed.distinct_memoized_per_user, serial.distinct_memoized_per_user
        )
        assert distributed.mse_avg == serial.mse_avg
        assert distributed.eps_avg == serial.eps_avg

    def test_transport_requires_spec(self, tiny_dataset):
        from repro.registry import build_protocol

        protocol = build_protocol(LONGITUDINAL_SPEC.at(k=tiny_dataset.k))
        transport = InProcessTransport()
        try:
            with pytest.raises(ExperimentError, match="requires a ProtocolSpec"):
                simulate_protocol_sharded(
                    protocol, tiny_dataset, n_shards=2, rng=9, transport=transport
                )
        finally:
            transport.close()


# --------------------------------------------------------------------- #
# Failure modes
# --------------------------------------------------------------------- #
class TestFailureModes:
    @pytest.mark.parametrize("kind", ["inprocess", "file", "socket"])
    def test_worker_crash_lease_expiry_requeue(self, kind, tmp_path, tiny_dataset):
        """A claimed-then-abandoned shard is requeued and the final estimates
        are bit-identical to the serial run — on every transport."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9
        )
        if kind == "inprocess":
            transport = InProcessTransport()
        elif kind == "file":
            transport = _file_transport(tmp_path)
        else:
            transport = SocketTransport()
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)
        coordinator = Coordinator(tasks, transport, lease_timeout=0.1)
        coordinator.publish_pending()
        # A worker claims a shard and dies without completing it.  (Keep the
        # endpoint open: the socket broker would requeue instantly on
        # disconnect, and this test exercises the lease-timeout path.)
        doomed = transport.worker()
        assert doomed.claim(timeout=5.0) is not None
        with local_worker_threads(transport, 1, dataset=tiny_dataset):
            coordinator.run(timeout=30.0)
        doomed.close()
        transport.close()
        assert coordinator.requeued >= 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        assert result.eps_avg == serial.eps_avg

    def test_duplicate_summary_delivery_is_idempotent(self, tiny_dataset):
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=9
        )
        transport = InProcessTransport()
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=9)
        session = CollectorSession(
            LONGITUDINAL_SPEC.at(k=tiny_dataset.k), n_rounds=tiny_dataset.n_rounds
        )
        coordinator = Coordinator(tasks, transport, session=session)
        coordinator.publish_pending()
        worker = transport.worker()
        for _ in range(3):
            envelope = worker.claim(timeout=1.0)
            _, task, _, plan = decode_task(envelope.payload)
            payload = encode_summary(
                envelope.shard_id, run_shard_task(task, tiny_dataset)
            )
            worker.complete(envelope.shard_id, payload)
            if envelope.shard_id == 1:
                # At-least-once transport: the same summary lands twice.
                transport._summaries.append(
                    SummaryEnvelope(shard_id=1, payload=payload)
                )
        coordinator.run(timeout=30.0)
        transport.close()
        assert coordinator.duplicates == 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        # The streamed session saw each shard exactly once: with the full
        # population credited per round, its estimates equal the batch path.
        assert np.array_equal(
            session.estimates(), serial.estimates
        )

    def test_collector_restart_over_persistent_queue_dedups(
        self, tmp_path, tiny_dataset
    ):
        """A restarted collector re-scans the spool and sees every summary
        again; the checkpoint + shard-id dedup must absorb none twice."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=9
        )
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=9)

        first = Coordinator(
            tasks, _file_transport(tmp_path), checkpoint_path=checkpoint
        )
        first.publish_pending()
        # Workers spool all three summaries, but the collector "crashes"
        # after absorbing (and checkpointing) only two of them.
        run_worker(
            first.transport.worker(), dataset=tiny_dataset,
            max_tasks=3, idle_timeout=0.5,
        )
        assert first.step(timeout=1.0) is True
        assert first.step(timeout=1.0) is True
        assert not first.is_complete
        first.transport.close()

        # Fresh coordinator over the SAME queue directory: every spooled
        # summary is re-delivered — two are duplicates, one is new.
        second = Coordinator(
            tasks, _file_transport(tmp_path), checkpoint_path=checkpoint
        )
        assert second.load_checkpoint() == 2
        assert second.drain(idle_timeout=0.2) == 1
        second.transport.close()
        assert second.is_complete
        assert second.duplicates == 2
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, second.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_stale_summaries_from_another_collection_are_dropped(
        self, tmp_path, tiny_dataset
    ):
        """Reusing a queue dir must not absorb summaries of a previous
        (different-spec) collection: workers echo the plan fingerprint and
        the coordinator drops foreign summaries."""
        # First collection fills queue/summaries with its results.
        old = Coordinator(
            make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=1),
            _file_transport(tmp_path),
        )
        with local_worker_threads(old.transport, 1, dataset=tiny_dataset):
            old.run(timeout=30.0)
        old.transport.close()

        # Second collection, SAME queue dir, different seed (=> different
        # plan, identical shard layout — the dangerous case).
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=2
        )
        new = Coordinator(
            make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=2),
            _file_transport(tmp_path),
            lease_timeout=5.0,
        )
        with local_worker_threads(new.transport, 1, dataset=tiny_dataset):
            new.run(timeout=30.0)
        new.transport.close()
        assert new.foreign == 3  # the old spool re-delivered, all dropped
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, new.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_coordinator_aborts_when_all_local_workers_die(self, tiny_dataset):
        """A dead worker fleet must abort the run, not hang it forever."""
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport, lease_timeout=0.1)

        def poisoned_run_shard(*args, **kwargs):
            raise RuntimeError("worker exploded")

        import repro.distributed.worker as worker_module

        original = worker_module.run_shard_task
        worker_module.run_shard_task = poisoned_run_shard
        try:
            with pytest.raises((ExperimentError, RuntimeError), match="exploded|aborted"):
                with local_worker_threads(transport, 1, dataset=tiny_dataset) as pool:
                    coordinator.run(timeout=30.0, abort=pool.failure_reason)
        finally:
            worker_module.run_shard_task = original
            transport.close()

    def test_out_of_order_arrival(self, tiny_dataset):
        """Summaries absorbed in reverse order still merge bit-identically."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9
        )
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)
        transport = InProcessTransport()
        session = CollectorSession(
            LONGITUDINAL_SPEC.at(k=tiny_dataset.k), n_rounds=tiny_dataset.n_rounds
        )
        coordinator = Coordinator(tasks, transport, session=session)
        for shard_id in reversed(range(4)):
            coordinator.absorb(shard_id, run_shard_task(tasks[shard_id], tiny_dataset))
        transport.close()
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        assert np.array_equal(
            result.distinct_memoized_per_user, serial.distinct_memoized_per_user
        )
        assert np.array_equal(session.estimates(), serial.estimates)

    def test_absorb_rejects_unknown_shard_and_wrong_population(self, tiny_dataset):
        from repro.simulation.sinks import ShardSummary

        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport)
        summary = run_shard_task(tasks[0], tiny_dataset)
        with pytest.raises(TransportError, match="unknown shard"):
            coordinator.absorb(7, summary)
        wrong_population = ShardSummary(
            support_counts=summary.support_counts,
            distinct_memoized_per_user=np.zeros(summary.n_users + 1, dtype=np.int64),
            n_users=summary.n_users + 1,
        )
        with pytest.raises(TransportError, match="users, expected"):
            coordinator.absorb(1, wrong_population)
        transport.close()


# --------------------------------------------------------------------- #
# Coordinator checkpoint / restore
# --------------------------------------------------------------------- #
class TestCoordinatorCheckpoint:
    def test_killed_collector_resumes_bit_identical(self, tmp_path, tiny_dataset):
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9
        )
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)

        # First collector: absorbs two shards, checkpoints, then "dies".
        first_transport = InProcessTransport()
        first = Coordinator(
            tasks, first_transport, checkpoint_path=checkpoint, lease_timeout=5.0
        )
        first.publish_pending()
        worker = first_transport.worker()
        run_worker(worker, dataset=tiny_dataset, max_tasks=2, idle_timeout=0.1)
        assert first.drain(idle_timeout=0.2) == 2
        assert checkpoint.exists() and not first.is_complete
        first_transport.close()

        # Second collector: restores, publishes only the missing shards.
        second_transport = InProcessTransport()
        second = Coordinator(
            tasks, second_transport, checkpoint_path=checkpoint, lease_timeout=5.0
        )
        assert second.load_checkpoint() == 2
        assert len(second.pending_shards) == 2
        with local_worker_threads(second_transport, 2, dataset=tiny_dataset):
            second.run(timeout=30.0)
        second_transport.close()

        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, second.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        assert np.array_equal(
            result.distinct_memoized_per_user, serial.distinct_memoized_per_user
        )

    def test_checkpoint_of_other_plan_is_refused(self, tmp_path, tiny_dataset):
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport, checkpoint_path=checkpoint)
        coordinator.absorb(0, run_shard_task(tasks[0], tiny_dataset))
        transport.close()

        other_tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=10)
        other_transport = InProcessTransport()
        other = Coordinator(other_tasks, other_transport, checkpoint_path=checkpoint)
        with pytest.raises(ExperimentError, match="different collection plan"):
            other.load_checkpoint()
        other_transport.close()

    def test_missing_checkpoint_restores_nothing(self, tmp_path, tiny_dataset):
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(
            tasks, transport, checkpoint_path=tmp_path / "absent.npz"
        )
        assert coordinator.load_checkpoint() == 0
        transport.close()


# --------------------------------------------------------------------- #
# Remote workers rebuild datasets from the registry reference
# --------------------------------------------------------------------- #
class TestDatasetRef:
    def test_worker_rebuilds_dataset_from_ref(self):
        from repro.datasets import make_dataset

        dataset = make_dataset("syn", scale=0.02, rng=21)
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, dataset, n_shards=3, rng=9
        )
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, dataset, 3, rng=9)
        transport = InProcessTransport()
        ref = DatasetRef(name="syn", scale=0.02, seed=21)
        coordinator = Coordinator(tasks, transport, dataset_ref=ref)
        coordinator.publish_pending()
        # dataset=None: the worker must reconstruct the workload itself.
        run_worker(transport.worker(), dataset=None, max_tasks=3, idle_timeout=0.5)
        coordinator.drain(idle_timeout=0.5)
        transport.close()
        result = result_from_summaries(
            LONGITUDINAL_SPEC, dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_worker_without_dataset_or_ref_fails_loudly(self, tiny_dataset):
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport)  # no dataset_ref
        coordinator.publish_pending()
        with pytest.raises(TransportError, match="no dataset reference"):
            run_worker(transport.worker(), dataset=None, max_tasks=1, idle_timeout=0.5)
        transport.close()


# --------------------------------------------------------------------- #
# CollectionSpec + serve/work CLI
# --------------------------------------------------------------------- #
class TestCollectionSpec:
    def test_round_trip(self):
        spec = CollectionSpec(
            protocol=ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5),
            dataset="syn",
            dataset_scale=0.05,
            n_shards=4,
            seed=99,
            name="demo",
        )
        assert CollectionSpec.from_json(spec.to_json()) == spec

    def test_rejects_template_without_budget(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="eps_inf"):
            CollectionSpec(protocol=ProtocolSpec(name="L-OSUE"))

    def test_rejects_unknown_fields(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="unknown collection spec"):
            CollectionSpec.from_dict({"protocol": {"name": "L-OSUE"}, "zap": 1})


class TestServeWorkCli:
    def test_serve_with_file_queue_and_cli_worker(self, tmp_path, capsys):
        """serve + work over a spool dir, estimates bit-identical to serial."""
        from repro.cli import main
        from repro.datasets import make_dataset

        spec = CollectionSpec(
            protocol=ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5),
            dataset="syn",
            dataset_scale=0.02,
            n_shards=3,
            seed=20230328,
            name="cli-test",
        )
        spec_path = spec.save(tmp_path / "collection.json")
        queue_dir = tmp_path / "queue"
        estimates_path = tmp_path / "estimates.npz"

        worker = threading.Thread(
            target=main,
            args=(
                ["work", "--queue-dir", str(queue_dir), "--idle-exit", "10"],
            ),
            daemon=True,
        )
        worker.start()
        code = main(
            [
                "serve",
                "--spec", str(spec_path),
                "--transport", "file",
                "--queue-dir", str(queue_dir),
                "--lease-timeout", "10",
                "--save-estimates", str(estimates_path),
                "--timeout", "60",
            ]
        )
        worker.join(timeout=30)
        assert code == 0
        output = capsys.readouterr().out
        assert "collected 3 shards" in output

        dataset = make_dataset("syn", scale=0.02, rng=20230328)
        serial = simulate_protocol_sharded(
            spec.protocol, dataset, n_shards=3, rng=20230328
        )
        with np.load(estimates_path) as archive:
            assert np.array_equal(archive["estimates"], serial.estimates)
            assert float(archive["mse_avg"]) == serial.mse_avg

    def test_serve_with_local_workers_and_tcp(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets import make_dataset

        spec = CollectionSpec(
            protocol=ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5),
            dataset="syn",
            dataset_scale=0.02,
            n_shards=2,
            seed=20230328,
            name="tcp-test",
        )
        spec_path = spec.save(tmp_path / "collection.json")
        estimates_path = tmp_path / "estimates.npz"
        code = main(
            [
                "serve",
                "--spec", str(spec_path),
                "--transport", "tcp",
                "--bind", "127.0.0.1:0",
                "--local-workers", "2",
                "--save-estimates", str(estimates_path),
                "--timeout", "60",
            ]
        )
        assert code == 0
        assert "broker listening" in capsys.readouterr().out
        dataset = make_dataset("syn", scale=0.02, rng=20230328)
        serial = simulate_protocol_sharded(
            spec.protocol, dataset, n_shards=2, rng=20230328
        )
        with np.load(estimates_path) as archive:
            assert np.array_equal(archive["estimates"], serial.estimates)

    def test_serve_requires_queue_dir_for_file_transport(self, tmp_path, capsys):
        from repro.cli import main

        spec = CollectionSpec(
            protocol=ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5),
            dataset="syn",
        )
        spec_path = spec.save(tmp_path / "collection.json")
        code = main(["serve", "--spec", str(spec_path), "--transport", "file"])
        assert code == 2
        assert "--queue-dir" in capsys.readouterr().err
