"""Tests for the distributed collection subsystem.

Covers the wire codec, the three transports (in-process, file spool, TCP
broker) across their modes (blocking vs poll claims, HMAC authentication on
and off), payload tampering and capacity-aware weighted sharding, the
fault-tolerant coordinator — worker crash with lease-expiry requeue,
duplicate summary delivery, out-of-order arrival, vanished-task republish,
coordinator checkpoint/restore — and the end-to-end bit-identity of
``simulate_protocol_sharded(transport=...)`` against the serial path for a
one-shot (single-round) and a longitudinal workload.
"""

import threading
import time

import numpy as np
import pytest

from repro.distributed import (
    AuthenticationError,
    Coordinator,
    DatasetRef,
    FileQueueTransport,
    FileQueueWorker,
    InProcessTransport,
    PayloadAuthenticator,
    SocketTransport,
    SummaryEnvelope,
    TaskEnvelope,
    TransportError,
    authenticator_from_env,
    decode_summary,
    decode_task,
    encode_summary,
    encode_task,
    local_worker_threads,
    run_worker,
)
from repro.exceptions import ExperimentError
from repro.service import CollectorSession
from repro.simulation.runner import (
    make_shard_tasks,
    result_from_summaries,
    run_shard_task,
    shard_boundaries,
    simulate_protocol_sharded,
)
from repro.specs import CollectionSpec, ProtocolSpec

LONGITUDINAL_SPEC = ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5)
ONESHOT_SPEC = ProtocolSpec(name="L-GRR", eps_inf=1.0, alpha=0.5)

AUTH_KEY = PayloadAuthenticator(b"transport-test-secret")
OTHER_KEY = PayloadAuthenticator(b"a-different-secret")

#: Transport/worker configurations the contract suite runs over: the three
#: media, with and without payload authentication, and both socket claim
#: modes.  Each value is ``(transport factory, worker kwargs)``.
TRANSPORT_MODES = {
    "inprocess": (lambda tmp_path: InProcessTransport(), {}),
    "file": (lambda tmp_path: FileQueueTransport(tmp_path / "queue"), {}),
    "file-auth": (
        lambda tmp_path: FileQueueTransport(tmp_path / "queue", auth=AUTH_KEY),
        {},
    ),
    "socket": (lambda tmp_path: SocketTransport(), {}),
    "socket-poll": (lambda tmp_path: SocketTransport(), {"mode": "poll"}),
    "socket-auth": (lambda tmp_path: SocketTransport(auth=AUTH_KEY), {}),
    "socket-auth-poll": (
        lambda tmp_path: SocketTransport(auth=AUTH_KEY),
        {"mode": "poll"},
    ),
}


def _file_transport(tmp_path):
    return FileQueueTransport(tmp_path / "queue")


# --------------------------------------------------------------------- #
# Codec
# --------------------------------------------------------------------- #
class TestCodec:
    def test_task_round_trip(self, tiny_dataset):
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=5)
        ref = DatasetRef(name="syn", scale=0.05, seed=7)
        payload = encode_task(1, tasks[1], ref)
        shard_id, decoded, decoded_ref, plan = decode_task(payload)
        assert shard_id == 1
        assert decoded.spec == tasks[1].spec
        assert (decoded.start, decoded.stop) == (tasks[1].start, tasks[1].stop)
        assert decoded.dataset_name == tiny_dataset.name
        assert decoded_ref == ref
        # The reconstructed seed drives a bit-identical stream.
        a = np.random.default_rng(tasks[1].seed).random(8)
        b = np.random.default_rng(decoded.seed).random(8)
        assert np.array_equal(a, b)

    def test_task_without_dataset_ref(self, tiny_dataset):
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        _, _, ref, _ = decode_task(encode_task(0, task))
        assert ref is None

    def test_summary_round_trip(self, tiny_dataset):
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        summary = run_shard_task(task, tiny_dataset)
        shard_id, decoded, _ = decode_summary(encode_summary(0, summary))
        assert shard_id == 0
        assert np.array_equal(decoded.support_counts, summary.support_counts)
        assert np.array_equal(
            decoded.distinct_memoized_per_user, summary.distinct_memoized_per_user
        )
        assert decoded.n_users == summary.n_users

    def test_decode_rejects_garbage(self):
        with pytest.raises(TransportError, match="malformed task"):
            decode_task(b"not json")
        with pytest.raises(TransportError, match="not a shard task"):
            decode_task(b'{"kind": "something-else"}')
        with pytest.raises(TransportError, match="malformed summary"):
            decode_summary(b"not a zip archive")


# --------------------------------------------------------------------- #
# Transport contract (shared behaviours)
# --------------------------------------------------------------------- #
class TestTransportContract:
    @pytest.fixture(params=sorted(TRANSPORT_MODES))
    def endpoints(self, request, tmp_path):
        """One transport plus a matching worker factory, per mode."""
        factory, worker_kwargs = TRANSPORT_MODES[request.param]
        transport = factory(tmp_path)
        yield transport, (lambda: transport.worker(**worker_kwargs))
        transport.close()

    def test_publish_claim_complete_poll(self, endpoints, tiny_dataset):
        transport, make_worker = endpoints
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        payload = encode_task(0, task)
        transport.publish(TaskEnvelope(shard_id=0, payload=payload))
        worker = make_worker()
        try:
            envelope = worker.claim(timeout=5.0)
            assert envelope is not None and envelope.shard_id == 0
            # Auth wrapping is transparent: endpoints hand out bare payloads.
            assert envelope.payload == payload
            summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
            worker.complete(0, encode_summary(0, summary))
            received = transport.poll_summary(timeout=5.0)
            assert received is not None and received.shard_id == 0
            assert decode_summary(received.payload)[0] == 0
        finally:
            worker.close()

    def test_claim_times_out_when_empty(self, endpoints):
        transport, make_worker = endpoints
        worker = make_worker()
        try:
            assert worker.claim(timeout=0.05) is None
        finally:
            worker.close()

    def test_abandoned_claim_is_reclaimed(self, endpoints, tiny_dataset):
        transport, make_worker = endpoints
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        transport.publish(TaskEnvelope(shard_id=0, payload=encode_task(0, task)))
        doomed = make_worker()
        assert doomed.claim(timeout=5.0) is not None
        # The worker dies without completing; nothing is claimable ...
        second = make_worker()
        try:
            assert second.claim(timeout=0.05) is None
            # ... until the lease expires and the shard is requeued.
            time.sleep(0.05)
            reclaimed = transport.reclaim_expired(lease_timeout=0.01)
            assert reclaimed == [0]
            envelope = second.claim(timeout=5.0)
            assert envelope is not None and envelope.shard_id == 0
        finally:
            doomed.close()
            second.close()

    def test_end_to_end_bit_identity(self, endpoints, tiny_dataset):
        """Every transport mode reproduces the serial estimates bit for bit."""
        transport, make_worker = endpoints
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=9
        )
        coordinator = Coordinator(
            make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=9),
            transport,
            lease_timeout=10.0,
        )
        coordinator.publish_pending()
        worker = make_worker()
        try:
            run_worker(worker, dataset=tiny_dataset, max_tasks=3, idle_timeout=5.0)
        finally:
            worker.close()
        coordinator.drain(idle_timeout=2.0)
        assert coordinator.is_complete
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)


# --------------------------------------------------------------------- #
# Payload authentication
# --------------------------------------------------------------------- #
class TestAuthentication:
    def test_sign_verify_round_trip(self):
        payload = b'{"shard": 1}'
        blob = AUTH_KEY.sign(payload)
        assert blob != payload
        assert AUTH_KEY.verify(blob) == payload

    def test_every_flipped_byte_is_rejected(self):
        """Tampering with any byte of a signed frame — magic, tag or payload
        — must fail verification."""
        blob = AUTH_KEY.sign(b"payload-bytes")
        for position in range(len(blob)):
            tampered = bytearray(blob)
            tampered[position] ^= 0x01
            with pytest.raises(AuthenticationError):
                AUTH_KEY.verify(bytes(tampered))

    def test_unsigned_and_wrong_key_rejected(self):
        with pytest.raises(AuthenticationError, match="not signed"):
            AUTH_KEY.verify(b'{"kind": "repro-shard-task"}')
        with pytest.raises(AuthenticationError, match="does not verify"):
            AUTH_KEY.verify(OTHER_KEY.sign(b"payload"))

    def test_authenticator_from_env(self, monkeypatch):
        assert authenticator_from_env(None) is None
        monkeypatch.delenv("REPRO_TEST_AUTH_KEY", raising=False)
        with pytest.raises(TransportError, match="is not set"):
            authenticator_from_env("REPRO_TEST_AUTH_KEY")
        monkeypatch.setenv("REPRO_TEST_AUTH_KEY", "sekrit")
        auth = authenticator_from_env("REPRO_TEST_AUTH_KEY")
        assert auth.verify(auth.sign(b"x")) == b"x"

    def test_tampered_summary_file_rejected_and_counted(
        self, queue_dir, tiny_dataset
    ):
        """Flip one byte of a signed summary on disk: the scan rejects it,
        counts it and the collection recovers through a clean redelivery."""
        transport = FileQueueTransport(queue_dir, auth=AUTH_KEY)
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        transport.publish(TaskEnvelope(shard_id=0, payload=encode_task(0, task)))
        worker = transport.worker()
        envelope = worker.claim(timeout=5.0)
        summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
        worker.complete(0, encode_summary(0, summary))

        summary_path = queue_dir / "summaries" / "summary-000000.npz"
        tampered = bytearray(summary_path.read_bytes())
        tampered[len(tampered) // 2] ^= 0xFF
        summary_path.write_bytes(bytes(tampered))

        assert transport.poll_summary(timeout=0.2) is None
        assert transport.rejected == 1
        # Each bad file version is counted once, not once per poll.
        assert transport.poll_summary(timeout=0.2) is None
        assert transport.rejected == 1

        # An honest worker redelivers; the replacement file verifies.
        worker.complete(0, encode_summary(0, summary))
        received = transport.poll_summary(timeout=5.0)
        assert received is not None and received.shard_id == 0
        assert decode_summary(received.payload)[0] == 0

    def test_tampered_task_file_rejected_and_republished(
        self, queue_dir, tiny_dataset
    ):
        """Flip one byte of a signed task file: the worker refuses to execute
        it, destroys the claim, and the coordinator republishes its authentic
        copy — the run completes bit-identical, nothing crashes."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=9
        )
        transport = FileQueueTransport(queue_dir, auth=AUTH_KEY)
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=9)
        coordinator = Coordinator(
            tasks, transport, lease_timeout=0.5, poll_interval=0.02
        )
        coordinator.publish_pending()
        task_path = queue_dir / "tasks" / "task-000001.json"
        tampered = bytearray(task_path.read_bytes())
        tampered[40] ^= 0xFF
        task_path.write_bytes(bytes(tampered))

        with local_worker_threads(transport, 2, dataset=tiny_dataset) as pool:
            coordinator.run(timeout=60.0, abort=pool.failure_reason)
        assert coordinator.republished >= 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_summary_tampered_after_delivery_is_republished(
        self, queue_dir, tiny_dataset
    ):
        """The nastiest tamper timing: the worker already delivered (its
        claim is unlinked) and *then* the spooled summary is corrupted.
        With no claim to lease-expire, only the missing-task republish can
        recover the shard — the run must still complete bit-identical."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=2, rng=9
        )
        transport = FileQueueTransport(queue_dir, auth=AUTH_KEY)
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        coordinator = Coordinator(
            tasks, transport, lease_timeout=0.5, poll_interval=0.02
        )
        coordinator.publish_pending()
        worker = transport.worker()
        envelope = worker.claim(timeout=5.0)
        summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
        worker.complete(envelope.shard_id, encode_summary(envelope.shard_id, summary))
        summary_path = (
            queue_dir / "summaries" / f"summary-{envelope.shard_id:06d}.npz"
        )
        tampered = bytearray(summary_path.read_bytes())
        tampered[-1] ^= 0xFF
        summary_path.write_bytes(bytes(tampered))

        with local_worker_threads(transport, 1, dataset=tiny_dataset) as pool:
            coordinator.run(timeout=60.0, abort=pool.failure_reason)
        assert transport.rejected >= 1
        assert coordinator.republished >= 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_socket_rejects_mismatched_key_and_unsigned_summaries(
        self, tiny_dataset
    ):
        """A worker holding the wrong key cannot feed the broker, and an
        unsigned summary is dropped; the honest fleet still completes."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=2, rng=9
        )
        transport = SocketTransport(auth=AUTH_KEY)
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        coordinator = Coordinator(
            tasks, transport, lease_timeout=0.5, poll_interval=0.02
        )
        coordinator.publish_pending()

        host, port = transport.address
        from repro.distributed import SocketWorker

        # Wrong key: every task payload fails verification client-side.
        intruder = SocketWorker(host, port, auth=OTHER_KEY, mode="poll")
        assert intruder.claim(timeout=0.3) is None
        assert intruder.rejected >= 1
        # Unsigned summary (auth=None worker sends bare payloads): dropped.
        forged = encode_summary(0, run_shard_task(tasks[0], tiny_dataset))
        unsigned = SocketWorker(host, port, mode="poll")
        unsigned.complete(0, forged)
        intruder.close()

        with local_worker_threads(transport, 1, dataset=tiny_dataset) as pool:
            coordinator.run(timeout=60.0, abort=pool.failure_reason)
        unsigned.close()
        transport.close()
        assert transport.rejected >= 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)


# --------------------------------------------------------------------- #
# Blocking broker waits
# --------------------------------------------------------------------- #
class TestBlockingBroker:
    def test_idle_blocking_worker_sends_zero_frames(self):
        """After parking, an idle blocking worker sends zero READY frames
        while the queue is empty — however often claim() times out."""
        transport = SocketTransport()
        worker = transport.worker()
        try:
            assert worker.claim(timeout=0.05) is None  # parks: one frame
            parked_frames = worker.claim_frames_sent
            assert parked_frames == 1
            for _ in range(20):
                assert worker.claim(timeout=0.01) is None
            assert worker.claim_frames_sent - parked_frames == 0
        finally:
            worker.close()
            transport.close()

    def test_poll_worker_keeps_sending_frames(self):
        """The --poll compatibility mode still does READY/IDLE round-trips."""
        transport = SocketTransport()
        worker = transport.worker(mode="poll")
        try:
            assert worker.claim(timeout=0.3) is None
            assert worker.claim_frames_sent > 1
        finally:
            worker.close()
            transport.close()

    def test_parked_worker_is_woken_by_publish(self, tiny_dataset):
        """A publish pushes the task to a parked worker immediately."""
        transport = SocketTransport()
        worker = transport.worker()
        try:
            assert worker.claim(timeout=0.05) is None  # park
            task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
            claimed = {}

            def wait_for_task():
                claimed["envelope"] = worker.claim(timeout=10.0)

            thread = threading.Thread(target=wait_for_task)
            thread.start()
            time.sleep(0.05)
            transport.publish(
                TaskEnvelope(shard_id=0, payload=encode_task(0, task))
            )
            thread.join(timeout=10.0)
            assert not thread.is_alive()
            envelope = claimed["envelope"]
            assert envelope is not None and envelope.shard_id == 0
            # The push consumed the original READY: still exactly one frame.
            assert worker.claim_frames_sent == 1
        finally:
            worker.close()
            transport.close()

    def test_parked_worker_is_woken_by_shutdown(self):
        transport = SocketTransport()
        worker = transport.worker()
        assert worker.claim(timeout=0.05) is None  # park
        released = {}

        def wait_for_shutdown():
            released["claim"] = worker.claim(timeout=10.0)

        thread = threading.Thread(target=wait_for_shutdown)
        thread.start()
        time.sleep(0.05)
        transport.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert released["claim"] is None
        assert worker.saw_shutdown
        worker.close()


# --------------------------------------------------------------------- #
# Weighted sharding and capacity hints
# --------------------------------------------------------------------- #
class TestWeightedSharding:
    def test_boundaries_track_weights(self):
        boundaries = shard_boundaries(100, 4, weights=[1.0, 1.0, 1.0, 1.0])
        assert np.array_equal(boundaries, [0, 25, 50, 75, 100])
        boundaries = shard_boundaries(100, 2, weights=[3.0, 1.0])
        assert np.array_equal(boundaries, [0, 75, 100])

    def test_every_shard_keeps_at_least_one_user(self):
        """Extreme weight ratios must not round a shard down to empty."""
        boundaries = shard_boundaries(10, 3, weights=[1e6, 1.0, 1e6])
        assert np.all(np.diff(boundaries) >= 1)
        assert boundaries[0] == 0 and boundaries[-1] == 10
        boundaries = shard_boundaries(5, 5, weights=[1e9, 1.0, 1.0, 1.0, 1e9])
        assert np.array_equal(np.diff(boundaries), [1, 1, 1, 1, 1])

    def test_invalid_weights_rejected(self):
        with pytest.raises(ExperimentError, match="one weight per shard"):
            shard_boundaries(10, 3, weights=[1.0, 2.0])
        with pytest.raises(ExperimentError, match="positive and finite"):
            shard_boundaries(10, 2, weights=[1.0, 0.0])
        with pytest.raises(ExperimentError, match="positive and finite"):
            shard_boundaries(10, 2, weights=[1.0, float("nan")])

    @pytest.mark.parametrize(
        "spec_name", ["longitudinal", "oneshot"], ids=["L-OSUE", "L-GRR-oneshot"]
    )
    @pytest.mark.parametrize("weights", [(3.0, 1.0, 2.0, 0.5), (1.0, 10.0, 1.0, 1.0)])
    def test_weighted_split_bit_identical_to_serial(
        self, spec_name, weights, tiny_dataset, oneshot_dataset
    ):
        """Acceptance: any weight vector, distributed == serial, bit for bit."""
        if spec_name == "longitudinal":
            spec, dataset = LONGITUDINAL_SPEC, tiny_dataset
        else:
            spec, dataset = ONESHOT_SPEC, oneshot_dataset
        serial = simulate_protocol_sharded(
            spec, dataset, n_shards=4, rng=9, weights=weights
        )
        transport = SocketTransport()
        try:
            distributed = simulate_protocol_sharded(
                spec, dataset, n_shards=4, rng=9, n_workers=2,
                transport=transport, weights=weights,
            )
        finally:
            transport.close()
        assert np.array_equal(distributed.estimates, serial.estimates)
        assert distributed.mse_avg == serial.mse_avg
        assert distributed.eps_avg == serial.eps_avg

    def test_broker_hands_biggest_shard_to_highest_capacity(self):
        """Capacity hints steer assignment: the fleet's fastest claimant
        receives the most expensive pending shard, others the cheapest."""
        transport = SocketTransport()
        try:
            for shard_id, cost in ((0, 10.0), (1, 30.0), (2, 20.0)):
                transport.publish(
                    TaskEnvelope(shard_id=shard_id, payload=b"x", cost=cost)
                )
            fast = transport.worker(capacity=8)
            slow = transport.worker(capacity=1)
            try:
                assert fast.claim(timeout=5.0).shard_id == 1  # cost 30
                assert slow.claim(timeout=5.0).shard_id == 0  # cost 10
                hints = set(transport.capacity_hints().values())
                assert hints == {8, 1}
                assert fast.claim(timeout=5.0).shard_id == 2  # the remainder
            finally:
                fast.close()
                slow.close()
        finally:
            transport.close()

    def test_heterogeneous_capacity_fleet_bit_identical(self, tiny_dataset):
        """A weighted plan drained by workers of different capacities still
        reproduces the serial estimates (assignment never affects results)."""
        weights = (4.0, 1.0, 1.0, 2.0)
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9, weights=weights
        )
        transport = SocketTransport()
        tasks = make_shard_tasks(
            LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9, weights=weights
        )
        coordinator = Coordinator(tasks, transport, lease_timeout=10.0)
        coordinator.publish_pending()
        threads = []
        for capacity in (4, 1):
            endpoint = transport.worker(capacity=capacity)

            def drain(endpoint=endpoint):
                try:
                    run_worker(
                        endpoint, dataset=tiny_dataset,
                        idle_timeout=2.0, poll_interval=0.05,
                    )
                finally:
                    endpoint.close()

            threads.append(threading.Thread(target=drain))
        for thread in threads:
            thread.start()
        coordinator.run(timeout=60.0)
        for thread in threads:
            thread.join(timeout=10.0)
        transport.close()
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)


class TestFileQueueDetails:
    def test_concurrent_workers_claim_distinct_tasks(self, tmp_path, tiny_dataset):
        transport = _file_transport(tmp_path)
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=5)
        for shard_id, task in enumerate(tasks):
            transport.publish(
                TaskEnvelope(shard_id=shard_id, payload=encode_task(shard_id, task))
            )
        first = FileQueueWorker(tmp_path / "queue")
        second = FileQueueWorker(tmp_path / "queue")
        claimed = {first.claim(0.1).shard_id, second.claim(0.1).shard_id,
                   first.claim(0.1).shard_id, second.claim(0.1).shard_id}
        assert claimed == {0, 1, 2, 3}

    def test_staged_files_are_invisible_to_claims(self, tmp_path, tiny_dataset):
        """A torn (half-written) publish must never be claimable."""
        transport = _file_transport(tmp_path)
        queue_dir = tmp_path / "queue"
        (queue_dir / "tmp" / "task-000000.json.999.deadbeef").write_bytes(b"{half")
        worker = FileQueueWorker(queue_dir)
        assert worker.claim(timeout=0.05) is None

    def test_skip_scan_distrusts_fresh_and_stale_mtimes(self):
        """The mtime gate only skips listings for an unchanged mtime that is
        old enough to be past coarse-timestamp ambiguity, and never for
        longer than the forced-rescan interval."""
        from repro.distributed.file_queue import (
            _DIR_MTIME_TRUST_NS,
            _FORCED_RESCAN_NS,
            _skip_scan,
        )

        now = time.time_ns()
        old = now - 10 * _DIR_MTIME_TRUST_NS
        assert _skip_scan(old, old, now)  # unchanged, old, recently scanned
        assert not _skip_scan(old, old + 1, now)  # the directory changed
        # An unchanged-but-fresh mtime may hide a rename in the same coarse
        # filesystem timestamp tick: scan anyway.
        assert not _skip_scan(now, now, now)
        # Even a trusted-looking mtime never suppresses scans indefinitely.
        assert not _skip_scan(old, old, now - 2 * _FORCED_RESCAN_NS)

    def test_overwritten_summary_is_redelivered(self, queue_dir, tiny_dataset):
        """The snapshot diff keys on (mtime, size): rewriting a summary file
        (fresh result over a stale spool) must deliver the new version."""
        transport = FileQueueTransport(queue_dir)
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        transport.publish(TaskEnvelope(shard_id=0, payload=encode_task(0, task)))
        worker = transport.worker()
        envelope = worker.claim(timeout=5.0)
        summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
        worker.complete(0, encode_summary(0, summary, plan="old"))
        first = transport.poll_summary(timeout=5.0)
        assert decode_summary(first.payload)[2] == "old"
        # An idle spool polls to nothing (the mtime gate short-circuits)...
        assert transport.poll_summary(timeout=0.1) is None
        # ... until the file is replaced, which must be picked up again.
        worker.complete(0, encode_summary(0, summary, plan="new"))
        second = transport.poll_summary(timeout=5.0)
        assert second is not None and decode_summary(second.payload)[2] == "new"

    def test_missing_tasks_reports_only_vanished_shards(
        self, queue_dir, tiny_dataset
    ):
        """A shard is 'missing' only when it is in none of tasks/, claims/
        or summaries/ — claimed and completed shards are accounted for."""
        transport = FileQueueTransport(queue_dir)
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=5)
        for shard_id, task in enumerate(tasks):
            transport.publish(
                TaskEnvelope(shard_id=shard_id, payload=encode_task(shard_id, task))
            )
        assert transport.missing_tasks([0, 1, 2]) == []
        worker = transport.worker()
        claimed = worker.claim(timeout=5.0)  # shard 0 moves to claims/
        assert claimed.shard_id == 0
        (queue_dir / "tasks" / "task-000001.json").unlink()  # shard 1 vanishes
        assert transport.missing_tasks([0, 1, 2]) == [1]
        summary = run_shard_task(decode_task(claimed.payload)[1], tiny_dataset)
        worker.complete(0, encode_summary(0, summary))  # shard 0 completes
        assert transport.missing_tasks([0, 1, 2]) == [1]

    def test_completed_shard_claim_is_dropped_not_requeued(
        self, tmp_path, tiny_dataset
    ):
        """A claim whose summary already landed must not resurrect the task."""
        transport = _file_transport(tmp_path)
        task = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=5)[0]
        transport.publish(TaskEnvelope(shard_id=0, payload=encode_task(0, task)))
        worker = transport.worker()
        envelope = worker.claim(timeout=5.0)
        summary = run_shard_task(decode_task(envelope.payload)[1], tiny_dataset)
        payload = encode_summary(0, summary)
        # Simulate "summary delivered but claim file survived" (a crash
        # between the summary rename and the claim unlink).
        (queue_layout := transport._layout).summaries.joinpath(
            queue_layout.summary_name(0)
        ).write_bytes(payload)
        assert transport.reclaim_expired(lease_timeout=0.0) == []
        assert worker.claim(timeout=0.05) is None


# --------------------------------------------------------------------- #
# End-to-end bit-identity over every transport
# --------------------------------------------------------------------- #
class TestBitIdentity:
    @pytest.fixture(params=["inprocess", "file", "socket"])
    def make_transport(self, request, tmp_path):
        def factory():
            if request.param == "inprocess":
                return InProcessTransport()
            if request.param == "file":
                return FileQueueTransport(tmp_path / f"queue-{time.monotonic_ns()}")
            return SocketTransport()

        return factory

    @pytest.mark.parametrize(
        "spec_name", ["longitudinal", "oneshot"], ids=["L-OSUE", "L-GRR-oneshot"]
    )
    def test_transport_reproduces_serial_estimates(
        self, make_transport, spec_name, tiny_dataset, oneshot_dataset
    ):
        if spec_name == "longitudinal":
            spec, dataset = LONGITUDINAL_SPEC, tiny_dataset
        else:
            spec, dataset = ONESHOT_SPEC, oneshot_dataset
        serial = simulate_protocol_sharded(spec, dataset, n_shards=4, rng=9)
        transport = make_transport()
        try:
            distributed = simulate_protocol_sharded(
                spec, dataset, n_shards=4, rng=9, n_workers=2, transport=transport
            )
        finally:
            transport.close()
        assert np.array_equal(distributed.estimates, serial.estimates)
        assert np.array_equal(
            distributed.distinct_memoized_per_user, serial.distinct_memoized_per_user
        )
        assert distributed.mse_avg == serial.mse_avg
        assert distributed.eps_avg == serial.eps_avg

    def test_transport_requires_spec(self, tiny_dataset):
        from repro.registry import build_protocol

        protocol = build_protocol(LONGITUDINAL_SPEC.at(k=tiny_dataset.k))
        transport = InProcessTransport()
        try:
            with pytest.raises(ExperimentError, match="requires a ProtocolSpec"):
                simulate_protocol_sharded(
                    protocol, tiny_dataset, n_shards=2, rng=9, transport=transport
                )
        finally:
            transport.close()


# --------------------------------------------------------------------- #
# Failure modes
# --------------------------------------------------------------------- #
class TestFailureModes:
    @pytest.mark.parametrize("kind", ["inprocess", "file", "socket"])
    def test_worker_crash_lease_expiry_requeue(self, kind, tmp_path, tiny_dataset):
        """A claimed-then-abandoned shard is requeued and the final estimates
        are bit-identical to the serial run — on every transport."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9
        )
        if kind == "inprocess":
            transport = InProcessTransport()
        elif kind == "file":
            transport = _file_transport(tmp_path)
        else:
            transport = SocketTransport()
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)
        coordinator = Coordinator(tasks, transport, lease_timeout=0.1)
        coordinator.publish_pending()
        # A worker claims a shard and dies without completing it.  (Keep the
        # endpoint open: the socket broker would requeue instantly on
        # disconnect, and this test exercises the lease-timeout path.)
        doomed = transport.worker()
        assert doomed.claim(timeout=5.0) is not None
        with local_worker_threads(transport, 1, dataset=tiny_dataset):
            coordinator.run(timeout=30.0)
        doomed.close()
        transport.close()
        assert coordinator.requeued >= 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        assert result.eps_avg == serial.eps_avg

    def test_duplicate_summary_delivery_is_idempotent(self, tiny_dataset):
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=9
        )
        transport = InProcessTransport()
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=9)
        session = CollectorSession(
            LONGITUDINAL_SPEC.at(k=tiny_dataset.k), n_rounds=tiny_dataset.n_rounds
        )
        coordinator = Coordinator(tasks, transport, session=session)
        coordinator.publish_pending()
        worker = transport.worker()
        for _ in range(3):
            envelope = worker.claim(timeout=1.0)
            _, task, _, plan = decode_task(envelope.payload)
            payload = encode_summary(
                envelope.shard_id, run_shard_task(task, tiny_dataset)
            )
            worker.complete(envelope.shard_id, payload)
            if envelope.shard_id == 1:
                # At-least-once transport: the same summary lands twice.
                transport._summaries.append(
                    SummaryEnvelope(shard_id=1, payload=payload)
                )
        coordinator.run(timeout=30.0)
        transport.close()
        assert coordinator.duplicates == 1
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        # The streamed session saw each shard exactly once: with the full
        # population credited per round, its estimates equal the batch path.
        assert np.array_equal(
            session.estimates(), serial.estimates
        )

    def test_collector_restart_over_persistent_queue_dedups(
        self, tmp_path, tiny_dataset
    ):
        """A restarted collector re-scans the spool and sees every summary
        again; the checkpoint + shard-id dedup must absorb none twice."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=9
        )
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=9)

        first = Coordinator(
            tasks, _file_transport(tmp_path), checkpoint_path=checkpoint
        )
        first.publish_pending()
        # Workers spool all three summaries, but the collector "crashes"
        # after absorbing (and checkpointing) only two of them.
        run_worker(
            first.transport.worker(), dataset=tiny_dataset,
            max_tasks=3, idle_timeout=0.5,
        )
        assert first.step(timeout=1.0) is True
        assert first.step(timeout=1.0) is True
        assert not first.is_complete
        first.transport.close()

        # Fresh coordinator over the SAME queue directory: every spooled
        # summary is re-delivered — two are duplicates, one is new.
        second = Coordinator(
            tasks, _file_transport(tmp_path), checkpoint_path=checkpoint
        )
        assert second.load_checkpoint() == 2
        assert second.drain(idle_timeout=0.2) == 1
        second.transport.close()
        assert second.is_complete
        assert second.duplicates == 2
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, second.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_stale_summaries_from_another_collection_are_dropped(
        self, tmp_path, tiny_dataset
    ):
        """Reusing a queue dir must not absorb summaries of a previous
        (different-spec) collection: workers echo the plan fingerprint and
        the coordinator drops foreign summaries."""
        # First collection fills queue/summaries with its results.
        old = Coordinator(
            make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=1),
            _file_transport(tmp_path),
        )
        with local_worker_threads(old.transport, 1, dataset=tiny_dataset):
            old.run(timeout=30.0)
        old.transport.close()

        # Second collection, SAME queue dir, different seed (=> different
        # plan, identical shard layout — the dangerous case).
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=3, rng=2
        )
        new = Coordinator(
            make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 3, rng=2),
            _file_transport(tmp_path),
            lease_timeout=5.0,
        )
        with local_worker_threads(new.transport, 1, dataset=tiny_dataset):
            new.run(timeout=30.0)
        new.transport.close()
        assert new.foreign == 3  # the old spool re-delivered, all dropped
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, new.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_coordinator_aborts_when_all_local_workers_die(self, tiny_dataset):
        """A dead worker fleet must abort the run, not hang it forever."""
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport, lease_timeout=0.1)

        def poisoned_run_shard(*args, **kwargs):
            raise RuntimeError("worker exploded")

        import repro.distributed.worker as worker_module

        original = worker_module.run_shard_task
        worker_module.run_shard_task = poisoned_run_shard
        try:
            with pytest.raises((ExperimentError, RuntimeError), match="exploded|aborted"):
                with local_worker_threads(transport, 1, dataset=tiny_dataset) as pool:
                    coordinator.run(timeout=30.0, abort=pool.failure_reason)
        finally:
            worker_module.run_shard_task = original
            transport.close()

    def test_out_of_order_arrival(self, tiny_dataset):
        """Summaries absorbed in reverse order still merge bit-identically."""
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9
        )
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)
        transport = InProcessTransport()
        session = CollectorSession(
            LONGITUDINAL_SPEC.at(k=tiny_dataset.k), n_rounds=tiny_dataset.n_rounds
        )
        coordinator = Coordinator(tasks, transport, session=session)
        for shard_id in reversed(range(4)):
            coordinator.absorb(shard_id, run_shard_task(tasks[shard_id], tiny_dataset))
        transport.close()
        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        assert np.array_equal(
            result.distinct_memoized_per_user, serial.distinct_memoized_per_user
        )
        assert np.array_equal(session.estimates(), serial.estimates)

    def test_absorb_rejects_unknown_shard_and_wrong_population(self, tiny_dataset):
        from repro.simulation.sinks import ShardSummary

        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport)
        summary = run_shard_task(tasks[0], tiny_dataset)
        with pytest.raises(TransportError, match="unknown shard"):
            coordinator.absorb(7, summary)
        wrong_population = ShardSummary(
            support_counts=summary.support_counts,
            distinct_memoized_per_user=np.zeros(summary.n_users + 1, dtype=np.int64),
            n_users=summary.n_users + 1,
        )
        with pytest.raises(TransportError, match="users, expected"):
            coordinator.absorb(1, wrong_population)
        transport.close()


# --------------------------------------------------------------------- #
# Coordinator checkpoint / restore
# --------------------------------------------------------------------- #
class TestCoordinatorCheckpoint:
    def test_killed_collector_resumes_bit_identical(self, tmp_path, tiny_dataset):
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, tiny_dataset, n_shards=4, rng=9
        )
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)

        # First collector: absorbs two shards, checkpoints, then "dies".
        first_transport = InProcessTransport()
        first = Coordinator(
            tasks, first_transport, checkpoint_path=checkpoint, lease_timeout=5.0
        )
        first.publish_pending()
        worker = first_transport.worker()
        run_worker(worker, dataset=tiny_dataset, max_tasks=2, idle_timeout=0.1)
        assert first.drain(idle_timeout=0.2) == 2
        assert checkpoint.exists() and not first.is_complete
        first_transport.close()

        # Second collector: restores, publishes only the missing shards.
        second_transport = InProcessTransport()
        second = Coordinator(
            tasks, second_transport, checkpoint_path=checkpoint, lease_timeout=5.0
        )
        assert second.load_checkpoint() == 2
        assert len(second.pending_shards) == 2
        with local_worker_threads(second_transport, 2, dataset=tiny_dataset):
            second.run(timeout=30.0)
        second_transport.close()

        result = result_from_summaries(
            LONGITUDINAL_SPEC, tiny_dataset, second.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)
        assert np.array_equal(
            result.distinct_memoized_per_user, serial.distinct_memoized_per_user
        )

    def test_checkpoint_of_other_plan_is_refused(self, tmp_path, tiny_dataset):
        checkpoint = tmp_path / "coordinator.npz"
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport, checkpoint_path=checkpoint)
        coordinator.absorb(0, run_shard_task(tasks[0], tiny_dataset))
        transport.close()

        other_tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 4, rng=10)
        other_transport = InProcessTransport()
        other = Coordinator(other_tasks, other_transport, checkpoint_path=checkpoint)
        with pytest.raises(ExperimentError, match="different collection plan"):
            other.load_checkpoint()
        other_transport.close()

    def test_missing_checkpoint_restores_nothing(self, tmp_path, tiny_dataset):
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(
            tasks, transport, checkpoint_path=tmp_path / "absent.npz"
        )
        assert coordinator.load_checkpoint() == 0
        transport.close()


# --------------------------------------------------------------------- #
# Remote workers rebuild datasets from the registry reference
# --------------------------------------------------------------------- #
class TestDatasetRef:
    def test_worker_rebuilds_dataset_from_ref(self):
        from repro.datasets import make_dataset

        dataset = make_dataset("syn", scale=0.02, rng=21)
        serial = simulate_protocol_sharded(
            LONGITUDINAL_SPEC, dataset, n_shards=3, rng=9
        )
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, dataset, 3, rng=9)
        transport = InProcessTransport()
        ref = DatasetRef(name="syn", scale=0.02, seed=21)
        coordinator = Coordinator(tasks, transport, dataset_ref=ref)
        coordinator.publish_pending()
        # dataset=None: the worker must reconstruct the workload itself.
        run_worker(transport.worker(), dataset=None, max_tasks=3, idle_timeout=0.5)
        coordinator.drain(idle_timeout=0.5)
        transport.close()
        result = result_from_summaries(
            LONGITUDINAL_SPEC, dataset, coordinator.ordered_summaries()
        )
        assert np.array_equal(result.estimates, serial.estimates)

    def test_worker_without_dataset_or_ref_fails_loudly(self, tiny_dataset):
        tasks = make_shard_tasks(LONGITUDINAL_SPEC, tiny_dataset, 2, rng=9)
        transport = InProcessTransport()
        coordinator = Coordinator(tasks, transport)  # no dataset_ref
        coordinator.publish_pending()
        with pytest.raises(TransportError, match="no dataset reference"):
            run_worker(transport.worker(), dataset=None, max_tasks=1, idle_timeout=0.5)
        transport.close()


# --------------------------------------------------------------------- #
# CollectionSpec + serve/work CLI
# --------------------------------------------------------------------- #
class TestCollectionSpec:
    def test_round_trip(self):
        spec = CollectionSpec(
            protocol=ProtocolSpec(name="L-OSUE", eps_inf=2.0, alpha=0.5),
            dataset="syn",
            dataset_scale=0.05,
            n_shards=4,
            seed=99,
            name="demo",
        )
        assert CollectionSpec.from_json(spec.to_json()) == spec

    def test_rejects_template_without_budget(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="eps_inf"):
            CollectionSpec(protocol=ProtocolSpec(name="L-OSUE"))

    def test_rejects_unknown_fields(self):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError, match="unknown collection spec"):
            CollectionSpec.from_dict({"protocol": {"name": "L-OSUE"}, "zap": 1})


class TestServeWorkCli:
    def test_serve_with_file_queue_and_cli_worker(
        self, tmp_path, capsys, write_collection_spec, queue_dir
    ):
        """serve + work over a spool dir, estimates bit-identical to serial."""
        from repro.cli import main
        from repro.datasets import make_dataset

        spec, spec_path = write_collection_spec(name="cli-test")
        estimates_path = tmp_path / "estimates.npz"

        worker = threading.Thread(
            target=main,
            args=(
                ["work", "--queue-dir", str(queue_dir), "--idle-exit", "10"],
            ),
            daemon=True,
        )
        worker.start()
        code = main(
            [
                "serve",
                "--spec", str(spec_path),
                "--transport", "file",
                "--queue-dir", str(queue_dir),
                "--lease-timeout", "10",
                "--save-estimates", str(estimates_path),
                "--timeout", "60",
            ]
        )
        worker.join(timeout=30)
        assert code == 0
        output = capsys.readouterr().out
        assert "collected 3 shards" in output

        dataset = make_dataset("syn", scale=0.02, rng=spec.seed)
        serial = simulate_protocol_sharded(
            spec.protocol, dataset, n_shards=3, rng=spec.seed
        )
        with np.load(estimates_path) as archive:
            assert np.array_equal(archive["estimates"], serial.estimates)
            assert float(archive["mse_avg"]) == serial.mse_avg

    def test_serve_publish_dataset_and_worker_attach(
        self, tmp_path, capsys, write_collection_spec, queue_dir
    ):
        """serve --publish-dataset shares the dataset over shm; a worker
        started with --attach-dataset maps it instead of rebuilding it, and
        the estimates stay bit-identical to the serial path."""
        import re

        from repro.cli import main
        from repro.datasets import make_dataset
        from repro.simulation.shm import SharedDatasetBuffer

        spec, spec_path = write_collection_spec(name="shm-test")
        estimates_path = tmp_path / "estimates.npz"

        # The worker needs the block name serve prints, so publish a copy
        # up front for the worker and let serve publish its own: both map
        # the same bytes, so attaching to either is equivalent.  (A shell
        # user would copy the name from serve's stdout instead.)
        dataset = make_dataset(spec.dataset, scale=spec.dataset_scale, rng=spec.seed)
        with SharedDatasetBuffer.publish(dataset) as buffer:
            worker = threading.Thread(
                target=main,
                args=(
                    [
                        "work",
                        "--queue-dir", str(queue_dir),
                        "--idle-exit", "10",
                        "--attach-dataset", buffer.name,
                    ],
                ),
                daemon=True,
            )
            worker.start()
            code = main(
                [
                    "serve",
                    "--spec", str(spec_path),
                    "--transport", "file",
                    "--queue-dir", str(queue_dir),
                    "--lease-timeout", "10",
                    "--save-estimates", str(estimates_path),
                    "--timeout", "60",
                    "--publish-dataset",
                ]
            )
            worker.join(timeout=30)
        assert code == 0
        output = capsys.readouterr().out
        assert re.search(r"dataset published as shared block \S+", output)
        assert "dataset attached from shared block" in output
        assert "collected 3 shards" in output

        serial = simulate_protocol_sharded(
            spec.protocol, dataset, n_shards=3, rng=spec.seed
        )
        with np.load(estimates_path) as archive:
            assert np.array_equal(archive["estimates"], serial.estimates)

    def test_serve_with_local_workers_and_tcp(
        self, tmp_path, capsys, write_collection_spec
    ):
        from repro.cli import main
        from repro.datasets import make_dataset

        spec, spec_path = write_collection_spec(name="tcp-test", n_shards=2)
        estimates_path = tmp_path / "estimates.npz"
        code = main(
            [
                "serve",
                "--spec", str(spec_path),
                "--transport", "tcp",
                "--bind", "127.0.0.1:0",
                "--local-workers", "2",
                "--save-estimates", str(estimates_path),
                "--timeout", "60",
            ]
        )
        assert code == 0
        assert "broker listening" in capsys.readouterr().out
        dataset = make_dataset("syn", scale=0.02, rng=spec.seed)
        serial = simulate_protocol_sharded(
            spec.protocol, dataset, n_shards=2, rng=spec.seed
        )
        with np.load(estimates_path) as archive:
            assert np.array_equal(archive["estimates"], serial.estimates)

    def test_serve_checkpoint_store_restores_completed_collection(
        self, tmp_path, capsys, write_collection_spec
    ):
        """serve --checkpoint-store appends one row per absorbed shard; a
        restarted service restores every summary from the store and
        completes without any workers at all."""
        from repro.cli import main
        from repro.store import make_backend

        spec, spec_path = write_collection_spec(name="ckpt-store-test", n_shards=2)
        store_dir = tmp_path / "ckpt"
        base = [
            "serve",
            "--spec", str(spec_path),
            "--transport", "tcp",
            "--bind", "127.0.0.1:0",
            "--timeout", "60",
            "--checkpoint-store", str(store_dir),
        ]
        assert main(base + ["--local-workers", "2"]) == 0
        assert "collected 2 shards" in capsys.readouterr().out
        with make_backend("sqlite", store_dir) as store:
            rows = store.load_rows(f"{spec.name}_checkpoint")
        assert sorted(int(row["shard_id"]) for row in rows) == [0, 1]

        assert main(base + ["--local-workers", "0"]) == 0
        output = capsys.readouterr().out
        assert (
            f"restored 2 shard summaries from the sqlite store at {store_dir}"
            in output
        )
        assert "collected 2 shards" in output

    def test_authenticated_tcp_serve_and_work(
        self, tmp_path, capsys, monkeypatch, write_collection_spec
    ):
        """An HMAC-authenticated weighted TCP collection: an external-style
        CLI worker with the matching key drains a broker whose spec names
        the key's environment variable; estimates stay bit-identical."""
        import re

        from repro.cli import main, run_serve, build_parser
        from repro.datasets import make_dataset

        monkeypatch.setenv("REPRO_COLLECTION_KEY", "cli-shared-secret")
        spec, spec_path = write_collection_spec(
            name="auth-tcp-test",
            n_shards=3,
            shard_weights=(2.0, 1.0, 3.0),
            auth_key_env="REPRO_COLLECTION_KEY",
        )
        estimates_path = tmp_path / "estimates.npz"

        # serve in a thread so a CLI worker can connect to the printed port.
        serve_args = build_parser().parse_args(
            [
                "serve",
                "--spec", str(spec_path),
                "--transport", "tcp",
                "--bind", "127.0.0.1:0",
                "--lease-timeout", "10",
                "--save-estimates", str(estimates_path),
                "--timeout", "60",
            ]
        )
        outcome = {}

        def serve():
            outcome["code"] = run_serve(serve_args)

        serve_thread = threading.Thread(target=serve, daemon=True)
        serve_thread.start()
        address = None
        deadline = time.monotonic() + 10.0
        while address is None and time.monotonic() < deadline:
            match = re.search(
                r"broker listening on ([\d.]+:\d+)", capsys.readouterr().out
            )
            if match:
                address = match.group(1)
            else:
                time.sleep(0.05)
        assert address is not None, "broker address was never printed"
        code = main(
            [
                "work",
                "--connect", address,
                "--auth-key-env", "REPRO_COLLECTION_KEY",
                "--capacity", "4",
                "--idle-exit", "5",
            ]
        )
        serve_thread.join(timeout=60.0)
        assert code == 0 and outcome.get("code") == 0

        dataset = make_dataset("syn", scale=0.02, rng=spec.seed)
        serial = simulate_protocol_sharded(
            spec.protocol, dataset, n_shards=3, rng=spec.seed,
            weights=spec.shard_weights,
        )
        with np.load(estimates_path) as archive:
            assert np.array_equal(archive["estimates"], serial.estimates)

    def test_serve_requires_queue_dir_for_file_transport(
        self, capsys, write_collection_spec
    ):
        from repro.cli import main

        spec, spec_path = write_collection_spec(name="no-queue-dir")
        code = main(["serve", "--spec", str(spec_path), "--transport", "file"])
        assert code == 2
        assert "--queue-dir" in capsys.readouterr().err

    def test_work_rejects_tcp_only_flags_with_queue_dir(self, capsys, tmp_path):
        """--capacity / --poll are broker concepts; a file-queue worker must
        refuse them instead of silently ignoring them."""
        from repro.cli import main

        queue = str(tmp_path / "q")
        assert main(["work", "--queue-dir", queue, "--capacity", "2"]) == 2
        assert "--capacity" in capsys.readouterr().err
        assert main(["work", "--queue-dir", queue, "--poll"]) == 2
        assert "--poll" in capsys.readouterr().err

    def test_work_with_missing_auth_key_env_fails_cleanly(self, capsys, monkeypatch):
        from repro.cli import main

        monkeypatch.delenv("REPRO_MISSING_KEY", raising=False)
        code = main(
            [
                "work",
                "--connect", "127.0.0.1:1",
                "--auth-key-env", "REPRO_MISSING_KEY",
            ]
        )
        assert code == 2
        assert "REPRO_MISSING_KEY" in capsys.readouterr().err
