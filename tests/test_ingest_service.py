"""Tests for the live ingestion service layer.

Covers the metrics registry and its Prometheus rendering, the RoundClock
sealing state machine (quorum / timeout / explicit, both late policies,
state round-trip), the clock-attached session semantics (late, out-of-order,
duplicate batches), and the HTTP service end to end: bit-identity against a
batch session, authentication, backpressure, checkpoint/kill/restore.

HTTP tests run real asyncio servers on ephemeral localhost ports via
``asyncio.run`` wrappers — no event-loop plugins needed.
"""

import asyncio
import json
import os

import numpy as np
import pytest

from repro.distributed.auth import PayloadAuthenticator
from repro.exceptions import ParameterError
from repro.service import CollectorSession, MetricsRegistry, RoundClock
from repro.service.clock import SealEvent
from repro.service.http import HttpClient
from repro.service.ingest import (
    IngestServer,
    decode_reports,
    encode_reports,
    wire_reports_supported,
)
from repro.service.loadgen import generate_round_reports, run_loadgen
from repro.specs import IngestSpec, ProtocolSpec

PROTO = ProtocolSpec(name="L-OSUE", k=8, eps_inf=2.0, eps_1=1.0)


def _spec(**overrides) -> IngestSpec:
    defaults = dict(protocol=PROTO, n_rounds=3, queue_capacity=64)
    defaults.update(overrides)
    return IngestSpec(**defaults)


def _reports(n_rounds=3, n_users=30, seed=11, proto=PROTO):
    return generate_round_reports(proto, n_rounds, n_users, seed)


def _batch_session(rounds, proto=PROTO):
    session = CollectorSession(proto, n_rounds=len(rounds))
    for t, batch in enumerate(rounds):
        session.submit_reports(t, batch)
    return session


# ---------------------------------------------------------------------- #
# Metrics
# ---------------------------------------------------------------------- #
class TestMetrics:
    def test_counter_gauge_histogram_render(self):
        registry = MetricsRegistry()
        c = registry.counter("demo_total", "a counter")
        g = registry.gauge("demo_depth", "a gauge")
        h = registry.histogram("demo_seconds", "a histogram", buckets=(0.1, 1.0))
        c.inc()
        c.inc(2)
        g.set(5)
        g.dec(1.5)
        h.observe(0.05)
        h.observe(0.5)
        h.observe(3.0)
        text = registry.render()
        assert "# TYPE demo_total counter" in text
        assert "demo_total 3" in text
        assert "demo_depth 3.5" in text
        assert 'demo_seconds_bucket{le="0.1"} 1' in text
        assert 'demo_seconds_bucket{le="1"} 2' in text
        assert 'demo_seconds_bucket{le="+Inf"} 3' in text
        assert "demo_seconds_count 3" in text
        assert "demo_seconds_sum 3.55" in text

    def test_labeled_series_share_the_family(self):
        registry = MetricsRegistry()
        c = registry.counter("events_total", "by reason")
        c.labels(reason="auth").inc()
        c.labels(reason="auth").inc()
        c.labels(reason="late").inc(3)
        assert c.value(reason="auth") == 2
        assert c.value(reason="late") == 3
        text = registry.render()
        assert 'events_total{reason="auth"} 2' in text
        assert 'events_total{reason="late"} 3' in text

    def test_register_or_return_and_kind_conflict(self):
        registry = MetricsRegistry()
        a = registry.counter("x_total")
        assert registry.counter("x_total") is a
        with pytest.raises(ParameterError, match="already registered"):
            registry.gauge("x_total")

    def test_counter_refuses_to_decrease(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError, match="cannot decrease"):
            registry.counter("y_total").inc(-1)

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ParameterError, match="invalid metric name"):
            registry.counter("bad name")
        with pytest.raises(ParameterError, match="label name"):
            registry.counter("ok_total").labels(**{"bad-label": "x"}).inc()

    def test_untouched_instruments_render_zero_sample(self):
        registry = MetricsRegistry()
        registry.counter("quiet_total", "never incremented")
        assert "quiet_total 0" in registry.render()


# ---------------------------------------------------------------------- #
# RoundClock
# ---------------------------------------------------------------------- #
class FakeTime:
    def __init__(self):
        self.now = 100.0

    def __call__(self):
        return self.now


class TestRoundClock:
    def test_quorum_seals_window(self):
        clock = RoundClock(3, quorum=5)
        for _ in range(4):
            assert clock.route(0) == 0
        assert clock.current_round == 0
        assert clock.route(0) == 0  # the 5th report seals after routing
        assert clock.current_round == 1
        assert clock.seals[0].reason == "quorum"
        assert clock.seals[0].n_reports == 5

    def test_timeout_seals_on_tick(self):
        fake = FakeTime()
        clock = RoundClock(3, window_seconds=10.0, time_source=fake)
        assert clock.tick() == []
        fake.now += 9.9
        assert clock.tick() == []
        fake.now += 0.2
        events = clock.tick()
        assert [e.reason for e in events] == ["timeout"]
        assert clock.current_round == 1

    def test_tick_seals_every_elapsed_deadline(self):
        fake = FakeTime()
        clock = RoundClock(3, window_seconds=1.0, time_source=fake)
        fake.now += 10.0
        events = clock.tick()
        assert clock.finished and len(events) == 3

    def test_explicit_advance_and_finished_guard(self):
        clock = RoundClock(2)
        clock.advance()
        clock.advance("drain")
        assert clock.finished
        assert [e.reason for e in clock.seals] == ["explicit", "drain"]
        with pytest.raises(ParameterError, match="already sealed"):
            clock.advance()

    def test_late_drop_policy(self):
        clock = RoundClock(3, late_policy="drop")
        clock.advance()
        assert clock.route(0, n_reports=7) is None
        assert clock.late_dropped == 7
        assert clock.window_reports == 0

    def test_late_absorb_policy_redirects_to_open_window(self):
        clock = RoundClock(3, late_policy="absorb")
        clock.advance()
        assert clock.route(0, n_reports=7) == 1
        assert clock.late_absorbed == 7
        assert clock.window_reports == 7

    def test_absorb_after_horizon_still_drops(self):
        clock = RoundClock(1, late_policy="absorb")
        clock.advance()
        assert clock.route(0, n_reports=2) is None
        assert clock.late_dropped == 2

    def test_early_reports_pass_through(self):
        clock = RoundClock(3)
        assert clock.route(2, n_reports=4) == 2
        assert clock.early_reports == 4
        assert clock.window_reports == 0  # the open window is unaffected

    def test_on_seal_callback_fires(self):
        events = []
        clock = RoundClock(2, quorum=1, on_seal=events.append)
        clock.route(0)
        assert len(events) == 1 and isinstance(events[0], SealEvent)

    def test_state_round_trip(self):
        fake = FakeTime()
        clock = RoundClock(
            4, window_seconds=5.0, quorum=10, late_policy="absorb",
            time_source=fake,
        )
        for _ in range(10):
            clock.route(0)
        clock.route(1, n_reports=3)
        clock.advance()
        clock.route(0, n_reports=2)  # late, absorbed into round 2
        state = json.loads(json.dumps(clock.state_dict()))  # wire round trip
        restored = RoundClock.from_state(state, time_source=fake)
        assert restored.current_round == clock.current_round == 2
        assert restored.window_reports == 2
        assert restored.late_absorbed == 2
        assert restored.quorum == 10 and restored.window_seconds == 5.0
        assert restored.late_policy == "absorb"
        assert [e.reason for e in restored.seals] == ["quorum", "explicit"]

    def test_restored_window_reopens_now(self):
        fake = FakeTime()
        clock = RoundClock(2, window_seconds=10.0, time_source=fake)
        fake.now += 8.0
        state = clock.state_dict()
        fake.now += 100.0  # process restart much later
        restored = RoundClock.from_state(state, time_source=fake)
        assert restored.tick() == []  # the window age did not leak across

    def test_invalid_state_rejected(self):
        with pytest.raises(ParameterError, match="state format"):
            RoundClock.from_state({"format": 99})
        with pytest.raises(ParameterError, match="invalid round-clock state"):
            RoundClock.from_state({"format": 1, "n_rounds": 2})

    def test_bad_parameters_rejected(self):
        with pytest.raises(ParameterError, match="late_policy"):
            RoundClock(2, late_policy="queue")
        with pytest.raises(ParameterError, match="round index"):
            RoundClock(2).route(2)


# ---------------------------------------------------------------------- #
# Session + clock semantics
# ---------------------------------------------------------------------- #
class TestSessionWithClock:
    def test_clock_horizon_must_match(self):
        session = CollectorSession(PROTO, n_rounds=3)
        with pytest.raises(ParameterError, match="horizon"):
            session.attach_clock(RoundClock(2))
        with pytest.raises(ParameterError, match="RoundClock"):
            session.attach_clock("not a clock")

    def test_late_drop_returns_none_and_freezes_estimate(self):
        rounds = _reports()
        session = CollectorSession(PROTO, n_rounds=3, clock=RoundClock(3))
        session.submit_reports(0, rounds[0])
        frozen = session.estimate(0).frequencies.copy()
        session.clock.advance()
        assert session.submit_reports(0, rounds[1]) is None
        np.testing.assert_array_equal(session.estimate(0).frequencies, frozen)
        assert session.clock.late_dropped == len(rounds[1])

    def test_late_absorb_folds_into_open_window(self):
        rounds = _reports()
        clock = RoundClock(3, late_policy="absorb")
        session = CollectorSession(PROTO, n_rounds=3, clock=clock)
        session.submit_reports(0, rounds[0])
        clock.advance()
        estimate = session.submit_reports(0, rounds[1])  # late -> round 1
        assert estimate.round_index == 1
        assert estimate.n_reports == len(rounds[1])
        assert clock.late_absorbed == len(rounds[1])

    def test_out_of_order_and_duplicate_batches(self):
        rounds = _reports()
        clock = RoundClock(3)
        session = CollectorSession(PROTO, n_rounds=3, clock=clock)
        # Future rounds are accepted out of order while round 0 is open.
        session.submit_reports(2, rounds[2])
        session.submit_reports(1, rounds[1])
        assert clock.early_reports == len(rounds[1]) + len(rounds[2])
        session.submit_reports(0, rounds[0])
        # A duplicate delivery of an on-time batch is folded again: the
        # session is an absorber, dedup is the transport's job (and the
        # report count doubles with it, keeping the estimate unbiased).
        session.submit_reports(0, rounds[0])
        assert session.estimate(0).n_reports == 2 * len(rounds[0])
        reference = _batch_session(rounds)
        for t in (1, 2):
            np.testing.assert_array_equal(
                session.estimate(t).frequencies,
                reference.estimate(t).frequencies,
            )

    def test_quorum_clock_matches_batch_reference_bit_identically(self):
        rounds = _reports()
        n_users = len(rounds[0])
        clock = RoundClock(3, quorum=n_users)
        session = CollectorSession(PROTO, n_rounds=3, clock=clock)
        for t, batch in enumerate(rounds):
            mid = n_users // 3
            session.submit_reports(t, batch[:mid])
            session.submit_reports(t, batch[mid:])
        assert clock.finished
        reference = _batch_session(rounds)
        np.testing.assert_array_equal(
            session.estimates(), reference.estimates()
        )


# ---------------------------------------------------------------------- #
# Wire codec
# ---------------------------------------------------------------------- #
class TestWireCodec:
    @pytest.mark.parametrize(
        "spec",
        [
            ProtocolSpec(name="L-GRR", k=6, eps_inf=2.0, eps_1=1.0),
            ProtocolSpec(name="L-OSUE", k=6, eps_inf=2.0, eps_1=1.0),
            ProtocolSpec(
                name="dBitFlipPM", k=6, eps_inf=2.0, params={"d": 2, "b": 4}
            ),
        ],
    )
    def test_round_trip_preserves_support_counts(self, spec):
        from repro.registry import build_protocol

        protocol = build_protocol(spec)
        assert wire_reports_supported(protocol)
        batch = generate_round_reports(protocol, 1, 20, seed=3)[0]
        wire = json.loads(json.dumps(encode_reports(protocol, batch)))
        decoded = decode_reports(protocol, wire)
        np.testing.assert_array_equal(
            protocol.support_counts(decoded), protocol.support_counts(batch)
        )

    def test_loloha_reports_are_not_wire_serializable(self):
        from repro.registry import build_protocol

        protocol = build_protocol(
            ProtocolSpec(name="LOLOHA", k=6, eps_inf=2.0, eps_1=1.0)
        )
        assert not wire_reports_supported(protocol)
        client = protocol.create_client(rng=0)
        with pytest.raises(ParameterError, match="counts"):
            encode_reports(protocol, [client.report(0, rng=1)])

    def test_malformed_wire_reports_rejected(self):
        from repro.registry import build_protocol

        protocol = build_protocol(
            ProtocolSpec(name="dBitFlipPM", k=6, eps_inf=2.0, params={"d": 2, "b": 4})
        )
        with pytest.raises(ParameterError, match="malformed wire report"):
            decode_reports(protocol, [{"buckets": [0, 1]}])
        with pytest.raises(ParameterError, match="non-empty"):
            decode_reports(protocol, [])


# ---------------------------------------------------------------------- #
# HTTP service end to end
# ---------------------------------------------------------------------- #
async def _query(client, method, path, **kwargs):
    response = await client.request(method, path, **kwargs)
    return response


class TestIngestHttp:
    def test_loadgen_estimates_bit_identical_to_batch_session(self):
        spec = _spec(quorum=30)
        rounds = _reports(n_users=30)
        reference = _batch_session(rounds)

        async def scenario():
            server = IngestServer(spec, tick_interval=0.02)
            host, port = await server.start()
            result = await run_loadgen(
                PROTO, host, port, n_rounds=3, n_users=30, seed=11,
                batch_size=7, rate=200.0,
            )
            await server._queue.join()
            client = HttpClient(host, port)
            estimates = [
                (await client.request("GET", f"/v1/estimate/{t}")).parsed_json()
                for t in range(3)
            ]
            metrics = (await client.request("GET", "/metrics")).body.decode()
            await client.close()
            await server.stop()
            return result, estimates, metrics

        result, estimates, metrics = asyncio.run(scenario())
        assert result.accepted_reports == 90
        for t, payload in enumerate(estimates):
            assert payload["sealed"] is True
            assert payload["n_reports"] == 30
            np.testing.assert_array_equal(
                np.asarray(payload["frequencies"]),
                reference.estimate(t).frequencies,
            )
        assert "repro_ingest_reports_accepted_total 90" in metrics
        assert 'repro_ingest_rounds_sealed_total{reason="quorum"} 3' in metrics

    def test_counts_mode_is_bit_identical_too(self):
        spec = _spec(quorum=30)
        rounds = _reports(n_users=30)
        reference = _batch_session(rounds)

        async def scenario():
            server = IngestServer(spec, tick_interval=0.02)
            host, port = await server.start()
            result = await run_loadgen(
                PROTO, host, port, n_rounds=3, n_users=30, seed=11,
                batch_size=10, mode="counts",
            )
            await server._queue.join()
            client = HttpClient(host, port)
            payload = (await client.request("GET", "/v1/estimate/1")).parsed_json()
            await client.close()
            await server.stop()
            return result, payload

        result, payload = asyncio.run(scenario())
        assert result.accepted_reports == 90
        np.testing.assert_array_equal(
            np.asarray(payload["frequencies"]), reference.estimate(1).frequencies
        )

    def test_auth_rejects_unsigned_and_wrong_key(self, monkeypatch):
        monkeypatch.setenv("INGEST_TEST_KEY", "the-right-key")
        spec = _spec(auth_key_env="INGEST_TEST_KEY")

        async def scenario():
            server = IngestServer(spec, tick_interval=0.02)
            host, port = await server.start()
            wrong = await run_loadgen(
                PROTO, host, port, n_rounds=1, n_users=10, seed=1,
                batch_size=10,
                authenticator=PayloadAuthenticator(b"not-the-right-key"),
            )
            right = await run_loadgen(
                PROTO, host, port, n_rounds=1, n_users=10, seed=1,
                batch_size=10, auth_key_env="INGEST_TEST_KEY",
            )
            client = HttpClient(host, port)
            unsigned = await client.request(
                "POST", "/v1/reports",
                body=json.dumps({"round": 0, "reports": [1]}).encode(),
            )
            metrics = (await client.request("GET", "/metrics")).body.decode()
            await client.close()
            await server.stop()
            return wrong, right, unsigned, metrics

        wrong, right, unsigned, metrics = asyncio.run(scenario())
        assert wrong.statuses == {401: 1} and wrong.accepted_reports == 0
        assert right.accepted_reports == 10
        assert unsigned.status == 401
        assert 'repro_ingest_rejected_total{reason="auth"} 2' in metrics

    def test_full_queue_answers_429_with_retry_after(self):
        spec = _spec(
            protocol=ProtocolSpec(name="L-GRR", k=8, eps_inf=2.0, eps_1=1.0),
            queue_capacity=1,
            retry_after_seconds=0.25,
        )

        async def scenario():
            server = IngestServer(spec, tick_interval=0.02)
            host, port = await server.start()
            # Pause the consumer so the queue cannot drain.
            server._consumer_task.cancel()
            try:
                await server._consumer_task
            except asyncio.CancelledError:
                pass
            client = HttpClient(host, port)
            body = json.dumps({"round": 0, "reports": [1, 2]}).encode()
            first = await client.request("POST", "/v1/reports", body=body)
            second = await client.request("POST", "/v1/reports", body=body)
            metrics = (await client.request("GET", "/metrics")).body.decode()
            await client.close()
            # The consumer is gone: drain the stuck batch by hand so stop()
            # can enqueue its drain marker, and clear the dead task handle.
            server._queue.get_nowait()
            server._queue.task_done()
            server._consumer_task = None
            await server.stop()
            return first, second, metrics

        first, second, metrics = asyncio.run(scenario())
        assert first.status == 202
        assert second.status == 429
        assert second.header("Retry-After") == "0.25"
        assert "retry after 0.25s" in second.parsed_json()["error"]
        assert 'repro_ingest_rejected_total{reason="backpressure"} 1' in metrics

    def test_malformed_submissions_answer_400(self):
        spec = _spec()

        async def scenario():
            server = IngestServer(spec, tick_interval=0.02)
            host, port = await server.start()
            client = HttpClient(host, port)
            cases = [
                b"not json",
                json.dumps([1, 2]).encode(),
                json.dumps({"round": 99, "reports": [1]}).encode(),
                json.dumps({"round": 0}).encode(),
                json.dumps({"round": 0, "reports": [1], "counts": [0] * 8}).encode(),
                json.dumps({"round": 0, "counts": [0] * 5, "n_reports": 2}).encode(),
                json.dumps({"round": 0, "counts": [0] * 8, "n_reports": 0}).encode(),
                json.dumps({"round": 0, "reports": [[1, 0]]}).encode(),
            ]
            statuses = [
                (await client.request("POST", "/v1/reports", body=body)).status
                for body in cases
            ]
            await client.close()
            await server.stop()
            return statuses

        assert asyncio.run(scenario()) == [400] * 8

    def test_status_endpoints_and_errors(self):
        spec = _spec(n_rounds=2)

        async def scenario():
            server = IngestServer(spec, tick_interval=0.02)
            host, port = await server.start()
            client = HttpClient(host, port)
            health = (await client.request("GET", "/healthz")).parsed_json()
            rounds = (await client.request("GET", "/v1/rounds")).parsed_json()
            missing = await client.request("GET", "/v1/estimate/0")
            bad_round = await client.request("GET", "/v1/estimate/xyz")
            not_found = await client.request("GET", "/nope")
            wrong_method = await client.request("POST", "/healthz")
            advance = (
                await client.request("POST", "/v1/rounds/advance")
            ).parsed_json()
            await client.request("POST", "/v1/rounds/advance")
            exhausted = await client.request("POST", "/v1/rounds/advance")
            await client.close()
            await server.stop()
            return health, rounds, missing, bad_round, not_found, wrong_method, advance, exhausted

        (health, rounds, missing, bad_round, not_found,
         wrong_method, advance, exhausted) = asyncio.run(scenario())
        assert health["status"] == "ok" and health["current_round"] == 0
        assert rounds["n_rounds"] == 2 and rounds["reports_per_round"] == [0, 0]
        assert missing.status == 404
        assert bad_round.status == 400
        assert not_found.status == 404
        assert wrong_method.status == 405
        assert advance["sealed_round"] == 0 and advance["reason"] == "explicit"
        assert exhausted.status == 400

    def test_checkpoint_kill_restore_resumes_bit_identically(self, tmp_path):
        checkpoint = tmp_path / "live.npz"
        spec = _spec(quorum=30)
        rounds = _reports(n_users=30)
        reference = _batch_session(rounds)

        async def first_generation():
            server = IngestServer(spec, checkpoint_path=checkpoint, tick_interval=0.02)
            host, port = await server.start()
            # Rounds 0 and 1 arrive, then the process "dies" (drain + stop
            # stands in for the SIGTERM path, which calls exactly stop()).
            await run_loadgen(
                PROTO, host, port, n_rounds=3, n_users=30, seed=11,
                batch_size=15, rounds=[0, 1],
            )
            await server._queue.join()
            await server.stop()
            return server.clock.current_round

        async def second_generation():
            server = IngestServer(spec, checkpoint_path=checkpoint, tick_interval=0.02)
            host, port = await server.start()
            await run_loadgen(
                PROTO, host, port, n_rounds=3, n_users=30, seed=11,
                batch_size=15, rounds=[2],
            )
            await server._queue.join()
            client = HttpClient(host, port)
            estimates = [
                (await client.request("GET", f"/v1/estimate/{t}")).parsed_json()
                for t in range(3)
            ]
            await client.close()
            await server.stop()
            return server.clock.current_round, estimates

        sealed_at_kill = asyncio.run(first_generation())
        assert sealed_at_kill == 2  # two quorum seals before the "crash"
        assert checkpoint.exists()
        assert (tmp_path / "live.npz.clock.json").exists()
        resumed_round, estimates = asyncio.run(second_generation())
        assert resumed_round == 3
        for t, payload in enumerate(estimates):
            np.testing.assert_array_equal(
                np.asarray(payload["frequencies"]),
                reference.estimate(t).frequencies,
            )

    def test_restore_refuses_mismatched_spec(self, tmp_path):
        checkpoint = tmp_path / "state.npz"
        session = CollectorSession(PROTO, n_rounds=3)
        session.checkpoint(checkpoint)
        other = _spec(
            protocol=ProtocolSpec(name="L-GRR", k=8, eps_inf=2.0, eps_1=1.0)
        )
        with pytest.raises(ParameterError, match="does not match"):
            IngestServer(other, checkpoint_path=checkpoint)
        with pytest.raises(ParameterError, match="horizon"):
            IngestServer(_spec(n_rounds=5), checkpoint_path=checkpoint)

    def test_timeout_sealing_over_http(self):
        spec = _spec(window_seconds=0.05)

        async def scenario():
            server = IngestServer(spec, tick_interval=0.01)
            host, port = await server.start()
            client = HttpClient(host, port)
            for _ in range(60):
                await asyncio.sleep(0.01)
                payload = (await client.request("GET", "/v1/rounds")).parsed_json()
                if payload["finished"]:
                    break
            metrics = (await client.request("GET", "/metrics")).body.decode()
            await client.close()
            await server.stop()
            return payload, metrics

        payload, metrics = asyncio.run(scenario())
        assert payload["finished"] is True
        assert [s["reason"] for s in payload["seals"]] == ["timeout"] * 3
        assert 'repro_ingest_rounds_sealed_total{reason="timeout"} 3' in metrics
        assert "repro_ingest_seal_latency_seconds_count 3" in metrics


# ---------------------------------------------------------------------- #
# Loadgen determinism
# ---------------------------------------------------------------------- #
class TestLoadgen:
    def test_same_seed_same_reports(self):
        a = generate_round_reports(PROTO, 2, 10, seed=42)
        b = generate_round_reports(PROTO, 2, 10, seed=42)
        for batch_a, batch_b in zip(a, b):
            np.testing.assert_array_equal(
                np.asarray(batch_a), np.asarray(batch_b)
            )

    def test_different_seed_different_reports(self):
        a = np.asarray(generate_round_reports(PROTO, 2, 10, seed=42))
        b = np.asarray(generate_round_reports(PROTO, 2, 10, seed=43))
        assert not np.array_equal(a, b)

    def test_loloha_requires_counts_mode(self):
        loloha = ProtocolSpec(name="LOLOHA", k=6, eps_inf=2.0, eps_1=1.0)

        async def scenario():
            await run_loadgen(
                loloha, "127.0.0.1", 1, n_rounds=1, n_users=2, seed=0,
                mode="reports",
            )

        with pytest.raises(ParameterError, match="counts"):
            asyncio.run(scenario())

    def test_invalid_arguments_rejected(self):
        async def bad_mode():
            await run_loadgen(
                PROTO, "127.0.0.1", 1, n_rounds=1, n_users=1, seed=0,
                mode="stream",
            )

        with pytest.raises(ParameterError, match="mode"):
            asyncio.run(bad_mode())

        async def bad_rate():
            await run_loadgen(
                PROTO, "127.0.0.1", 1, n_rounds=1, n_users=1, seed=0, rate=0.0
            )

        with pytest.raises(ParameterError, match="rate"):
            asyncio.run(bad_rate())
