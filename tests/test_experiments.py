"""Tests for the experiment harnesses (Figures 1-4, Tables 1-2) at small scale."""

import numpy as np
import pytest

from repro.datasets import make_uniform_changing
from repro.exceptions import ExperimentError
from repro.experiments import (
    ExperimentConfig,
    QUICK_CONFIG,
    format_figure1,
    format_figure2,
    format_figure3,
    format_figure4,
    format_table1,
    format_table2,
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
    run_table1,
    run_table2,
)
from repro.experiments.empirical import dbitflip_bucket_count, paper_protocol_factories
from repro.experiments.report import ascii_curve, format_table


@pytest.fixture(scope="module")
def tiny_config():
    return QUICK_CONFIG.scaled(
        eps_inf_values=(0.5, 2.0),
        alpha_values=(0.5,),
        n_runs=1,
        dataset_scale=0.02,
        datasets=("syn",),
    )


@pytest.fixture(scope="module")
def tiny_named_datasets():
    dataset = make_uniform_changing(
        k=24, n_users=300, n_rounds=6, change_probability=0.3, name="syn", rng=0
    )
    return {"syn": dataset}


class TestConfig:
    def test_scaled_returns_modified_copy(self):
        config = QUICK_CONFIG.scaled(n_runs=3)
        assert config.n_runs == 3
        assert QUICK_CONFIG.n_runs == 1

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(alpha_values=(1.2,))

    def test_empty_grid_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(eps_inf_values=())


class TestFigure1:
    def test_series_shapes(self, tiny_config):
        result = run_figure1(tiny_config, alpha_values=(0.3, 0.6), include_numeric=False)
        assert set(result.closed_form) == {0.3, 0.6}
        assert len(result.closed_form[0.3]) == len(tiny_config.eps_inf_values)

    def test_numeric_cross_check_close(self, tiny_config):
        result = run_figure1(tiny_config, alpha_values=(0.5,), include_numeric=True)
        for closed, numeric in zip(result.closed_form[0.5], result.numeric[0.5]):
            assert abs(closed - numeric) <= 1

    def test_high_alpha_curves_dominate(self, tiny_config):
        result = run_figure1(tiny_config, alpha_values=(0.1, 0.6), include_numeric=False)
        for low, high in zip(result.closed_form[0.1], result.closed_form[0.6]):
            assert high >= low

    def test_formatting_and_rows(self, tiny_config):
        result = run_figure1(tiny_config, alpha_values=(0.5,), include_numeric=False)
        assert "Figure 1" in format_figure1(result)
        assert len(result.rows()) == len(tiny_config.eps_inf_values)


class TestFigure2:
    def test_grid_contains_paper_protocols(self, tiny_config):
        result = run_figure2(tiny_config, alpha_values=(0.5,))
        assert set(result.variances) == {"L-OSUE", "OLOLOHA", "RAPPOR", "BiLOLOHA"}

    def test_variance_decreasing_in_eps(self, tiny_config):
        result = run_figure2(tiny_config, alpha_values=(0.5,))
        for protocol, per_alpha in result.variances.items():
            values = per_alpha[0.5]
            assert values[0] > values[-1]

    def test_formatting(self, tiny_config):
        result = run_figure2(tiny_config, alpha_values=(0.5,))
        rendered = format_figure2(result, alpha=0.5)
        assert "Figure 2" in rendered
        assert "OLOLOHA" in rendered


class TestFigure3And4:
    def test_figure3_structure_and_shape(self, tiny_config, tiny_named_datasets):
        result = run_figure3(tiny_config, datasets=tiny_named_datasets)
        series = result.series("syn", 0.5)
        assert "OLOLOHA" in series and "RAPPOR" in series
        assert len(series["OLOLOHA"]) == len(tiny_config.eps_inf_values)
        # Utility improves (MSE drops) as the budget grows.
        for values in series.values():
            assert values[-1] <= values[0] * 1.5

    def test_figure3_rows_and_formatting(self, tiny_config, tiny_named_datasets):
        result = run_figure3(tiny_config, datasets=tiny_named_datasets)
        assert len(result.rows()) > 0
        assert "MSE_avg" in format_figure3(result, "syn", 0.5)

    def test_figure4_loloha_bounded_rappor_linear(self, tiny_config, tiny_named_datasets):
        result = run_figure4(tiny_config, datasets=tiny_named_datasets)
        series = result.series("syn", 0.5)
        eps_values = tiny_config.eps_inf_values
        for i, eps_inf in enumerate(eps_values):
            assert series["BiLOLOHA"][i] <= 2 * eps_inf + 1e-9
            assert series["RAPPOR"][i] >= series["BiLOLOHA"][i] - 1e-9

    def test_figure4_formatting(self, tiny_config, tiny_named_datasets):
        result = run_figure4(tiny_config, datasets=tiny_named_datasets)
        assert "eps_avg" in format_figure4(result, "syn", 0.5)

    def test_unknown_dataset_in_formatting_raises(self, tiny_config, tiny_named_datasets):
        result = run_figure3(tiny_config, datasets=tiny_named_datasets)
        with pytest.raises(ExperimentError):
            format_figure3(result, "adult", 0.5)


class TestTables:
    def test_table1_budget_factors(self):
        result = run_table1(k=360, n=10_000, eps_inf=2.0, alpha=0.5, d=1)
        rows = {row["protocol"]: row for row in result.rows()}
        assert rows["LOLOHA"]["budget_factor"] == result.g
        assert rows["RAPPOR"]["budget_factor"] == 360
        assert rows["dBitFlipPM"]["budget_factor"] == 2
        assert "Table 1" in format_table1(result)

    def test_table2_detection_contrast(self, tiny_config, tiny_named_datasets):
        result = run_table2(tiny_config, datasets=tiny_named_datasets)
        for i in range(len(tiny_config.eps_inf_values)):
            assert result.detection["syn"]["d=b"][i] >= result.detection["syn"]["d=1"][i]
        assert "Table 2" in format_table2(result)

    def test_table2_rows_structure(self, tiny_config, tiny_named_datasets):
        result = run_table2(tiny_config, datasets=tiny_named_datasets)
        rows = result.rows()
        assert len(rows) == len(tiny_config.eps_inf_values)
        assert "syn d=1" in rows[0]


class TestEmpiricalHelpers:
    def test_bucket_count_rule(self):
        assert dbitflip_bucket_count(360) == 360
        assert dbitflip_bucket_count(1412) == 353
        assert dbitflip_bucket_count(96) == 96

    def test_specs_instantiate_protocols(self):
        from repro.experiments.empirical import paper_protocol_specs
        from repro.registry import build_protocol

        specs = paper_protocol_specs()
        assert list(specs) == [
            "RAPPOR", "L-OSUE", "L-GRR", "BiLOLOHA", "OLOLOHA",
            "1BitFlipPM", "bBitFlipPM",
        ]
        for name, spec in specs.items():
            protocol = build_protocol(spec.at(k=24, eps_inf=2.0, alpha=0.5))
            assert protocol.k == 24
            assert spec.display_name == name

    def test_factories_shim_instantiates_protocols_but_warns(self):
        with pytest.warns(DeprecationWarning, match="paper_protocol_factories"):
            factories = paper_protocol_factories()
        for name, factory in factories.items():
            protocol = factory(24, 2.0, 1.0)
            assert protocol.k == 24


class TestReportFormatting:
    def test_format_table_alignment(self):
        rows = [{"a": 1, "b": 2.34567}, {"a": 10, "b": 0.5}]
        rendered = format_table(rows)
        assert "a" in rendered and "b" in rendered
        assert len(rendered.splitlines()) == 4

    def test_format_table_empty_raises(self):
        with pytest.raises(ExperimentError):
            format_table([])

    def test_ascii_curve_contains_legend(self):
        rendered = ascii_curve([1, 2, 3], {"x": [1.0, 0.1, 0.01]}, title="demo")
        assert "demo" in rendered
        assert "legend" in rendered

    def test_ascii_curve_validates_lengths(self):
        with pytest.raises(ExperimentError):
            ascii_curve([1, 2], {"x": [1.0]})

    def test_ascii_curve_requires_series(self):
        with pytest.raises(ExperimentError):
            ascii_curve([1, 2], {})
