"""Smoke tests for the runnable examples.

The quickstart is executed end to end (it is fast); the heavier scenario
examples are compiled and their ``main`` entry points imported, which catches
API drift without paying their full simulation cost in the unit-test suite.
"""

import importlib.util
import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC_DIR = EXAMPLES_DIR.parent / "src"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load_module(path: pathlib.Path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_directory_has_expected_scenarios(self):
        names = {path.name for path in ALL_EXAMPLES}
        assert {"quickstart.py", "telemetry_monitoring.py", "census_counters.py",
                "attack_analysis.py"}.issubset(names)

    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
    def test_example_defines_main(self, path):
        module = _load_module(path)
        assert callable(getattr(module, "main", None)), f"{path.name} must define main()"

    def test_quickstart_runs_end_to_end(self):
        # The subprocess does not inherit pytest's ``pythonpath`` setting, so
        # expose src/ explicitly (works with or without a caller PYTHONPATH).
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_DIR)] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "MSE averaged" in completed.stdout
        assert "realized longitudinal budget" in completed.stdout
