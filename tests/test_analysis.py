"""Tests for the theoretical-analysis package (bounds, comparison, variances)."""

import math

import numpy as np
import pytest

from repro.analysis import (
    PROTOCOL_VARIANCE_FUNCTIONS,
    approximate_variance_for,
    estimation_error_bound,
    minimum_users_for_error,
    sequential_composition_budget,
    theoretical_comparison_table,
    variance_comparison_grid,
)
from repro.analysis.bounds import rounds_until_budget_exceeded
from repro.analysis.comparison import comparison_as_dicts
from repro.exceptions import ParameterError
from repro.longitudinal.parameters import l_osue_parameters, loloha_parameters


class TestBounds:
    def test_error_bound_decreases_with_n(self):
        params = l_osue_parameters(2.0, 1.0)
        loose = estimation_error_bound(params, n=100, k=10, beta=0.05)
        tight = estimation_error_bound(params, n=10_000, k=10, beta=0.05)
        assert tight < loose

    def test_error_bound_matches_proposition_formula(self):
        params = loloha_parameters(2.0, 1.0, 4)
        n, k, beta = 5000, 20, 0.1
        gap = (params.p1 - params.estimator_q1) * (params.p2 - params.q2)
        expected = math.sqrt(k / (4 * n * beta * gap))
        assert estimation_error_bound(params, n, k, beta) == pytest.approx(expected)

    def test_minimum_users_inverts_the_bound(self):
        params = l_osue_parameters(2.0, 1.0)
        target = 0.05
        n = minimum_users_for_error(params, k=10, beta=0.1, target_error=target)
        achieved = estimation_error_bound(params, n=n, k=10, beta=0.1)
        assert achieved <= target * 1.01

    def test_minimum_users_rejects_non_positive_target(self):
        params = l_osue_parameters(2.0, 1.0)
        with pytest.raises(ParameterError):
            minimum_users_for_error(params, k=10, beta=0.1, target_error=0.0)

    def test_sequential_composition_is_linear(self):
        assert sequential_composition_budget(0.5, 10) == pytest.approx(5.0)
        assert sequential_composition_budget(0.5, 0) == 0.0

    def test_rounds_until_budget_exceeded(self):
        assert rounds_until_budget_exceeded(1.0, 0.1) == 10
        assert rounds_until_budget_exceeded(1.0, 0.3) == 4


class TestComparisonTable:
    def test_contains_all_protocols(self):
        rows = theoretical_comparison_table(k=360, eps_inf=2.0, n=10_000, g=3, d=1)
        assert {row.protocol for row in rows} == {
            "LOLOHA",
            "L-GRR",
            "RAPPOR",
            "L-OSUE",
            "dBitFlipPM",
        }

    def test_budget_factors_match_table1(self):
        rows = {
            row.protocol: row
            for row in theoretical_comparison_table(k=100, eps_inf=2.0, n=1000, g=4, b=50, d=3)
        }
        assert rows["LOLOHA"].budget_factor == 4
        assert rows["RAPPOR"].budget_factor == 100
        assert rows["L-OSUE"].budget_factor == 100
        assert rows["L-GRR"].budget_factor == 100
        assert rows["dBitFlipPM"].budget_factor == 4  # min(d + 1, b)

    def test_communication_bits_match_table1(self):
        rows = {
            row.protocol: row
            for row in theoretical_comparison_table(k=100, eps_inf=2.0, n=1000, g=4, b=50, d=3)
        }
        assert rows["LOLOHA"].communication_bits == 2.0
        assert rows["RAPPOR"].communication_bits == 100.0
        assert rows["L-GRR"].communication_bits == 7.0
        assert rows["dBitFlipPM"].communication_bits == 3.0

    def test_rejects_d_above_b(self):
        with pytest.raises(ParameterError):
            theoretical_comparison_table(k=100, eps_inf=2.0, n=1000, b=5, d=6)

    def test_rows_convertible_to_dicts(self):
        rows = theoretical_comparison_table(k=10, eps_inf=1.0, n=100)
        dicts = comparison_as_dicts(rows)
        assert len(dicts) == len(rows)
        assert all("worst_case_budget" in d for d in dicts)


class TestVarianceComparison:
    def test_registry_covers_figure2_protocols(self):
        for name in ("RAPPOR", "L-OSUE", "BiLOLOHA", "OLOLOHA", "L-GRR"):
            assert name in PROTOCOL_VARIANCE_FUNCTIONS

    def test_unknown_protocol_raises(self):
        with pytest.raises(ParameterError):
            approximate_variance_for("LDP-9000", 2.0, 1.0, 1000)

    def test_l_grr_variance_depends_on_k(self):
        small = approximate_variance_for("L-GRR", 2.0, 1.0, 1000, k=2)
        large = approximate_variance_for("L-GRR", 2.0, 1.0, 1000, k=500)
        assert large > small

    def test_ue_variances_are_domain_size_agnostic(self):
        for protocol in ("RAPPOR", "L-OSUE", "BiLOLOHA", "OLOLOHA"):
            a = approximate_variance_for(protocol, 2.0, 1.0, 1000, k=2)
            b = approximate_variance_for(protocol, 2.0, 1.0, 1000, k=500)
            assert a == pytest.approx(b)

    def test_grid_shape(self):
        grid = variance_comparison_grid(
            ["RAPPOR", "OLOLOHA"], eps_inf_values=[1.0, 2.0], alpha_values=[0.5], n=1000
        )
        assert set(grid) == {"RAPPOR", "OLOLOHA"}
        assert len(grid["RAPPOR"][0.5]) == 2

    def test_grid_rejects_invalid_alpha(self):
        with pytest.raises(ParameterError):
            variance_comparison_grid(["RAPPOR"], [1.0], [1.5], n=1000)

    def test_figure2_qualitative_shape(self):
        """In the low-privacy regime OLOLOHA ~ L-OSUE and both beat BiLOLOHA."""
        eps_inf, alpha, n = 5.0, 0.6, 10_000
        v = {
            name: approximate_variance_for(name, eps_inf, alpha * eps_inf, n)
            for name in ("L-OSUE", "OLOLOHA", "RAPPOR", "BiLOLOHA")
        }
        assert v["OLOLOHA"] < v["BiLOLOHA"]
        assert v["L-OSUE"] < v["RAPPOR"]
        assert v["OLOLOHA"] == pytest.approx(v["L-OSUE"], rel=0.6)

    def test_variance_decreases_with_budget(self):
        for protocol in ("RAPPOR", "L-OSUE", "OLOLOHA", "BiLOLOHA"):
            low = approximate_variance_for(protocol, 1.0, 0.5, 1000)
            high = approximate_variance_for(protocol, 4.0, 2.0, 1000)
            assert high < low
