"""Property-based and statistical tests of the privacy guarantees themselves.

These tests verify the *mechanism-level* LDP properties the paper proves:

* GRR's output distribution never distinguishes two inputs by more than
  ``e^eps`` (Definition 2.1);
* LOLOHA's PRR step satisfies ``eps_inf``-LDP (Theorem 3.3) and the chained
  first report satisfies ``eps_1``-LDP (Theorem 3.4);
* the longitudinal budget on the users' values never exceeds ``g * eps_inf``
  (Theorem 3.5), which is checked by exercising clients exhaustively.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.freq_oneshot.base import grr_parameters, oue_parameters, sue_parameters
from repro.longitudinal import BiLOLOHA, LOLOHA, LSUE, OLOLOHA
from repro.longitudinal.parameters import loloha_parameters


def _grr_output_distribution(p: float, q: float, k: int, value: int) -> np.ndarray:
    """Exact output pmf of GRR for a given input value."""
    pmf = np.full(k, q)
    pmf[value] = p
    return pmf


class TestMechanismLevelLDP:
    @given(
        epsilon=st.floats(min_value=0.2, max_value=5.0),
        k=st.integers(min_value=2, max_value=100),
    )
    @settings(max_examples=60, deadline=None)
    def test_grr_likelihood_ratio_bounded(self, epsilon, k):
        """For every pair of inputs and every output, the GRR likelihood
        ratio is bounded by e^eps (Definition 2.1)."""
        params = grr_parameters(epsilon, k)
        pmf_a = _grr_output_distribution(params.p, params.q, k, 0)
        pmf_b = _grr_output_distribution(params.p, params.q, k, min(1, k - 1))
        ratio = np.max(pmf_a / pmf_b)
        assert ratio <= math.exp(epsilon) * (1 + 1e-9)

    @given(epsilon=st.floats(min_value=0.2, max_value=5.0))
    @settings(max_examples=60, deadline=None)
    def test_ue_bitwise_likelihood_ratio_bounded(self, epsilon):
        """For SUE and OUE, the per-report likelihood ratio (product over the
        two bits that differ between two inputs) is exactly e^eps."""
        for params in (sue_parameters(epsilon), oue_parameters(epsilon)):
            ratio = (params.p * (1 - params.q)) / ((1 - params.p) * params.q)
            assert math.log(ratio) == pytest.approx(epsilon, rel=1e-9)

    @given(
        eps_inf=st.floats(min_value=0.3, max_value=4.0),
        alpha=st.floats(min_value=0.2, max_value=0.8),
        g=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_loloha_prr_satisfies_eps_inf(self, eps_inf, alpha, g):
        """Theorem 3.3: the hash + PRR step is eps_inf-LDP."""
        params = loloha_parameters(eps_inf, alpha * eps_inf, g)
        assert math.log(params.p1 / params.q1) == pytest.approx(eps_inf, rel=1e-9)

    @given(
        eps_inf=st.floats(min_value=0.3, max_value=4.0),
        alpha=st.floats(min_value=0.2, max_value=0.8),
        g=st.integers(min_value=2, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_loloha_first_report_satisfies_eps_1(self, eps_inf, alpha, g):
        """Theorem 3.4: the nominal chained ratio equals e^{eps_1}, and the
        true worst-case output ratio never exceeds it."""
        eps_1 = alpha * eps_inf
        params = loloha_parameters(eps_inf, eps_1, g)
        nominal = (params.p1 * params.p2 + params.q1 * params.q2) / (
            params.p1 * params.q2 + params.q1 * params.p2
        )
        assert math.log(nominal) == pytest.approx(eps_1, rel=1e-6)
        # Exact end-to-end ratio over the g-symbol output alphabet.
        supported = params.p1 * params.p2 + (1 - params.p1) * params.q2
        unsupported = params.q1 * params.p2 + (
            params.p1 + (g - 2) * params.q1
        ) * params.q2
        assert supported / unsupported <= nominal * (1 + 1e-9)


class TestLongitudinalBudgetTheorem:
    @pytest.mark.parametrize("g", [2, 3, 5])
    def test_client_budget_never_exceeds_g_eps_inf(self, g, rng):
        """Theorem 3.5: even reporting every domain value repeatedly, a
        LOLOHA client consumes at most g * eps_inf."""
        protocol = LOLOHA(k=40, eps_inf=1.5, eps_1=0.5, g=g)
        client = protocol.create_client(rng)
        for _ in range(3):
            for value in range(40):
                client.report(value, rng)
        assert client.realized_budget() <= g * 1.5 + 1e-9

    def test_rappor_budget_grows_with_distinct_values(self, rng):
        """In contrast, a RAPPOR client pays eps_inf per distinct value."""
        protocol = LSUE(k=40, eps_inf=1.5, eps_1=0.5)
        client = protocol.create_client(rng)
        for value in range(25):
            client.report(value, rng)
        assert client.realized_budget() == pytest.approx(25 * 1.5)

    def test_worst_case_ratio_is_k_over_g(self):
        k = 120
        biloloha = BiLOLOHA(k, 2.0, 1.0)
        rappor = LSUE(k, 2.0, 1.0)
        ratio = rappor.worst_case_budget() / biloloha.worst_case_budget()
        assert ratio == pytest.approx(k / 2)


class TestAveragingResistance:
    def test_memoized_reports_do_not_average_away(self, rng):
        """Observing many LOLOHA reports of the same value does not converge
        to the true hashed value beyond what eps_inf allows: the memoized PRR
        output is fixed, so averaging recovers the *memoized* symbol, not the
        true one, with error probability 1 - p1 > 0."""
        protocol = OLOLOHA(k=30, eps_inf=1.0, eps_1=0.4)
        params = protocol.chained_parameters
        n_clients, n_reports = 400, 40
        hits = 0
        for _ in range(n_clients):
            client = protocol.create_client(rng)
            true_hash = client.hash_function(5)
            reports = [client.report(5, rng).value for _ in range(n_reports)]
            majority = np.bincount(reports, minlength=protocol.g).argmax()
            hits += int(majority == true_hash)
        recovery_rate = hits / n_clients
        # The attacker can at best learn the memoized symbol, which equals the
        # true hash only with probability p1 < 1.
        assert recovery_rate < params.p1 + 0.1
