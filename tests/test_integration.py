"""End-to-end integration tests across packages.

These tests exercise realistic (scaled-down) paper scenarios: datasets feed
the simulation harness, whose results are scored with the paper metrics,
persisted through the results store and summarized by the experiment report
helpers — i.e. the same path the benchmark harness uses.
"""

import numpy as np
import pytest

from repro import BiLOLOHA, LOSUE, LSUE, OLOLOHA, __version__
from repro.datasets import make_dataset, make_syn
from repro.experiments.report import format_table
from repro.simulation import simulate_protocol
from repro.store import ReportStore, ResultsStore


class TestPublicAPI:
    def test_version_is_exposed(self):
        assert __version__

    def test_top_level_exports_importable(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), f"missing export {name}"

    def test_quickstart_docstring_flow(self):
        """The flow advertised in the package docstring works as written."""
        protocol = OLOLOHA(k=100, eps_inf=2.0, eps_1=1.0)
        clients = [protocol.create_client(rng) for rng in range(500)]
        values = np.random.default_rng(0).integers(0, 100, size=500)
        reports = [
            client.report(int(value), rng=i)
            for i, (client, value) in enumerate(zip(clients, values))
        ]
        estimate = protocol.estimate_frequencies(reports)
        assert estimate.shape == (100,)
        assert abs(estimate.sum() - 1.0) < 0.8


class TestPaperScenarioSmallScale:
    """A miniature version of the Figure 3 / Figure 4 story on Syn."""

    @pytest.fixture(scope="class")
    def results(self):
        dataset = make_syn(n_users=1200, n_rounds=12, k=48, rng=5)
        eps_inf, eps_1 = 2.0, 1.0
        protocols = {
            "RAPPOR": LSUE(dataset.k, eps_inf, eps_1),
            "L-OSUE": LOSUE(dataset.k, eps_inf, eps_1),
            "BiLOLOHA": BiLOLOHA(dataset.k, eps_inf, eps_1),
            "OLOLOHA": OLOLOHA(dataset.k, eps_inf, eps_1),
        }
        return {
            name: simulate_protocol(protocol, dataset, rng=9)
            for name, protocol in protocols.items()
        }

    def test_all_protocols_produce_usable_estimates(self, results):
        for name, result in results.items():
            assert result.mse_avg < 0.05, f"{name} estimate far from the truth"

    def test_ololoha_utility_competitive_with_l_osue(self, results):
        assert results["OLOLOHA"].mse_avg < 3 * results["L-OSUE"].mse_avg

    def test_loloha_privacy_loss_far_below_rappor(self, results):
        assert results["BiLOLOHA"].eps_avg < results["RAPPOR"].eps_avg / 1.5
        assert results["OLOLOHA"].eps_avg < results["RAPPOR"].eps_avg

    def test_loloha_budget_within_theorem_bound(self, results):
        assert results["BiLOLOHA"].eps_avg <= results["BiLOLOHA"].worst_case_budget + 1e-9
        assert results["OLOLOHA"].eps_avg <= results["OLOLOHA"].worst_case_budget + 1e-9


class TestCollectionPipeline:
    def test_report_store_feeds_server_aggregation(self, rng):
        """Reports staged in the ReportStore aggregate to the same estimate as
        direct aggregation."""
        protocol = OLOLOHA(k=20, eps_inf=2.0, eps_1=1.0)
        n_users, n_rounds = 400, 3
        clients = [protocol.create_client(rng) for _ in range(n_users)]
        store = ReportStore(expected_users=n_users)
        values = np.random.default_rng(3).integers(0, 20, size=(n_users, n_rounds))
        direct_estimates = []
        for t in range(n_rounds):
            round_reports = []
            for user, client in enumerate(clients):
                report = client.report(int(values[user, t]), rng)
                store.add(t, user, report)
                round_reports.append(report)
            direct_estimates.append(protocol.estimate_frequencies(round_reports))
        for batch in store.iter_complete_rounds():
            staged = protocol.estimate_frequencies(batch.reports)
            assert np.allclose(staged, direct_estimates[batch.round_index])

    def test_results_persist_and_reload(self, tmp_path):
        dataset = make_dataset("syn", n_users=300, n_rounds=4, rng=1)
        result = simulate_protocol(OLOLOHA(dataset.k, 2.0, 1.0), dataset, rng=2)
        store = ResultsStore(tmp_path)
        store.save_json(
            "integration",
            {
                "protocol": result.protocol_name,
                "mse_avg": result.mse_avg,
                "eps_avg": result.eps_avg,
                "mse_by_round": result.mse_by_round,
            },
        )
        loaded = store.load_json("integration")
        assert loaded["protocol"] == "OLOLOHA"
        assert loaded["mse_avg"] == pytest.approx(result.mse_avg)
        rows = [{"protocol": result.protocol_name, "mse": result.mse_avg}]
        assert "OLOLOHA" in format_table(rows)
