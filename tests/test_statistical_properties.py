"""Chi-square goodness-of-fit checks of the aggregated sampling kernels.

The aggregated round paths never materialize per-user reports: they sample
the *marginal* distributions that the per-user randomization induces on the
support counts (see the derivations in ``docs/architecture.md``):

* :func:`~repro.simulation.kernels.grr_kernel` — each entry is kept with
  probability ``p`` and otherwise uniform over the other ``k - 1`` symbols;
* :func:`~repro.simulation.kernels.ue_binomial_counts_kernel` — column ``v``
  is ``Binomial(m[v], p) + Binomial(n - m[v], q)`` given ``m[v]`` memoized
  one-bits;
* :func:`~repro.simulation.kernels.grr_mixing_counts_kernel` — symbol ``v``
  is ``Binomial(m[v], p) + Binomial(n - m[v], q)`` with
  ``q = (1 - p) / (k - 1)`` given the memoized symbol counts ``m``;
* the LOLOHA round — value ``v`` is ``Binomial(D[v], p2) +
  Binomial(n - D[v], q2)`` given the memoized hash support
  ``D[v] = #{u : H_u(v) = m_u}``.

The existing draw-count tests pin the *randomness budget* of these paths;
these tests are their distributional counterpart: with fixed seeds and a
generous significance level they verify that what is sampled actually
follows the claimed marginals, at two ``(eps, k)`` points per kernel.

No scipy: binomial PMFs come from :func:`math.lgamma` and the chi-square
critical value from the Wilson–Hilferty cube-root normal approximation,
accurate to a few percent for every df used here — irrelevant next to the
orders-of-magnitude gap a genuinely wrong marginal produces.
"""

import math

import numpy as np
import pytest

from repro.longitudinal import BiLOLOHA, LGRR, LOSUE, LOUE, OLOLOHA
from repro.simulation.engines import LOLOHAEngine
from repro.simulation.kernels import (
    grr_kernel,
    grr_mixing_counts_kernel,
    support_from_hashes_kernel,
    ue_binomial_counts_kernel,
)

#: Standard normal quantiles for the one-sided alpha levels used here.  The
#: default test level is the generous alpha = 1e-4: with fixed seeds a
#: correct kernel passes deterministically and keeps passing across RNG
#: stream changes, while a wrong marginal overshoots the critical value by
#: orders of magnitude.
_Z_ALPHA_1E3 = 3.0902323
_Z_ALPHA_1E4 = 3.7190165


def chi_square_critical(df: int, z: float = _Z_ALPHA_1E4) -> float:
    """Wilson–Hilferty approximation of the chi-square upper quantile."""
    if df < 1:
        raise ValueError(f"df must be >= 1, got {df}")
    h = 2.0 / (9.0 * df)
    return df * (1.0 - h + z * math.sqrt(h)) ** 3


def binomial_pmf(n: int, p: float) -> np.ndarray:
    """PMF of Binomial(n, p) over 0..n, via lgamma (no scipy)."""
    if n == 0:
        return np.ones(1)
    ks = np.arange(n + 1, dtype=np.float64)
    log_coeff = (
        math.lgamma(n + 1)
        - np.array([math.lgamma(k + 1) + math.lgamma(n - k + 1) for k in ks])
    )
    with np.errstate(divide="ignore", invalid="ignore"):
        log_p = np.where(ks > 0, ks * np.log(p) if p > 0 else -np.inf, 0.0)
        log_q = np.where(n - ks > 0, (n - ks) * np.log1p(-p) if p < 1 else -np.inf, 0.0)
    pmf = np.exp(log_coeff + log_p + log_q)
    return pmf / pmf.sum()


def two_binomial_sum_pmf(m: int, p: float, n_rest: int, q: float) -> np.ndarray:
    """PMF of ``Binomial(m, p) + Binomial(n_rest, q)`` over 0..m+n_rest."""
    return np.convolve(binomial_pmf(m, p), binomial_pmf(n_rest, q))


def chi_square_statistic(observed: np.ndarray, expected: np.ndarray):
    """Pearson statistic after merging adjacent cells to expected >= 5.

    Returns ``(statistic, df)`` with ``df = merged cells - 1`` (the model has
    no estimated parameters — p, q and the conditioning counts are known).
    """
    merged_obs, merged_exp = [], []
    acc_obs = acc_exp = 0.0
    for obs, exp in zip(observed, expected):
        acc_obs += obs
        acc_exp += exp
        if acc_exp >= 5.0:
            merged_obs.append(acc_obs)
            merged_exp.append(acc_exp)
            acc_obs = acc_exp = 0.0
    if merged_exp:
        merged_obs[-1] += acc_obs
        merged_exp[-1] += acc_exp
    observed = np.asarray(merged_obs)
    expected = np.asarray(merged_exp)
    assert expected.size >= 2, "degenerate binning: broaden the sample"
    statistic = float(((observed - expected) ** 2 / expected).sum())
    return statistic, expected.size - 1


def assert_matches_two_binomial_marginal(
    samples: np.ndarray, m: int, p: float, n_rest: int, q: float
) -> None:
    """Chi-square GoF of integer ``samples`` against the two-binomial sum."""
    pmf = two_binomial_sum_pmf(m, p, n_rest, q)
    observed = np.bincount(samples.astype(np.int64), minlength=pmf.size)
    assert observed.size == pmf.size, "a sample fell outside the support"
    statistic, df = chi_square_statistic(observed, pmf * samples.size)
    assert statistic < chi_square_critical(df), (
        f"support-count marginal deviates from Binomial({m},{p:.4f}) + "
        f"Binomial({n_rest},{q:.4f}): chi2={statistic:.1f} at df={df} "
        f"(critical {chi_square_critical(df):.1f})"
    )


class TestChiSquareHelpers:
    def test_wilson_hilferty_against_known_quantiles(self):
        # chi2.ppf(0.999, df) reference values (scipy, computed offline).
        for df, reference in ((5, 20.515), (15, 37.697), (50, 86.661)):
            critical = chi_square_critical(df, z=_Z_ALPHA_1E3)
            assert critical == pytest.approx(reference, rel=0.02)

    def test_binomial_pmf_edges(self):
        assert binomial_pmf(4, 0.0)[0] == pytest.approx(1.0)
        assert binomial_pmf(4, 1.0)[-1] == pytest.approx(1.0)
        assert binomial_pmf(10, 0.3).sum() == pytest.approx(1.0)

    def test_statistic_rejects_a_wrong_distribution(self):
        """Sanity: the harness does flag a genuinely wrong marginal."""
        rng = np.random.default_rng(7)
        samples = rng.binomial(40, 0.5, size=4000)  # claim p=0.3: wrong
        pmf = binomial_pmf(40, 0.3)
        observed = np.bincount(samples, minlength=pmf.size)
        statistic, df = chi_square_statistic(observed, pmf * samples.size)
        assert statistic > chi_square_critical(df)


class TestGRRKernelMarginal:
    @pytest.mark.parametrize(
        "eps,k,seed", [(0.5, 8, 101), (3.0, 32, 102)], ids=["eps0.5-k8", "eps3-k32"]
    )
    def test_output_symbol_distribution(self, eps, k, seed):
        """GRR output is the claimed keep-or-uniform-other mixture."""
        p = math.exp(eps) / (math.exp(eps) + k - 1)
        q = (1.0 - p) / (k - 1)
        rng = np.random.default_rng(seed)
        true_value = 3
        n_samples = 40_000
        reports = grr_kernel(np.full(n_samples, true_value), k, p, rng)
        observed = np.bincount(reports, minlength=k)
        expected_probs = np.full(k, q)
        expected_probs[true_value] = p
        statistic, df = chi_square_statistic(observed, expected_probs * n_samples)
        assert statistic < chi_square_critical(df)


class TestUEBinomialCountsMarginal:
    @pytest.mark.parametrize(
        "protocol_cls,eps_inf,k,seed",
        [(LOSUE, 1.0, 16, 201), (LOUE, 4.0, 8, 202)],
        ids=["L-OSUE-eps1-k16", "L-OUE-eps4-k8"],
    )
    def test_column_counts_match_two_binomials(self, protocol_cls, eps_inf, k, seed):
        """Aggregated UE round counts follow Binomial(m,p2)+Binomial(n-m,q2)
        for the instantaneous parameters of real paper protocols."""
        protocol = protocol_cls(k, eps_inf, eps_inf / 2.0)
        params = protocol.chained_parameters
        n_users = 48
        rng = np.random.default_rng(seed)
        memo_ones = rng.integers(0, n_users + 1, size=k)
        memo_ones[0], memo_ones[1] = 0, n_users  # cover both degenerate columns
        n_trials = 3_000
        counts = np.stack([
            ue_binomial_counts_kernel(memo_ones, n_users, params.p2, params.q2, rng)
            for _ in range(n_trials)
        ])
        for column in (0, 1, 5, k - 1):
            assert_matches_two_binomial_marginal(
                counts[:, column],
                m=int(memo_ones[column]),
                p=params.p2,
                n_rest=n_users - int(memo_ones[column]),
                q=params.q2,
            )


class TestGRRMixingCountsMarginal:
    @pytest.mark.parametrize(
        "eps_inf,k,seed", [(1.0, 8, 301), (4.0, 16, 302)],
        ids=["eps1-k8", "eps4-k16"],
    )
    def test_symbol_counts_match_two_binomials(self, eps_inf, k, seed):
        """Per-symbol mixing counts collapse to the claimed two-binomial sum
        for the instantaneous GRR parameters of L-GRR."""
        protocol = LGRR(k, eps_inf, eps_inf / 2.0)
        p2 = protocol.chained_parameters.p2
        q2 = (1.0 - p2) / (k - 1)
        rng = np.random.default_rng(seed)
        symbol_counts = rng.multinomial(64, np.full(k, 1.0 / k))
        n_users = int(symbol_counts.sum())
        n_trials = 3_000
        counts = np.stack([
            grr_mixing_counts_kernel(symbol_counts, k, p2, rng)
            for _ in range(n_trials)
        ])
        for symbol in (0, k // 2, k - 1):
            assert_matches_two_binomial_marginal(
                counts[:, symbol],
                m=int(symbol_counts[symbol]),
                p=p2,
                n_rest=n_users - int(symbol_counts[symbol]),
                q=q2,
            )


class TestLOLOHASupportFoldMarginal:
    @pytest.mark.parametrize(
        "protocol_cls,eps_inf,k,seed",
        [(BiLOLOHA, 1.0, 16, 401), (OLOLOHA, 3.0, 24, 402)],
        ids=["BiLOLOHA-eps1-k16", "OLOLOHA-eps3-k24"],
    )
    def test_round_counts_match_memoized_support_binomials(
        self, protocol_cls, eps_inf, k, seed
    ):
        """Conditional on the memoized hash support D[v], LOLOHA round counts
        follow Binomial(D[v], p2) + Binomial(n - D[v], q2)."""
        protocol = protocol_cls(k, eps_inf, eps_inf / 2.0)
        params = protocol.chained_parameters
        n_users = 80
        rng = np.random.default_rng(seed)
        engine = LOLOHAEngine(protocol, n_users, rng)
        values = rng.integers(0, k, size=n_users)
        engine.run_round(values, rng)  # memoizes every (user, hash) pair

        # The engine's own memoized support, cross-checked against a direct
        # recomputation from the per-user hash tables and memoized symbols.
        def frozen(users, keys):  # no new pairs may appear below
            raise AssertionError("memoization changed under fixed values")

        users = np.arange(n_users)
        hashed = engine.hashed_domain[users, values].astype(np.int64)
        memoized = engine._state.resolve(hashed, frozen)
        support = support_from_hashes_kernel(
            engine.hashed_domain, memoized
        ).astype(np.int64)
        assert np.array_equal(engine._memoized_support.update(memoized), support)

        n_trials = 2_500
        counts = np.stack([engine.run_round(values, rng) for _ in range(n_trials)])
        for value in (0, k // 2, k - 1):
            assert_matches_two_binomial_marginal(
                counts[:, value],
                m=int(support[value]),
                p=params.p2,
                n_rest=n_users - int(support[value]),
                q=params.q2,
            )
