"""Tests for the evaluation metrics and the attack modules."""

import numpy as np
import pytest

from repro.attacks import averaging_attack_accuracy, change_detection_rate, detect_user_changes
from repro.datasets import make_uniform_changing
from repro.exceptions import ExperimentError
from repro.simulation.metrics import (
    averaged_longitudinal_privacy_loss,
    averaged_mse,
    mse_per_round,
    worst_case_privacy_loss,
)


class TestMetrics:
    def test_mse_of_identical_matrices_is_zero(self):
        matrix = np.random.default_rng(0).random((4, 6))
        assert averaged_mse(matrix, matrix) == 0.0

    def test_mse_per_round_shape(self):
        estimated = np.zeros((3, 5))
        true = np.ones((3, 5))
        assert mse_per_round(estimated, true).shape == (3,)
        assert averaged_mse(estimated, true) == pytest.approx(1.0)

    def test_mse_accepts_single_round_vectors(self):
        assert averaged_mse(np.zeros(5), np.zeros(5)) == 0.0

    def test_mse_shape_mismatch_raises(self):
        with pytest.raises(ExperimentError):
            averaged_mse(np.zeros((2, 3)), np.zeros((2, 4)))

    def test_privacy_loss_average(self):
        assert averaged_longitudinal_privacy_loss([1, 2, 3], 2.0) == pytest.approx(4.0)

    def test_privacy_loss_empty_population_raises(self):
        with pytest.raises(ExperimentError):
            averaged_longitudinal_privacy_loss([], 1.0)

    def test_privacy_loss_rejects_negative_counts(self):
        with pytest.raises(ExperimentError):
            averaged_longitudinal_privacy_loss([-1], 1.0)

    def test_worst_case_privacy_loss(self):
        assert worst_case_privacy_loss(5, 2.0) == 10.0
        with pytest.raises(ExperimentError):
            worst_case_privacy_loss(0, 2.0)


class TestDetectUserChanges:
    def test_all_changes_visible(self):
        buckets = np.asarray([0, 0, 1, 1, 2])
        keys = np.asarray([0, 0, 1, 1, 2])
        memo_equal = np.eye(3, dtype=bool)  # distinct keys have distinct memos
        assert detect_user_changes(buckets, keys, memo_equal) is True

    def test_colliding_memo_hides_a_change(self):
        buckets = np.asarray([0, 1])
        keys = np.asarray([0, 1])
        memo_equal = np.ones((2, 2), dtype=bool)  # memoized responses collide
        assert detect_user_changes(buckets, keys, memo_equal) is False

    def test_no_changes_returns_false(self):
        buckets = np.asarray([3, 3, 3])
        keys = np.asarray([0, 0, 0])
        assert detect_user_changes(buckets, keys, np.eye(1, dtype=bool)) is False

    def test_length_mismatch_raises(self):
        with pytest.raises(ExperimentError):
            detect_user_changes(np.asarray([0, 1]), np.asarray([0]), np.eye(2, dtype=bool))


class TestChangeDetectionAttack:
    @pytest.fixture(scope="class")
    def changing_dataset(self):
        return make_uniform_changing(
            k=30, n_users=600, n_rounds=25, change_probability=0.4, name="attack", rng=0
        )

    def test_utility_oriented_configuration_is_fully_detectable(self, changing_dataset):
        result = change_detection_rate(changing_dataset, eps_inf=2.0, d=changing_dataset.k, rng=1)
        assert result.fraction_fully_detected > 0.9

    def test_privacy_oriented_configuration_is_rarely_detectable(self, changing_dataset):
        result = change_detection_rate(changing_dataset, eps_inf=2.0, d=1, rng=1)
        assert result.fraction_fully_detected < 0.05

    def test_result_counts_are_consistent(self, changing_dataset):
        result = change_detection_rate(changing_dataset, eps_inf=1.0, d=1, rng=2)
        assert 0 <= result.n_fully_detected <= result.n_users_with_changes <= result.n_users
        assert result.fraction_fully_detected == pytest.approx(
            result.n_fully_detected / result.n_users
        )

    def test_bucketized_attack_runs(self, changing_dataset):
        result = change_detection_rate(changing_dataset, eps_inf=2.0, d=2, b=10, rng=3)
        assert result.b == 10
        assert result.d == 2


class TestAveragingAttack:
    def test_accuracy_grows_with_observations(self):
        few = averaging_attack_accuracy(k=20, epsilon=1.0, n_reports=2, n_victims=300, rng=0)
        many = averaging_attack_accuracy(k=20, epsilon=1.0, n_reports=200, n_victims=300, rng=0)
        assert many.accuracy > few.accuracy
        assert many.accuracy > 0.9

    def test_single_report_close_to_keep_probability(self):
        result = averaging_attack_accuracy(k=10, epsilon=1.0, n_reports=1, n_victims=2000, rng=1)
        expected_p = np.exp(1.0) / (np.exp(1.0) + 9)
        assert result.baseline_accuracy == pytest.approx(expected_p, abs=0.05)

    def test_result_metadata(self):
        result = averaging_attack_accuracy(k=5, epsilon=0.5, n_reports=3, n_victims=50, rng=2)
        assert result.k == 5
        assert result.epsilon == 0.5
        assert result.n_reports == 3
