"""Unit tests for the internal validation helpers."""

import numpy as np
import pytest

from repro._validation import (
    as_rng,
    require_domain_size,
    require_epsilon,
    require_epsilon_pair,
    require_in_range,
    require_int_at_least,
    require_non_negative,
    require_positive,
    require_probability,
    validate_value_in_domain,
    validate_values_array,
)
from repro.exceptions import DomainError, ParameterError


class TestScalarValidators:
    def test_require_positive_accepts_positive(self):
        assert require_positive(1.5, "x") == 1.5

    @pytest.mark.parametrize("value", [0.0, -1.0, float("inf"), float("nan")])
    def test_require_positive_rejects_invalid(self, value):
        with pytest.raises(ParameterError):
            require_positive(value, "x")

    def test_require_non_negative_accepts_zero(self):
        assert require_non_negative(0.0, "x") == 0.0

    def test_require_non_negative_rejects_negative(self):
        with pytest.raises(ParameterError):
            require_non_negative(-0.1, "x")

    def test_require_probability_inclusive_bounds(self):
        assert require_probability(0.0, "p") == 0.0
        assert require_probability(1.0, "p") == 1.0

    def test_require_probability_exclusive_bounds(self):
        with pytest.raises(ParameterError):
            require_probability(0.0, "p", inclusive=False)
        with pytest.raises(ParameterError):
            require_probability(1.0, "p", inclusive=False)

    def test_require_probability_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            require_probability(1.2, "p")

    def test_require_in_range(self):
        assert require_in_range(0.5, 0.0, 1.0, "x") == 0.5
        with pytest.raises(ParameterError):
            require_in_range(2.0, 0.0, 1.0, "x")


class TestIntegerValidators:
    def test_require_int_at_least_accepts_numpy_integers(self):
        assert require_int_at_least(np.int64(5), 2, "k") == 5

    def test_require_int_at_least_rejects_bool(self):
        with pytest.raises(ParameterError):
            require_int_at_least(True, 0, "k")

    def test_require_int_at_least_rejects_float(self):
        with pytest.raises(ParameterError):
            require_int_at_least(3.0, 1, "k")

    def test_require_int_at_least_rejects_below_minimum(self):
        with pytest.raises(ParameterError):
            require_int_at_least(1, 2, "k")

    def test_require_domain_size_default_minimum_is_two(self):
        assert require_domain_size(2) == 2
        with pytest.raises(ParameterError):
            require_domain_size(1)


class TestEpsilonValidators:
    def test_require_epsilon_accepts_positive(self):
        assert require_epsilon(0.5) == 0.5

    def test_require_epsilon_rejects_zero(self):
        with pytest.raises(ParameterError):
            require_epsilon(0.0)

    def test_epsilon_pair_requires_strict_order(self):
        assert require_epsilon_pair(1.0, 2.0) == (1.0, 2.0)
        with pytest.raises(ParameterError):
            require_epsilon_pair(2.0, 2.0)
        with pytest.raises(ParameterError):
            require_epsilon_pair(3.0, 2.0)


class TestDomainValidators:
    def test_validate_value_in_domain_accepts_boundaries(self):
        assert validate_value_in_domain(0, 10) == 0
        assert validate_value_in_domain(9, 10) == 9

    def test_validate_value_in_domain_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            validate_value_in_domain(10, 10)
        with pytest.raises(DomainError):
            validate_value_in_domain(-1, 10)

    def test_validate_value_in_domain_rejects_non_integers(self):
        with pytest.raises(DomainError):
            validate_value_in_domain(1.5, 10)

    def test_validate_values_array_accepts_integer_like_floats(self):
        result = validate_values_array(np.asarray([1.0, 2.0]), 5)
        assert result.dtype == np.int64
        assert list(result) == [1, 2]

    def test_validate_values_array_rejects_fractional(self):
        with pytest.raises(DomainError):
            validate_values_array(np.asarray([1.5]), 5)

    def test_validate_values_array_rejects_out_of_range(self):
        with pytest.raises(DomainError):
            validate_values_array([0, 5], 5)

    def test_validate_values_array_empty_passthrough(self):
        assert validate_values_array([], 5).size == 0


class TestAsRng:
    def test_none_returns_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_integer_seed_is_deterministic(self):
        a = as_rng(42).integers(0, 1000, size=5)
        b = as_rng(42).integers(0, 1000, size=5)
        assert np.array_equal(a, b)

    def test_existing_generator_is_returned_unchanged(self):
        generator = np.random.default_rng(0)
        assert as_rng(generator) is generator

    def test_invalid_type_raises(self):
        with pytest.raises(ParameterError):
            as_rng("not-an-rng")
