"""Random-number-generation utilities.

Every stochastic component of the library accepts an optional ``rng`` argument
(``None``, an integer seed or a :class:`numpy.random.Generator`).  This module
adds helpers for deriving independent per-user / per-round streams from a
single root seed so that large simulations are reproducible yet do not share
one generator across logically independent actors.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Union

import numpy as np

from ._validation import as_rng

RngLike = Union[None, int, np.random.Generator, np.random.SeedSequence]

__all__ = [
    "RngLike",
    "derive_seed_sequences",
    "derive_generators",
    "spawn_child",
    "stream_for",
    "bit_generator_state",
]


def derive_seed_sequences(root: RngLike, count: int) -> List[np.random.SeedSequence]:
    """Derive ``count`` independent child :class:`~numpy.random.SeedSequence`.

    This is the picklable form of :func:`derive_generators`: the ``i``-th
    child seeds exactly the generator ``derive_generators(root, count)[i]``,
    so work can be sharded across processes (each worker builds its generator
    locally with ``np.random.default_rng(child)``) while remaining
    bit-identical to the serial execution.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(root, np.random.SeedSequence):
        seq = root
    elif isinstance(root, np.random.Generator):
        # Use the generator itself to produce a child seed; this keeps the
        # call deterministic with respect to the generator state.
        seq = np.random.SeedSequence(int(root.integers(0, 2**63 - 1)))
    elif root is None:
        seq = np.random.SeedSequence()
    else:
        seq = np.random.SeedSequence(int(root))
    return seq.spawn(count)


def derive_generators(root: RngLike, count: int) -> List[np.random.Generator]:
    """Derive ``count`` statistically independent generators from ``root``.

    The derivation uses :class:`numpy.random.SeedSequence` spawning, which is
    the supported way of creating parallel streams.  Passing the same root
    seed always yields the same list of generators.
    """
    return [np.random.default_rng(child) for child in derive_seed_sequences(root, count)]


def spawn_child(rng: RngLike) -> np.random.Generator:
    """Return a single independent child generator derived from ``rng``."""
    return derive_generators(rng, 1)[0]


def stream_for(root: RngLike, *labels: int) -> np.random.Generator:
    """Return a generator keyed by a tuple of integer labels.

    This is convenient for addressing a stable stream per ``(user, round)``
    pair without materializing every stream up front::

        rng = stream_for(seed, user_index, round_index)
    """
    if isinstance(root, np.random.Generator):
        root_entropy = int(root.integers(0, 2**63 - 1))
    elif isinstance(root, np.random.SeedSequence):
        root_entropy = root.entropy if isinstance(root.entropy, int) else 0
    elif root is None:
        root_entropy = int(np.random.SeedSequence().entropy)
    else:
        root_entropy = int(root)
    seq = np.random.SeedSequence([root_entropy, *[int(label) for label in labels]])
    return np.random.default_rng(seq)


def bit_generator_state(rng: RngLike) -> dict:
    """Return a snapshot of the underlying bit-generator state (for debugging)."""
    generator = as_rng(rng)
    return generator.bit_generator.state


def iter_seeds(root: RngLike, count: int) -> Iterator[int]:
    """Yield ``count`` reproducible integer seeds derived from ``root``."""
    for generator in derive_generators(root, count):
        yield int(generator.integers(0, 2**31 - 1))
