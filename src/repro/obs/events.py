"""Structured event log: an append-only, schema-versioned JSONL timeline.

Metrics answer "how much / how fast"; the event log answers "what happened,
in what order".  Every record is one JSON object on its own line with a
fixed envelope —

``v``
    schema version (currently :data:`SCHEMA_VERSION`),
``ts``
    Unix wall-clock seconds (float),
``component``
    the emitting subsystem (``"coordinator"``, ``"worker"``, ``"sweep"`` …),
``event``
    the event name (``"lease_requeue"``, ``"task_error"`` …),
``run_id``
    an operator-chosen correlation id shared by every process of one run —

plus free-form event-specific fields.  Records are appended through
:func:`repro._atomicio.atomic_append_line`, a single fsynced ``O_APPEND``
write per record, so coordinator and worker processes can share one file
and a crash never leaves a torn line.

The module keeps one process-global default log (:func:`set_default_event_log`,
installed by the CLI ``--events`` flag); :func:`emit_event` is a no-op until
one is installed, so instrumented code paths cost one ``None`` check when
event logging is off.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Optional, Union

from .._atomicio import atomic_append_line
from ..exceptions import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "EventLog",
    "emit_event",
    "get_default_event_log",
    "set_default_event_log",
    "read_events",
]

#: Bump when the envelope changes shape; readers check it.
SCHEMA_VERSION = 1

#: Envelope keys every record carries, in serialization order.
_ENVELOPE_KEYS = ("v", "ts", "component", "event", "run_id")


def _jsonable(value: object) -> object:
    """Best-effort conversion of event field values to JSON-friendly types."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


class EventLog:
    """One append-only JSONL event sink bound to a path.

    Parameters
    ----------
    path:
        Target JSONL file; parent directories are created.
    component:
        Default ``component`` of records emitted through this log (an
        :meth:`emit` call may override it per record).
    run_id:
        Correlation id stamped into every record.
    fsync:
        Whether each append is fsynced (default ``True``); turn off only
        for high-rate soft telemetry.
    clock:
        Wall-clock source, a test seam.
    """

    def __init__(
        self,
        path: Union[str, Path],
        component: str = "",
        run_id: str = "",
        fsync: bool = True,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.component = str(component)
        self.run_id = str(run_id)
        self._fsync = bool(fsync)
        self._clock = clock
        self._lock = threading.Lock()
        self.emitted = 0

    def emit(
        self, event: str, component: Optional[str] = None, **fields: object
    ) -> Dict[str, object]:
        """Append one record; returns the dict that was written.

        Free-form ``fields`` may not shadow the envelope keys — an event
        that silently overwrote its own timestamp would be unauditable.
        """
        for key in _ENVELOPE_KEYS:
            if key in fields:
                raise ReproError(
                    f"event field {key!r} would shadow the record envelope"
                )
        record: Dict[str, object] = {
            "v": SCHEMA_VERSION,
            "ts": float(self._clock()),
            "component": self.component if component is None else str(component),
            "event": str(event),
            "run_id": self.run_id,
        }
        for key, value in fields.items():
            record[key] = _jsonable(value)
        line = json.dumps(record, separators=(",", ":"))
        with self._lock:
            atomic_append_line(self.path, line, fsync=self._fsync)
            self.emitted += 1
        return record


# --------------------------------------------------------------------- #
# Process-global default log
# --------------------------------------------------------------------- #
_default_log: Optional[EventLog] = None
_default_lock = threading.Lock()


def set_default_event_log(log: Optional[EventLog]) -> Optional[EventLog]:
    """Install (or with ``None`` remove) the process-global event log."""
    global _default_log
    with _default_lock:
        previous, _default_log = _default_log, log
    return previous


def get_default_event_log() -> Optional[EventLog]:
    return _default_log


def emit_event(event: str, component: str = "", **fields: object) -> Optional[dict]:
    """Emit to the default log; a cheap no-op when none is installed."""
    log = _default_log
    if log is None:
        return None
    return log.emit(event, component=component or None, **fields)


# --------------------------------------------------------------------- #
# Reading
# --------------------------------------------------------------------- #
def iter_events(path: Union[str, Path]) -> Iterator[Dict[str, object]]:
    """Yield validated records of one JSONL event file, in file order.

    Raises :class:`~repro.exceptions.ReproError` on a malformed line, a
    missing envelope key or an unknown schema version — a timeline that
    cannot be trusted end to end is worse than none.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ReproError(
                    f"{path}:{line_no}: not valid JSON ({error})"
                ) from None
            if not isinstance(record, dict):
                raise ReproError(f"{path}:{line_no}: record is not an object")
            missing = [key for key in _ENVELOPE_KEYS if key not in record]
            if missing:
                raise ReproError(
                    f"{path}:{line_no}: record is missing envelope keys {missing}"
                )
            if record["v"] != SCHEMA_VERSION:
                raise ReproError(
                    f"{path}:{line_no}: unsupported event schema version "
                    f"{record['v']!r} (expected {SCHEMA_VERSION})"
                )
            yield record


def read_events(path: Union[str, Path]) -> List[Dict[str, object]]:
    """All validated records of one JSONL event file, in file order."""
    return list(iter_events(path))
