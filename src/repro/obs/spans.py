"""Lightweight span tracing: timed ``with`` blocks feeding histograms.

``with span("shard.run", shard_id=3): ...`` measures the block's wall and
CPU time and records them into two histograms of the default registry —
``repro_span_seconds{span="shard.run"}`` and
``repro_span_cpu_seconds{span="shard.run"}`` — plus a ``repro_spans_total``
counter.  When span events are enabled, each completed span additionally
appends a ``span`` record (name, wall/CPU seconds, the call's keyword
fields) to the default event log.

Tracing is **off by default** and the disabled path is near-zero cost: one
module-global bool check and a shared no-op context manager, no allocation,
no clock reads.  That keeps hot simulation loops unaffected until an
operator opts in (the CLI enables tracing whenever ``--metrics-port`` or
``--events`` is given, or via ``REPRO_OBS_TRACE=1``).

Spans never touch any randomness stream, so estimates are bit-identical
with tracing on or off.
"""

from __future__ import annotations

import os
import time
from typing import Dict, Optional

from .events import emit_event
from .metrics import MetricsRegistry, default_registry

__all__ = [
    "span",
    "configure_tracing",
    "tracing_enabled",
]

#: Environment switch: set to ``1``/``true`` to enable tracing at import.
TRACE_ENV_VAR = "REPRO_OBS_TRACE"

_enabled = False
_span_events = False
_registry: Optional[MetricsRegistry] = None  # None = default_registry()


class _NoopSpan:
    """The shared disabled-path context manager; does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "component", "fields", "_wall0", "_cpu0")

    def __init__(self, name: str, component: str, fields: Dict[str, object]) -> None:
        self.name = name
        self.component = component
        self.fields = fields

    def __enter__(self) -> "_Span":
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type: object, *exc_info: object) -> bool:
        wall = time.perf_counter() - self._wall0
        cpu = time.process_time() - self._cpu0
        registry = _registry if _registry is not None else default_registry()
        label = registry.histogram(
            "repro_span_seconds", "Wall-clock duration of traced spans."
        ).labels(span=self.name)
        label.observe(wall)
        registry.histogram(
            "repro_span_cpu_seconds", "CPU time of traced spans."
        ).labels(span=self.name).observe(cpu)
        registry.counter(
            "repro_spans_total", "Completed traced spans."
        ).labels(span=self.name).inc()
        if _span_events:
            emit_event(
                "span",
                component=self.component,
                span=self.name,
                wall_seconds=round(wall, 6),
                cpu_seconds=round(cpu, 6),
                error=exc_type is not None,
                **self.fields,
            )
        return False


def span(name: str, component: str = "", **fields: object):
    """A context manager timing one named block (no-op while disabled).

    ``fields`` are free-form span attributes; they reach the event log (when
    span events are on) but deliberately **not** the metric labels — label
    cardinality stays bounded by span names alone.
    """
    if not _enabled:
        return _NOOP
    return _Span(name, component, fields)


def configure_tracing(
    enabled: bool = True,
    registry: Optional[MetricsRegistry] = None,
    span_events: bool = False,
) -> None:
    """Turn span tracing on or off for this process.

    ``registry=None`` records into the process default registry (resolved
    at span exit, so a later :func:`~repro.obs.metrics.set_default_registry`
    is honored).  ``span_events=True`` additionally mirrors every completed
    span into the default event log.
    """
    global _enabled, _registry, _span_events
    _registry = registry
    _span_events = bool(span_events)
    _enabled = bool(enabled)


def tracing_enabled() -> bool:
    return _enabled


if os.environ.get(TRACE_ENV_VAR, "").strip().lower() in ("1", "true", "yes", "on"):
    configure_tracing(True)
