"""Repo-wide observability core: metrics, event logs and span tracing.

Three primitives shared by every layer of the reproduction stack:

* :mod:`repro.obs.metrics` — :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families in a :class:`MetricsRegistry` with a
  Prometheus text exposition and a process-global default registry;
* :mod:`repro.obs.events` — an append-only, schema-versioned JSONL event
  log with crash-safe appends (:class:`EventLog`, :func:`emit_event`);
* :mod:`repro.obs.spans` — ``with span("shard.run", shard_id=…)`` timing
  blocks recording wall/CPU histograms, near-zero cost when disabled.

:class:`MetricsExporter` (:mod:`repro.obs.http`) serves ``/metrics`` and
``/healthz`` from a background thread for synchronous processes, and
:mod:`repro.obs.status` turns either a scrape or the on-disk spool and
checkpoint files into the ``repro-ldp status`` dashboard.
"""

from .events import (
    SCHEMA_VERSION,
    EventLog,
    emit_event,
    get_default_event_log,
    iter_events,
    read_events,
    set_default_event_log,
)
from .http import MetricsExporter
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)
from .spans import configure_tracing, span, tracing_enabled

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "default_registry",
    "set_default_registry",
    "EventLog",
    "SCHEMA_VERSION",
    "emit_event",
    "get_default_event_log",
    "set_default_event_log",
    "iter_events",
    "read_events",
    "MetricsExporter",
    "span",
    "configure_tracing",
    "tracing_enabled",
]
