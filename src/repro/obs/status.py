"""The data layer behind ``repro-ldp status``: fleet/sweep progress snapshots.

Two sources, one :class:`StatusSnapshot`:

* **a metrics endpoint** — :func:`snapshot_from_metrics_text` parses the
  Prometheus exposition a ``--metrics-port`` process serves (coordinator
  gauges, worker counters, sweep counters);
* **the spool / checkpoint files** — :func:`snapshot_from_spool` counts the
  task/claim/summary files of a file-queue directory and reads the progress
  summary the coordinator embeds in its ``.npz`` checkpoint, so a fleet
  with no metrics port up can still be observed.

:func:`render_status` turns one snapshot (plus, in ``--watch`` mode, its
predecessor for throughput and ETA) into the text dashboard.
"""

from __future__ import annotations

import json
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..exceptions import ReproError

__all__ = [
    "StatusSnapshot",
    "parse_exposition",
    "snapshot_from_metrics_text",
    "snapshot_from_spool",
    "render_status",
]

#: ``name{labels} value`` | ``name value`` — the slice of the exposition
#: format our own renderer emits.
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)$"
)
_LABEL_PAIR_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    return value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")


def parse_exposition(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse Prometheus text exposition into ``name -> [(labels, value)]``.

    Comment/``# TYPE``/``# HELP`` lines are skipped; histogram series appear
    under their ``_bucket``/``_sum``/``_count`` sample names.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ReproError(f"unparseable exposition line: {line!r}")
        labels = {
            name: _unescape_label(value)
            for name, value in _LABEL_PAIR_RE.findall(match.group("labels") or "")
        }
        raw = match.group("value")
        value = float("inf") if raw == "+Inf" else float(raw)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


@dataclass
class StatusSnapshot:
    """One observation of fleet/sweep progress, however it was obtained."""

    source: str
    captured_at: float
    shards_total: Optional[int] = None
    shards_done: Optional[int] = None
    shards_pending: Optional[int] = None
    shards_leased: Optional[int] = None
    #: display-name -> value for the counters worth a dashboard line.
    counters: Dict[str, float] = field(default_factory=dict)
    #: sweep progress when sweep metrics are present.
    sweep_done: Optional[int] = None
    sweep_skipped: Optional[int] = None


def _first_value(
    samples: Dict[str, List[Tuple[Dict[str, str], float]]], name: str
) -> Optional[float]:
    series = samples.get(name)
    if not series:
        return None
    return sum(value for _labels, value in series)


def snapshot_from_metrics_text(text: str, source: str = "metrics") -> StatusSnapshot:
    """Build a snapshot from one ``/metrics`` scrape."""
    samples = parse_exposition(text)
    snapshot = StatusSnapshot(source=source, captured_at=time.time())

    total = _first_value(samples, "repro_coord_shards_total")
    if total is not None:
        snapshot.shards_total = int(total)
        done = _first_value(samples, "repro_coord_shards_done") or 0.0
        pending = _first_value(samples, "repro_coord_shards_pending")
        snapshot.shards_done = int(done)
        if pending is not None:
            snapshot.shards_pending = int(pending)

    for display, metric in (
        ("requeued", "repro_coord_tasks_requeued_total"),
        ("republished", "repro_coord_tasks_republished_total"),
        ("duplicates", "repro_coord_duplicates_total"),
        ("foreign", "repro_coord_foreign_total"),
        ("rejected", "repro_transport_rejected_total"),
        ("worker_claims", "repro_worker_tasks_claimed_total"),
        ("worker_summaries", "repro_worker_summaries_total"),
        ("worker_errors", "repro_worker_errors_total"),
        ("worker_idle_s", "repro_worker_idle_seconds_total"),
    ):
        value = _first_value(samples, metric)
        if value is not None:
            snapshot.counters[display] = value

    sweep = samples.get("repro_sweep_points_total")
    if sweep:
        by_status = {labels.get("status", ""): value for labels, value in sweep}
        snapshot.sweep_done = int(by_status.get("done", 0))
        snapshot.sweep_skipped = int(by_status.get("skipped", 0))
    return snapshot


def snapshot_from_spool(
    queue_dir: Union[str, Path],
    checkpoint: Optional[Union[str, Path]] = None,
) -> StatusSnapshot:
    """Build a snapshot from a file-queue spool directory (no port needed).

    ``tasks/`` holds unclaimed work, ``claims/`` leased work and
    ``summaries/`` delivered results; the coordinator's checkpoint (when
    given, or found as ``checkpoint.npz`` next to the spool) contributes
    the absorbed-shard progress summary.
    """
    root = Path(queue_dir)
    if not root.is_dir():
        raise ReproError(f"queue directory {root} does not exist")
    snapshot = StatusSnapshot(source=f"spool {root}", captured_at=time.time())
    unclaimed = len(list((root / "tasks").glob("task-*")))
    leased = len(list((root / "claims").glob("task-*")))
    delivered = len(list((root / "summaries").glob("summary-*")))
    snapshot.shards_leased = leased
    snapshot.counters["spool_unclaimed"] = float(unclaimed)
    snapshot.counters["spool_delivered"] = float(delivered)

    checkpoint_path = Path(checkpoint) if checkpoint is not None else None
    if checkpoint_path is not None and checkpoint_path.exists():
        import numpy as np

        with np.load(checkpoint_path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"][()]))
        progress = meta.get("progress")
        if isinstance(progress, dict):
            snapshot.shards_total = int(progress.get("n_shards", 0)) or None
            snapshot.shards_done = int(progress.get("done", 0))
            snapshot.shards_pending = int(progress.get("pending", 0))
            for key in ("requeued", "republished", "duplicates", "foreign"):
                if key in progress:
                    snapshot.counters[key] = float(progress[key])
        else:  # pre-observability checkpoint: count the completed list
            completed = meta.get("completed", [])
            snapshot.shards_total = int(meta.get("n_shards", 0)) or None
            snapshot.shards_done = len(completed)
            if snapshot.shards_total:
                snapshot.shards_pending = snapshot.shards_total - len(completed)
    elif snapshot.shards_total is None:
        # Without a checkpoint the spool itself is the best estimate:
        # delivered summaries stand in for done shards.
        snapshot.shards_done = delivered
        snapshot.shards_pending = unclaimed + leased
        total = unclaimed + leased + delivered
        snapshot.shards_total = total or None
    return snapshot


def render_status(
    snapshot: StatusSnapshot, previous: Optional[StatusSnapshot] = None
) -> str:
    """The text dashboard of one snapshot (plus throughput vs. a previous)."""
    stamp = time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(snapshot.captured_at))
    lines = [f"repro-ldp status — {snapshot.source} ({stamp})"]

    if snapshot.shards_total is not None:
        parts = [f"{snapshot.shards_total} total"]
        if snapshot.shards_done is not None:
            parts.append(f"{snapshot.shards_done} done")
        if snapshot.shards_leased is not None:
            parts.append(f"{snapshot.shards_leased} leased")
        if snapshot.shards_pending is not None:
            parts.append(f"{snapshot.shards_pending} pending")
        lines.append("shards: " + " | ".join(parts))
        if (
            previous is not None
            and snapshot.shards_done is not None
            and previous.shards_done is not None
        ):
            elapsed = snapshot.captured_at - previous.captured_at
            delta = snapshot.shards_done - previous.shards_done
            if elapsed > 0:
                rate = delta / elapsed
                line = f"throughput: {rate:.2f} shards/s"
                if rate > 0 and snapshot.shards_pending:
                    line += f" (ETA {snapshot.shards_pending / rate:.0f}s)"
                lines.append(line)

    if snapshot.sweep_done is not None:
        lines.append(
            f"sweep: {snapshot.sweep_done} points done, "
            f"{snapshot.sweep_skipped or 0} skipped (resume)"
        )
        if previous is not None and previous.sweep_done is not None:
            elapsed = snapshot.captured_at - previous.captured_at
            if elapsed > 0:
                rate = (snapshot.sweep_done - previous.sweep_done) / elapsed
                lines.append(f"sweep throughput: {rate:.2f} points/s")

    if snapshot.counters:
        rendered = " ".join(
            f"{name}={value:g}" for name, value in sorted(snapshot.counters.items())
        )
        lines.append(f"counters: {rendered}")
    if len(lines) == 1:
        lines.append("no fleet or sweep series found at this source")
    return "\n".join(lines)
