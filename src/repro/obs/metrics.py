"""Counters, gauges and histograms with a Prometheus text exposition.

This is the metrics core of the repo-wide observability layer
(:mod:`repro.obs`).  Every long-running surface threads a
:class:`MetricsRegistry` through its components — the live ingestion
service renders one on ``GET /metrics``, and the distributed coordinator,
workers, sweep executor and simulation engines record into the
**process-global default registry** (:func:`default_registry`) that
``--metrics-port`` exposes over HTTP — all in the Prometheus text format
(version 0.0.4), the same surface every scrape-based monitoring stack
understands, with zero new dependencies.

The model is deliberately small:

* :class:`Counter` — monotonically increasing totals
  (``repro_ingest_reports_accepted_total``);
* :class:`Gauge` — point-in-time values that move both ways
  (``repro_ingest_queue_depth``);
* :class:`Histogram` — cumulative-bucket latency distributions
  (``repro_ingest_seal_latency_seconds``) with ``_sum``/``_count`` series.

Each instrument supports an optional label set via :meth:`labels`
(``counter.labels(reason="auth").inc()``); the label-less instrument is
itself usable directly.  All mutation goes through one registry lock, so
instruments may be updated from the asyncio consumer while a scrape renders
the registry from another thread.

This module used to live at ``repro.service.metrics``; that path remains
importable as a deprecation shim.
"""

from __future__ import annotations

import math
import re
import threading
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..exceptions import ParameterError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

#: Default histogram buckets: latencies from 1 ms to 30 s.
DEFAULT_BUCKETS = (
    0.001, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)

LabelKey = Tuple[Tuple[str, str], ...]


def _format_value(value: float) -> str:
    """Prometheus sample formatting: integers without a trailing ``.0``."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 2**53:
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    pairs = key + extra
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label(value)}"' for name, value in pairs)
    return "{" + inner + "}"


def _label_key(labels: Dict[str, str]) -> LabelKey:
    for name in labels:
        if not _LABEL_RE.match(name):
            raise ParameterError(f"invalid metric label name {name!r}")
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class _Instrument:
    """Base: one named metric family holding per-label-set samples."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        if not _NAME_RE.match(name):
            raise ParameterError(f"invalid metric name {name!r}")
        self.name = name
        self.help = str(help_text)
        self._lock = lock

    def labels(self, **labels: str) -> "_Instrument":
        """A child bound to one label set; the parent stays usable label-less."""
        raise NotImplementedError

    def render(self) -> List[str]:
        raise NotImplementedError

    def _header(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} {self.kind}",
        ]


class _Scalar(_Instrument):
    """Shared machinery of counters and gauges: label-keyed float samples."""

    def __init__(self, name: str, help_text: str, lock: threading.Lock) -> None:
        super().__init__(name, help_text, lock)
        self._values: Dict[LabelKey, float] = {}

    def _add(self, key: LabelKey, amount: float) -> None:
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def _set(self, key: LabelKey, value: float) -> None:
        with self._lock:
            self._values[key] = float(value)

    def value(self, **labels: str) -> float:
        """Current sample of one label set (0 when never touched)."""
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            samples = sorted(self._values.items())
        lines = self._header()
        if not samples:
            # An instrument that exists but was never touched still exposes
            # its zero sample, so dashboards see the series from the start.
            samples = [((), 0.0)]
        for key, value in samples:
            lines.append(f"{self.name}{_render_labels(key)} {_format_value(value)}")
        return lines


class Counter(_Scalar):
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(
        self, name: str, help_text: str, lock: threading.Lock, key: LabelKey = ()
    ) -> None:
        super().__init__(name, help_text, lock)
        self._key = key

    def labels(self, **labels: str) -> "Counter":
        child = Counter.__new__(Counter)
        child.name, child.help, child._lock = self.name, self.help, self._lock
        child._values = self._values
        child._key = _label_key(labels)
        return child

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ParameterError(
                f"counter {self.name} cannot decrease (amount={amount})"
            )
        self._add(self._key, float(amount))


class Gauge(_Scalar):
    """A point-in-time value that can move both ways."""

    kind = "gauge"

    def __init__(
        self, name: str, help_text: str, lock: threading.Lock, key: LabelKey = ()
    ) -> None:
        super().__init__(name, help_text, lock)
        self._key = key

    def labels(self, **labels: str) -> "Gauge":
        child = Gauge.__new__(Gauge)
        child.name, child.help, child._lock = self.name, self.help, self._lock
        child._values = self._values
        child._key = _label_key(labels)
        return child

    def set(self, value: float) -> None:
        self._set(self._key, value)

    def inc(self, amount: float = 1.0) -> None:
        self._add(self._key, float(amount))

    def dec(self, amount: float = 1.0) -> None:
        self._add(self._key, -float(amount))


class Histogram(_Instrument):
    """Cumulative-bucket distribution with ``_sum`` and ``_count`` series."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        lock: threading.Lock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        key: LabelKey = (),
    ) -> None:
        super().__init__(name, help_text, lock)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(not math.isfinite(b) for b in bounds):
            raise ParameterError(
                f"histogram {name} needs at least one finite bucket bound"
            )
        if list(bounds) != sorted(set(bounds)):
            raise ParameterError(
                f"histogram {name} bucket bounds must be strictly increasing, "
                f"got {bounds}"
            )
        self._bounds = bounds
        # Per label set: per-bucket counts (+1 slot for +Inf), sum, count.
        self._state: Dict[LabelKey, Tuple[List[int], List[float]]] = {}
        self._key = key

    def labels(self, **labels: str) -> "Histogram":
        child = Histogram.__new__(Histogram)
        child.name, child.help, child._lock = self.name, self.help, self._lock
        child._bounds, child._state = self._bounds, self._state
        child._key = _label_key(labels)
        return child

    def observe(self, value: float) -> None:
        value = float(value)
        if not math.isfinite(value):
            raise ParameterError(
                f"histogram {self.name} cannot observe non-finite value {value!r}"
            )
        slot = bisect_left(self._bounds, value)
        with self._lock:
            if self._key not in self._state:
                self._state[self._key] = (
                    [0] * (len(self._bounds) + 1), [0.0, 0.0],
                )
            counts, totals = self._state[self._key]
            counts[slot] += 1
            totals[0] += value
            totals[1] += 1.0

    def count(self, **labels: str) -> int:
        """Number of observations of one label set."""
        with self._lock:
            state = self._state.get(_label_key(labels))
            return int(state[1][1]) if state else 0

    def render(self) -> List[str]:
        with self._lock:
            snapshot = {
                key: ([*counts], [*totals])
                for key, (counts, totals) in self._state.items()
            }
        lines = self._header()
        for key in sorted(snapshot):
            counts, (total, n) = snapshot[key]
            cumulative = 0
            for bound, bucket_count in zip(self._bounds, counts):
                cumulative += bucket_count
                lines.append(
                    f"{self.name}_bucket"
                    f"{_render_labels(key, (('le', _format_value(bound)),))} "
                    f"{cumulative}"
                )
            cumulative += counts[-1]
            lines.append(
                f"{self.name}_bucket{_render_labels(key, (('le', '+Inf'),))} "
                f"{cumulative}"
            )
            lines.append(f"{self.name}_sum{_render_labels(key)} {_format_value(total)}")
            lines.append(f"{self.name}_count{_render_labels(key)} {int(n)}")
        return lines


class MetricsRegistry:
    """A named collection of instruments with one text exposition.

    ``counter`` / ``gauge`` / ``histogram`` register-or-return: asking for an
    existing name of the same kind returns the registered instrument, so
    independent components can share a series without plumbing references;
    re-registering a name as a *different* kind is a configuration bug and
    raises :class:`~repro.exceptions.ParameterError`.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, _Instrument] = {}

    def _register(self, cls, name: str, help_text: str, **kwargs) -> _Instrument:
        with self._lock:
            existing = self._instruments.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ParameterError(
                    f"metric {name!r} is already registered as a "
                    f"{existing.kind}, cannot re-register as {cls.kind}"
                )
            return existing
        instrument = cls(name, help_text, threading.Lock(), **kwargs)
        with self._lock:
            return self._instruments.setdefault(name, instrument)

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._register(Counter, name, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._register(Gauge, name, help_text)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help_text, buckets=buckets)

    def get(self, name: str) -> Optional[_Instrument]:
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def render(self) -> str:
        """The full registry in Prometheus text exposition format."""
        with self._lock:
            instruments = [self._instruments[name] for name in sorted(self._instruments)]
        lines: List[str] = []
        for instrument in instruments:
            lines.extend(instrument.render())
        return "\n".join(lines) + "\n"


# --------------------------------------------------------------------- #
# Process-global default registry
# --------------------------------------------------------------------- #
# Instrumented components (coordinator, workers, sweep executor, simulation
# engines) record into this registry unless handed one explicitly, so a
# ``--metrics-port`` exporter started anywhere in the process sees every
# series.  Worker subprocesses get their own module state (and therefore
# their own registry); only the parent's registry is scraped.
_default_registry = MetricsRegistry()
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-global registry shared by every instrumented component."""
    return _default_registry


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one.

    Mainly a test hook: installing a fresh registry isolates counter
    assertions from whatever earlier code recorded.
    """
    global _default_registry
    if not isinstance(registry, MetricsRegistry):
        raise ParameterError(
            f"default registry must be a MetricsRegistry, got {type(registry).__name__}"
        )
    with _default_lock:
        previous, _default_registry = _default_registry, registry
    return previous
