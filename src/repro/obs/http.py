"""A threaded ``/metrics`` + ``/healthz`` exporter for synchronous processes.

The ingestion service is already an asyncio program and serves its registry
on its own front door; the coordinator, workers and sweeps are synchronous.
:class:`MetricsExporter` gives them the same scrape surface by running an
:class:`~repro.service.http.AsyncHttpServer` on a private event loop inside
a daemon thread:

* ``GET /metrics``  — the registry in Prometheus text format,
* ``GET /healthz``  — ``{"status": "ok", "uptime_seconds": …}``,

everything else answers 404.  ``start()`` returns the bound address (port 0
picks an ephemeral port), ``close()`` tears the loop down; both are safe to
call from the main thread while the work loop runs.
"""

from __future__ import annotations

import asyncio
import threading
import time
from typing import Optional, Tuple

from ..exceptions import ReproError
from .metrics import MetricsRegistry, default_registry

__all__ = ["MetricsExporter"]


class MetricsExporter:
    """Serves one registry's exposition from a background thread."""

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self._host = host
        self._port = int(port)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._address: Optional[Tuple[str, int]] = None
        self._started_at = 0.0
        self._startup_error: Optional[BaseException] = None

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ReproError("the metrics exporter is not started")
        return self._address

    async def _handle(self, request):
        from ..service.http import HttpResponse  # runtime import: http builds on obs

        if request.method != "GET":
            return HttpResponse.error(405, "only GET is supported")
        if request.path == "/metrics":
            self.registry.counter(
                "repro_metrics_scrapes_total", "Scrapes answered on /metrics."
            ).inc()
            return HttpResponse.text(self.registry.render())
        if request.path == "/healthz":
            return HttpResponse.json(
                {
                    "status": "ok",
                    "uptime_seconds": round(time.monotonic() - self._started_at, 3),
                }
            )
        return HttpResponse.error(404, f"unknown path {request.path!r}")

    def start(self) -> Tuple[str, int]:
        """Start serving; returns the bound ``(host, port)``."""
        from ..service.http import AsyncHttpServer

        if self._thread is not None:
            raise ReproError("the metrics exporter is already started")
        ready = threading.Event()

        def run() -> None:
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            self._loop = loop
            server = AsyncHttpServer(
                self._handle, self._host, self._port, metrics=self.registry
            )
            try:
                self._address = loop.run_until_complete(server.start())
            except BaseException as error:  # bind failure: surface in start()
                self._startup_error = error
                ready.set()
                loop.close()
                return
            self._started_at = time.monotonic()
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(server.close())
                loop.close()

        self._thread = threading.Thread(
            target=run, name="repro-metrics-exporter", daemon=True
        )
        self._thread.start()
        ready.wait()
        if self._startup_error is not None:
            self._thread.join()
            self._thread = None
            raise ReproError(
                f"cannot serve metrics on {self._host}:{self._port}: "
                f"{self._startup_error}"
            )
        return self.address

    def close(self) -> None:
        """Stop serving and join the exporter thread (idempotent)."""
        if self._loop is not None and self._thread is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10.0)
        self._thread = None
        self._loop = None

    def __enter__(self) -> "MetricsExporter":
        self.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
