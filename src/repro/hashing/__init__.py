"""Universal hash families used for local-hashing LDP protocols.

Local hashing (LH) protocols — and therefore LOLOHA — rely on a *universal*
family of hash functions ``H : [0..k) -> [0..g)``: for any two distinct inputs
the collision probability over the random choice of the function is at most
``1/g``.  This package provides several interchangeable families plus
diagnostics that empirically verify universality and output uniformity.

Public API
----------
``HashFunction``
    A single hash function with scalar and vectorized evaluation.
``UniversalHashFamily``
    Abstract base class; ``sample(rng)`` draws a random member function.
``MultiplyShiftHashFamily``
    Dietzfelbinger multiply-shift family for integer keys (fast, 2-universal).
``PolynomialHashFamily``
    Degree-``d`` polynomial modulo a Mersenne prime (``d``-independent).
``TabulationHashFamily``
    Simple tabulation hashing (3-independent, very uniform in practice).
``BlakeHashFamily``
    Seeded cryptographic (BLAKE2b) hashing, mirroring the seeded xxhash used
    by the reference LOLOHA / pure-LDP implementations.
``collision_rate``, ``empirical_universality``, ``uniformity_chi_square``
    Diagnostics from :mod:`repro.hashing.analysis`.
"""

from .families import (
    BlakeHashFamily,
    HashFunction,
    MultiplyShiftHashFamily,
    PolynomialHashFamily,
    TabulationHashFamily,
    UniversalHashFamily,
    family_from_name,
)
from .analysis import (
    collision_rate,
    empirical_universality,
    hashed_domain_histogram,
    uniformity_chi_square,
)

__all__ = [
    "HashFunction",
    "UniversalHashFamily",
    "MultiplyShiftHashFamily",
    "PolynomialHashFamily",
    "TabulationHashFamily",
    "BlakeHashFamily",
    "family_from_name",
    "collision_rate",
    "empirical_universality",
    "hashed_domain_histogram",
    "uniformity_chi_square",
]
