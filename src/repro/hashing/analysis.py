"""Diagnostics for hash families: collision rates, universality, uniformity.

These tools back the ablation study on hash-family choice (DESIGN.md §5) and
the property-based tests: LOLOHA's estimator only assumes that the family is
universal (pairwise collision probability at most ``1/g``), so any family that
passes :func:`empirical_universality` should yield statistically
indistinguishable estimation error.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import as_rng, require_domain_size, require_int_at_least
from ..rng import RngLike
from .families import UniversalHashFamily

__all__ = [
    "collision_rate",
    "empirical_universality",
    "hashed_domain_histogram",
    "uniformity_chi_square",
    "UniversalityReport",
]


@dataclass(frozen=True)
class UniversalityReport:
    """Result of an empirical universality check.

    Attributes
    ----------
    max_pair_collision_rate:
        The largest observed collision frequency over the tested input pairs.
    bound:
        The theoretical universal bound ``1/g`` (plus sampling slack).
    n_functions:
        Number of sampled hash functions.
    n_pairs:
        Number of distinct input pairs tested.
    satisfied:
        Whether every tested pair collided at a rate within the slackened
        bound.
    """

    max_pair_collision_rate: float
    bound: float
    n_functions: int
    n_pairs: int
    satisfied: bool


def hashed_domain_histogram(
    family: UniversalHashFamily, k: int, n_functions: int = 100, rng: RngLike = None
) -> np.ndarray:
    """Aggregate histogram of hash outputs over the whole domain.

    Samples ``n_functions`` functions, hashes the full domain ``[0..k)`` with
    each, and returns the pooled count per output cell.  For a well-behaved
    family the counts are close to uniform.
    """
    k = require_domain_size(k, "k")
    n_functions = require_int_at_least(n_functions, 1, "n_functions")
    generator = as_rng(rng)
    counts = np.zeros(family.g, dtype=np.int64)
    for _ in range(n_functions):
        hashed = family.sample(generator).hash_all(k)
        counts += np.bincount(hashed, minlength=family.g)
    return counts


def uniformity_chi_square(counts: np.ndarray) -> float:
    """Pearson chi-square statistic of observed cell counts against uniform.

    A value far above ``g - 1`` (the degrees of freedom) indicates a
    non-uniform family.  The statistic is returned rather than a p-value to
    avoid a scipy dependency in the core package; tests compare it against a
    generous multiple of the degrees of freedom.
    """
    counts = np.asarray(counts, dtype=np.float64)
    total = counts.sum()
    if total == 0:
        return 0.0
    expected = total / counts.size
    return float(((counts - expected) ** 2 / expected).sum())


def collision_rate(
    family: UniversalHashFamily,
    value_a: int,
    value_b: int,
    n_functions: int = 1000,
    rng: RngLike = None,
) -> float:
    """Fraction of sampled functions for which two distinct values collide."""
    if value_a == value_b:
        raise ValueError("collision_rate requires two distinct values")
    n_functions = require_int_at_least(n_functions, 1, "n_functions")
    generator = as_rng(rng)
    values = np.asarray([value_a, value_b], dtype=np.int64)
    collisions = 0
    for _ in range(n_functions):
        hashed = family.sample(generator).hash_array(values)
        if hashed[0] == hashed[1]:
            collisions += 1
    return collisions / n_functions


def empirical_universality(
    family: UniversalHashFamily,
    k: int,
    n_functions: int = 500,
    n_pairs: int = 30,
    slack: float = 3.0,
    rng: RngLike = None,
) -> UniversalityReport:
    """Empirically verify the universal-hashing property.

    Samples ``n_pairs`` random distinct input pairs and checks that the
    observed collision rate of each pair stays below ``1/g`` plus ``slack``
    binomial standard deviations.

    Returns a :class:`UniversalityReport`; ``report.satisfied`` is the
    pass/fail verdict.
    """
    k = require_domain_size(k, "k")
    generator = as_rng(rng)
    bound = 1.0 / family.g
    std = np.sqrt(bound * (1 - bound) / n_functions)
    threshold = bound + slack * std

    functions = [family.sample(generator) for _ in range(n_functions)]
    max_rate = 0.0
    tested = 0
    for _ in range(n_pairs):
        a, b = generator.choice(k, size=2, replace=False)
        values = np.asarray([a, b], dtype=np.int64)
        collisions = sum(1 for h in functions if h.hash_array(values)[0] == h.hash_array(values)[1])
        rate = collisions / n_functions
        max_rate = max(max_rate, rate)
        tested += 1
    return UniversalityReport(
        max_pair_collision_rate=max_rate,
        bound=threshold,
        n_functions=n_functions,
        n_pairs=tested,
        satisfied=max_rate <= threshold,
    )
