"""Universal hash families mapping an integer domain ``[0..k)`` to ``[0..g)``.

Each family exposes :meth:`UniversalHashFamily.sample`, which draws a random
member function.  Member functions are lightweight, picklable value objects
identified by their integer parameters, so a client can transmit "which hash
function I chose" to the server as required by LH / LOLOHA protocols.

All functions support scalar evaluation (``h(value)``) and vectorized
evaluation over numpy arrays (``h.hash_array(values)``), and expose
``h.hash_all(k)``: the image of the whole input domain, which is what the
server needs in order to compute support counts.
"""

from __future__ import annotations

import hashlib
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional, Tuple

import numpy as np

from .._validation import as_rng, require_domain_size, require_int_at_least
from ..exceptions import ParameterError
from ..rng import RngLike

__all__ = [
    "HashFunction",
    "UniversalHashFamily",
    "MultiplyShiftHashFamily",
    "PolynomialHashFamily",
    "TabulationHashFamily",
    "BlakeHashFamily",
    "family_from_name",
]

#: Mersenne prime 2^61 - 1, used as the field size of the polynomial family.
_MERSENNE_61 = (1 << 61) - 1


class HashFunction(ABC):
    """A single hash function ``h : [0..k) -> [0..g)``."""

    #: Size of the output range.
    g: int

    def __call__(self, value: int) -> int:
        """Hash a single value."""
        return int(self.hash_array(np.asarray([value], dtype=np.int64))[0])

    @abstractmethod
    def hash_array(self, values: np.ndarray) -> np.ndarray:
        """Hash a numpy array of values element-wise, returning int64 hashes."""

    def hash_all(self, k: int) -> np.ndarray:
        """Return the hashes of the full input domain ``0, 1, ..., k - 1``."""
        return self.hash_array(np.arange(int(k), dtype=np.int64))

    @property
    @abstractmethod
    def identity(self) -> Tuple:
        """A hashable tuple of parameters uniquely identifying this function."""

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HashFunction):
            return NotImplemented
        return type(self) is type(other) and self.identity == other.identity

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.identity))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(g={self.g}, identity={self.identity})"


class UniversalHashFamily(ABC):
    """A family of hash functions from which clients sample uniformly."""

    def __init__(self, g: int) -> None:
        self.g = require_domain_size(g, "g", minimum=2)

    @abstractmethod
    def sample(self, rng: RngLike = None) -> HashFunction:
        """Draw a uniformly random member of the family."""

    def sample_hashed_domains(
        self, n_functions: int, k: int, rng: RngLike = None
    ) -> np.ndarray:
        """Hash the full domain ``[0..k)`` under ``n_functions`` fresh members.

        Returns an ``(n_functions, k)`` int64 matrix whose row ``i`` is the
        image of the whole domain under the ``i``-th sampled function — the
        per-user table the LOLOHA population engines need.  This generic
        implementation samples one member at a time; families with cheap
        parameterizations (e.g. multiply-shift) override it with a fully
        vectorized batch draw.
        """
        n_functions = require_int_at_least(n_functions, 1, "n_functions")
        generator = as_rng(rng)
        return np.stack(
            [self.sample(generator).hash_all(k) for _ in range(n_functions)]
        )

    @property
    def name(self) -> str:
        """Short family name used in configuration files and reports."""
        return type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(g={self.g})"


@dataclass(frozen=True)
class _MultiplyShiftFunction(HashFunction):
    """Dietzfelbinger multiply-shift: ``h(x) = ((a*x + b) mod 2^64) >> (64 - log2(m))``
    reduced to ``[0..g)`` by a final modulo."""

    a: int
    b: int
    g: int

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.uint64)
        with np.errstate(over="ignore"):
            mixed = (np.uint64(self.a) * x + np.uint64(self.b))
        # Take the high 32 bits before reducing: the high bits of a
        # multiply-shift product are the (near-)uniform ones.
        high = (mixed >> np.uint64(32)).astype(np.int64)
        return high % np.int64(self.g)

    @property
    def identity(self) -> Tuple:
        return (self.a, self.b, self.g)


class MultiplyShiftHashFamily(UniversalHashFamily):
    """2-universal multiply-shift family for 64-bit integer keys."""

    def sample(self, rng: RngLike = None) -> HashFunction:
        generator = as_rng(rng)
        # ``a`` must be odd for the multiply-shift scheme.
        a = int(generator.integers(1, 2**63, dtype=np.uint64)) * 2 + 1
        b = int(generator.integers(0, 2**63, dtype=np.uint64))
        return _MultiplyShiftFunction(a=a & (2**64 - 1), b=b, g=self.g)

    def sample_hashed_domains(
        self, n_functions: int, k: int, rng: RngLike = None
    ) -> np.ndarray:
        """Vectorized batch draw: one ``(a, b)`` pair per row, no Python loop."""
        n_functions = require_int_at_least(n_functions, 1, "n_functions")
        generator = as_rng(rng)
        with np.errstate(over="ignore"):
            a = generator.integers(1, 2**63, size=n_functions, dtype=np.uint64)
            a = a * np.uint64(2) + np.uint64(1)
            b = generator.integers(0, 2**63, size=n_functions, dtype=np.uint64)
            x = np.arange(int(k), dtype=np.uint64)
            mixed = a[:, None] * x[None, :] + b[:, None]
        high = (mixed >> np.uint64(32)).astype(np.int64)
        return high % np.int64(self.g)


@dataclass(frozen=True)
class _PolynomialFunction(HashFunction):
    """Polynomial hashing over the field GF(2^61 - 1), reduced modulo ``g``."""

    coefficients: Tuple[int, ...]
    g: int

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.object_) % _MERSENNE_61
        acc = np.zeros(x.shape, dtype=np.object_)
        # Horner evaluation with python ints (exact arithmetic; the domain
        # sizes used by LDP protocols keep this fast enough).
        for coef in self.coefficients:
            acc = (acc * x + coef) % _MERSENNE_61
        return (acc % self.g).astype(np.int64)

    @property
    def identity(self) -> Tuple:
        return (self.coefficients, self.g)


class PolynomialHashFamily(UniversalHashFamily):
    """``degree``-independent polynomial family modulo a Mersenne prime."""

    def __init__(self, g: int, degree: int = 2) -> None:
        super().__init__(g)
        self.degree = require_int_at_least(degree, 1, "degree")

    def sample(self, rng: RngLike = None) -> HashFunction:
        generator = as_rng(rng)
        coefficients = [int(generator.integers(0, _MERSENNE_61)) for _ in range(self.degree + 1)]
        # Ensure the leading coefficient is non-zero so the degree is exact.
        if coefficients[0] == 0:
            coefficients[0] = 1
        return _PolynomialFunction(coefficients=tuple(coefficients), g=self.g)


@dataclass(frozen=True)
class _TabulationFunction(HashFunction):
    """Simple tabulation hashing over four 16-bit characters of the key."""

    tables: Tuple[Tuple[int, ...], ...]
    g: int

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        x = np.asarray(values, dtype=np.uint64)
        out = np.zeros(x.shape, dtype=np.uint64)
        for chunk_index, table in enumerate(self.tables):
            chunk = ((x >> np.uint64(16 * chunk_index)) & np.uint64(0xFFFF)).astype(np.int64)
            out ^= np.asarray(table, dtype=np.uint64)[chunk]
        return (out % np.uint64(self.g)).astype(np.int64)

    @property
    def identity(self) -> Tuple:
        # The tables are large; identify by a digest of their bytes.
        digest = hashlib.blake2b(
            b"".join(np.asarray(t, dtype=np.uint64).tobytes() for t in self.tables),
            digest_size=16,
        ).hexdigest()
        return (digest, self.g)


class TabulationHashFamily(UniversalHashFamily):
    """Simple tabulation hashing (Zobrist hashing) with four 16-bit chunks."""

    n_chunks = 4

    def sample(self, rng: RngLike = None) -> HashFunction:
        generator = as_rng(rng)
        tables = tuple(
            tuple(int(v) for v in generator.integers(0, 2**63, size=2**16, dtype=np.uint64))
            for _ in range(self.n_chunks)
        )
        return _TabulationFunction(tables=tables, g=self.g)


#: Each 64-byte BLAKE2b digest yields eight independent 8-byte words.
_BLAKE_WORDS_PER_BLOCK = 8


@dataclass(frozen=True)
class _BlakeFunction(HashFunction):
    """Seeded BLAKE2b hashing in counter mode, reduced modulo ``g``.

    Mirrors the seeded xxhash construction used by the reference LOLOHA and
    pure-LDP implementations: the seed plays the role of the hash-function
    identifier transmitted to the server.

    Digests are produced in *counter mode*: one 64-byte BLAKE2b call over
    the block index ``value // 8`` yields eight independent 8-byte words,
    and value ``v`` reads word ``v % 8``.  This amortizes one ``hashlib``
    call over eight domain values and lets :meth:`hash_array` do all
    word-extraction and modulo arithmetic vectorized in numpy — the hot
    path when hashing whole domains for a LOLOHA population.
    """

    seed: int
    g: int
    _cache: dict = field(default_factory=dict, compare=False, repr=False, hash=False)

    def _block_words(self, block: int) -> np.ndarray:
        """The eight 64-bit words of one counter-mode digest block (cached)."""
        cached = self._cache.get(block)
        if cached is not None:
            return cached
        payload = int(block).to_bytes(8, "little", signed=False)
        salt = int(self.seed).to_bytes(8, "little", signed=False)
        digest = hashlib.blake2b(payload, digest_size=64, salt=salt + b"\x00" * 8).digest()
        words = np.frombuffer(digest, dtype="<u8")
        self._cache[block] = words
        return words

    def hash_array(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.int64)
        flat = values.ravel()
        if flat.size == 0:
            return np.zeros(values.shape, dtype=np.int64)
        blocks = flat // _BLAKE_WORDS_PER_BLOCK
        word_index = flat % _BLAKE_WORDS_PER_BLOCK
        unique_blocks = np.unique(blocks)
        table = np.stack([self._block_words(int(b)) for b in unique_blocks])
        rows = np.searchsorted(unique_blocks, blocks)
        out = (table[rows, word_index] % np.uint64(self.g)).astype(np.int64)
        return out.reshape(values.shape)

    @property
    def identity(self) -> Tuple:
        return (self.seed, self.g)


class BlakeHashFamily(UniversalHashFamily):
    """Seeded cryptographic hash family (BLAKE2b, counter mode)."""

    def sample(self, rng: RngLike = None) -> HashFunction:
        generator = as_rng(rng)
        seed = int(generator.integers(0, 2**63 - 1))
        return _BlakeFunction(seed=seed, g=self.g)

    def sample_hashed_domains(
        self, n_functions: int, k: int, rng: RngLike = None
    ) -> np.ndarray:
        """Batched draw: one seed per row, counter-mode digests per block.

        Replaces the generic per-function/per-value fallback: all seeds are
        drawn in one call and each row hashes the whole domain through the
        vectorized counter-mode path (``ceil(k / 8)`` digests per function
        instead of ``k``), so crypto hashing stays usable as a LOLOHA
        population default.
        """
        n_functions = require_int_at_least(n_functions, 1, "n_functions")
        generator = as_rng(rng)
        seeds = generator.integers(0, 2**63 - 1, size=n_functions)
        domain = np.arange(int(k), dtype=np.int64)
        return np.stack(
            [
                _BlakeFunction(seed=int(seed), g=self.g).hash_array(domain)
                for seed in seeds
            ]
        )


_FAMILY_REGISTRY = {
    "multiply-shift": MultiplyShiftHashFamily,
    "polynomial": PolynomialHashFamily,
    "tabulation": TabulationHashFamily,
    "blake": BlakeHashFamily,
}


def family_from_name(name: str, g: int, **kwargs) -> UniversalHashFamily:
    """Instantiate a hash family by its registry name.

    Parameters
    ----------
    name:
        One of ``"multiply-shift"``, ``"polynomial"``, ``"tabulation"``,
        ``"blake"``.
    g:
        Output range size.
    kwargs:
        Extra family-specific arguments (e.g. ``degree`` for the polynomial
        family).
    """
    try:
        cls = _FAMILY_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_FAMILY_REGISTRY))
        raise ParameterError(f"unknown hash family {name!r}; known families: {known}") from None
    return cls(g, **kwargs)
