"""Data-change detection attack against dBitFlipPM (Table 2 of the paper).

dBitFlipPM memoizes the randomized response of each bucket-indicator pattern
and has no instantaneous round, so two consecutive reports of a user are
identical whenever the underlying bucket did not change and *usually differ*
when it did.  The attacker simply marks a change whenever the report changes.

The paper's worst-case metric is the percentage of users for whom the
attacker identifies **all** bucket change points, i.e. every true bucket
change produced a different memoized response.  With ``d = 1`` the memoized
responses are single bits and frequently coincide across buckets, so the
percentage is near zero; with ``d = b`` the responses are long vectors and
essentially always differ, so the percentage is 100%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .._validation import as_rng
from ..datasets.base import LongitudinalDataset
from ..exceptions import ExperimentError
from ..longitudinal.dbitflip import DBitFlipPM
from ..rng import RngLike
from ..simulation.engines import DBitFlipEngine

__all__ = ["ChangeDetectionResult", "detect_user_changes", "change_detection_rate"]


@dataclass(frozen=True)
class ChangeDetectionResult:
    """Outcome of the change-detection attack over a population.

    Attributes
    ----------
    n_users:
        Population size.
    n_users_with_changes:
        Users whose true bucket changed at least once.
    n_fully_detected:
        Users with at least one change whose changes were *all* detected.
    fraction_fully_detected:
        ``n_fully_detected / n_users`` — the percentage reported in Table 2.
    eps_inf, d, b:
        The attacked configuration.
    """

    n_users: int
    n_users_with_changes: int
    n_fully_detected: int
    fraction_fully_detected: float
    eps_inf: float
    d: int
    b: int


def detect_user_changes(
    true_buckets: np.ndarray, observed_keys: np.ndarray, memo_equal: np.ndarray
) -> bool:
    """Whether every true bucket change of one user is visible to the attacker.

    Parameters
    ----------
    true_buckets:
        The user's true bucket sequence of length ``tau``.
    observed_keys:
        The memoization keys used at each round (same length).
    memo_equal:
        Boolean matrix where ``memo_equal[i, j]`` says whether the memoized
        responses of keys ``i`` and ``j`` are identical.

    Returns ``True`` when, at every round where the true bucket differs from
    the previous round, the reported (memoized) response also differs.
    """
    true_buckets = np.asarray(true_buckets)
    observed_keys = np.asarray(observed_keys)
    if true_buckets.shape != observed_keys.shape:
        raise ExperimentError("true_buckets and observed_keys must have the same length")
    changes = np.nonzero(true_buckets[1:] != true_buckets[:-1])[0] + 1
    if changes.size == 0:
        return False
    previous_keys = observed_keys[changes - 1]
    current_keys = observed_keys[changes]
    return bool(np.all(~memo_equal[previous_keys, current_keys]))


def change_detection_rate(
    dataset: LongitudinalDataset,
    eps_inf: float,
    d: int,
    b: Optional[int] = None,
    rng: RngLike = None,
) -> ChangeDetectionResult:
    """Run the attack over a full population (one Table 2 cell).

    Simulates dBitFlipPM with the given configuration over ``dataset`` and
    reports the fraction of users whose bucket changes were all detected.
    """
    protocol = DBitFlipPM(k=dataset.k, eps_inf=eps_inf, b=b, d=d)
    generator = as_rng(rng)
    # The attack observes the per-round memoization keys, so this is the one
    # consumer that opts into the engine's key history (off by default — it
    # grows by one array per round).
    engine = DBitFlipEngine(
        protocol, dataset.n_users, generator, record_key_history=True
    )
    for values_t in dataset.iter_rounds():
        engine.run_round(values_t, generator)

    keys = np.stack(engine.key_history, axis=1)  # (n_users, tau)
    buckets = np.stack(
        [protocol.bucket_of(values_t) for values_t in dataset.iter_rounds()], axis=1
    )

    n_fully_detected = 0
    n_with_changes = 0
    for user in range(dataset.n_users):
        user_buckets = buckets[user]
        change_points = np.nonzero(user_buckets[1:] != user_buckets[:-1])[0] + 1
        if change_points.size == 0:
            continue
        n_with_changes += 1
        user_keys = keys[user]
        all_detected = True
        memo_cache: dict = {}
        for t in change_points:
            previous_key = int(user_keys[t - 1])
            current_key = int(user_keys[t])
            for key in (previous_key, current_key):
                if key not in memo_cache:
                    memo_cache[key] = engine.memoized_bits(user, key)
            previous_bits = memo_cache[previous_key]
            current_bits = memo_cache[current_key]
            # A change is undetected when the two memoized responses coincide
            # (identical keys always coincide; distinct keys may collide).
            if previous_bits is None or current_bits is None:
                all_detected = False
                break
            if previous_key == current_key or np.array_equal(previous_bits, current_bits):
                all_detected = False
                break
        if all_detected:
            n_fully_detected += 1

    return ChangeDetectionResult(
        n_users=dataset.n_users,
        n_users_with_changes=n_with_changes,
        n_fully_detected=n_fully_detected,
        fraction_fully_detected=n_fully_detected / dataset.n_users,
        eps_inf=eps_inf,
        d=protocol.d,
        b=protocol.b,
    )
