"""Averaging attack against naive repetition of an LDP protocol.

Section 2.4 of the paper motivates memoization with this attack: if a user
re-randomizes the same value with fresh noise at every round, the server can
average the reports and recover the value with probability approaching one.
This module quantifies that attack for GRR so that the repository can
demonstrate *why* every longitudinal protocol in the paper memoizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .._validation import as_rng, require_domain_size, require_epsilon, require_int_at_least
from ..freq_oneshot.grr import grr_perturb_array
from ..freq_oneshot.base import grr_parameters
from ..rng import RngLike

__all__ = ["AveragingAttackResult", "averaging_attack_accuracy"]


@dataclass(frozen=True)
class AveragingAttackResult:
    """Outcome of the averaging attack simulation.

    Attributes
    ----------
    accuracy:
        Fraction of simulated users whose true value was recovered exactly by
        majority vote over their reports.
    n_reports:
        Number of fresh-noise reports the attacker observed per user.
    baseline_accuracy:
        Accuracy of guessing from a single report (the protocol's intended
        protection level), for comparison.
    """

    accuracy: float
    n_reports: int
    baseline_accuracy: float
    epsilon: float
    k: int


def averaging_attack_accuracy(
    k: int,
    epsilon: float,
    n_reports: int,
    n_victims: int = 1000,
    rng: RngLike = None,
) -> AveragingAttackResult:
    """Simulate the averaging attack against fresh-noise GRR repetition.

    Each victim holds a fixed uniformly random value and reports it
    ``n_reports`` times through GRR with independent noise.  The attacker
    outputs the most frequently reported symbol.  The returned accuracy grows
    towards one as ``n_reports`` increases — the failure mode memoization is
    designed to prevent.
    """
    k = require_domain_size(k, "k")
    epsilon = require_epsilon(epsilon, "epsilon")
    n_reports = require_int_at_least(n_reports, 1, "n_reports")
    n_victims = require_int_at_least(n_victims, 1, "n_victims")
    generator = as_rng(rng)
    params = grr_parameters(epsilon, k)

    true_values = generator.integers(0, k, size=n_victims)
    correct = 0
    single_correct = 0
    for victim in range(n_victims):
        value = np.full(n_reports, true_values[victim], dtype=np.int64)
        reports = grr_perturb_array(value, k, params.p, generator)
        counts = np.bincount(reports, minlength=k)
        if int(np.argmax(counts)) == true_values[victim]:
            correct += 1
        if reports[0] == true_values[victim]:
            single_correct += 1
    return AveragingAttackResult(
        accuracy=correct / n_victims,
        n_reports=n_reports,
        baseline_accuracy=single_correct / n_victims,
        epsilon=epsilon,
        k=k,
    )
