"""Adversarial analyses of longitudinal LDP protocols.

* :mod:`repro.attacks.change_detection` — the data-change detection attack on
  dBitFlipPM quantified in Table 2 of the paper: because dBitFlipPM has no
  instantaneous round, a change of bucket usually changes the (memoized)
  report, and the server can locate every change point of a user.
* :mod:`repro.attacks.averaging` — the averaging attack that motivates
  memoization: repeating an LDP protocol with fresh noise lets the server
  estimate a *single user's* value arbitrarily well as the number of reports
  grows.
"""

from .averaging import AveragingAttackResult, averaging_attack_accuracy
from .change_detection import ChangeDetectionResult, change_detection_rate, detect_user_changes

__all__ = [
    "ChangeDetectionResult",
    "change_detection_rate",
    "detect_user_changes",
    "AveragingAttackResult",
    "averaging_attack_accuracy",
]
