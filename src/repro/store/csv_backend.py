"""CSV results backend: the historical append-only store behind the
:class:`~repro.store.backends.ResultsBackend` interface.

This is a thin adapter over :class:`~repro.store.results_store.ResultsStore`
— same files, same ``O_APPEND`` + fsync flushes, same torn-tail truncation,
same leading ``# key=value`` comment convention.  A directory written by
either class is readable by the other, so existing sweep output needs no
migration to keep working.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from .backends import ResultsBackend, register_backend
from .results_store import ResultsStore, safe_experiment_stem

__all__ = ["CsvBackend"]


class CsvBackend(ResultsBackend):
    """Append-only CSV files, one per experiment, under one directory."""

    kind = "csv"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._store = ResultsStore(self.root)

    def append_rows(
        self,
        experiment_id: str,
        rows: Sequence[Mapping[str, object]],
        header_comment: Optional[str] = None,
    ) -> None:
        self._store.append_rows(experiment_id, list(rows), header_comment=header_comment)

    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        return self._store.load_rows(experiment_id)

    def read_header_comment(self, experiment_id: str) -> Optional[str]:
        return self._store.read_header_comment(experiment_id)

    def has_rows(self, experiment_id: str) -> bool:
        return self._store.has_rows(experiment_id)

    def list_experiments(self) -> List[str]:
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.csv"))

    def location(self, experiment_id: str) -> str:
        return str(self.root / f"{safe_experiment_stem(experiment_id)}.csv")


register_backend(CsvBackend.kind, CsvBackend)
