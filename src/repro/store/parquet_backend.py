"""Columnar results backend: immutable chunk files under ``<stem>.parts/``.

Each experiment is a directory ``<safe_stem>.parts/`` holding

* ``meta.json`` — experiment id, column list and the creating append's
  header comment (written atomically once, on the first append), and
* one immutable chunk file per :meth:`ParquetBackend.append_rows` call.

When ``pyarrow`` is importable the chunks are real Parquet files
(``part-*.parquet``); otherwise the backend transparently falls back to a
pure-numpy columnar layout (``part-*.npz``: one string array per column,
``savez_compressed``).  Both layouts store the canonical cell strings of
:func:`~repro.store.backends.stringify_cell`, so rows round-trip
byte-identically with the CSV and SQLite backends, and a directory written
with one chunk format loads fine next to chunks of the other (a later run
with pyarrow installed appends Parquet chunks after npz ones).

Crash safety: every chunk (and ``meta.json``) goes through
:func:`repro._atomicio.atomic_write_bytes` — staged temp + fsync +
``os.replace`` — so a writer killed mid-append leaves no partial chunk;
readers see exactly the previously completed appends.  Concurrent writers
cannot collide: chunk names embed pid + a random token, and chunks are
never rewritten.
"""

from __future__ import annotations

import io
import json
import os
import uuid
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from .._atomicio import atomic_write_bytes, atomic_write_text
from ..exceptions import ExperimentError
from .backends import (
    ResultsBackend,
    register_backend,
    validate_header_comment,
    validate_rows,
)
from .results_store import safe_experiment_stem

__all__ = ["ParquetBackend", "PARTS_SUFFIX", "pyarrow_available"]

#: Suffix of per-experiment chunk directories (the marker
#: :func:`~repro.store.backends.detect_backend_kind` looks for).
PARTS_SUFFIX = ".parts"


def pyarrow_available() -> bool:
    """Whether real Parquet chunks can be written (pyarrow importable)."""
    try:
        import pyarrow.parquet  # noqa: F401
    except ImportError:
        return False
    return True


def _write_parquet_chunk(path: Path, columns: List[str], rows: List[Dict[str, str]]) -> None:
    import pyarrow
    import pyarrow.parquet

    table = pyarrow.table(
        {name: [row[name] for row in rows] for name in columns}
    )
    buffer = io.BytesIO()
    pyarrow.parquet.write_table(table, buffer)
    atomic_write_bytes(path, lambda handle: handle.write(buffer.getvalue()))


def _write_npz_chunk(path: Path, columns: List[str], rows: List[Dict[str, str]]) -> None:
    # Positional keys (c0..cn) instead of column names: npz keys cannot hold
    # arbitrary column strings safely; meta.json owns the name mapping.
    arrays = {
        f"c{index}": np.array([row[name] for row in rows], dtype=str)
        for index, name in enumerate(columns)
    }
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    atomic_write_bytes(path, lambda handle: handle.write(buffer.getvalue()))


def _read_chunk(path: Path, columns: List[str]) -> List[Dict[str, str]]:
    if path.suffix == ".parquet":
        import pyarrow.parquet

        table = pyarrow.parquet.read_table(path)
        cells = {name: table.column(name).to_pylist() for name in columns}
    else:
        with np.load(path) as archive:
            cells = {
                name: [str(value) for value in archive[f"c{index}"]]
                for index, name in enumerate(columns)
            }
    n_rows = len(cells[columns[0]]) if columns else 0
    return [{name: cells[name][i] for name in columns} for i in range(n_rows)]


class ParquetBackend(ResultsBackend):
    """Directory-of-immutable-chunks columnar store (Parquet or npz)."""

    kind = "parquet"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self._use_pyarrow = pyarrow_available()

    def _parts_dir(self, experiment_id: str) -> Path:
        return self.root / f"{safe_experiment_stem(experiment_id)}{PARTS_SUFFIX}"

    def _meta(self, experiment_id: str) -> Optional[Dict[str, object]]:
        meta_path = self._parts_dir(experiment_id) / "meta.json"
        if not meta_path.exists():
            return None
        with meta_path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def _chunk_paths(self, experiment_id: str) -> List[Path]:
        parts_dir = self._parts_dir(experiment_id)
        return sorted(
            path
            for path in parts_dir.glob("part-*")
            if path.suffix in (".parquet", ".npz")
        )

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append_rows(
        self,
        experiment_id: str,
        rows: Sequence[Mapping[str, object]],
        header_comment: Optional[str] = None,
    ) -> None:
        if not rows:
            return
        fieldnames, stringified = validate_rows(rows)
        validate_header_comment(header_comment)
        parts_dir = self._parts_dir(experiment_id)
        meta = self._meta(experiment_id)
        if meta is None:
            parts_dir.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                parts_dir / "meta.json",
                json.dumps(
                    {
                        "experiment_id": experiment_id,
                        "columns": fieldnames,
                        "header_comment": header_comment,
                    },
                    indent=2,
                    sort_keys=True,
                ),
            )
        elif meta["columns"] != fieldnames:
            raise ExperimentError(
                f"cannot append to {parts_dir}: existing columns "
                f"{meta['columns']} do not match {fieldnames}"
            )
        seq = len(self._chunk_paths(experiment_id))
        token = uuid.uuid4().hex[:8]
        suffix = "parquet" if self._use_pyarrow else "npz"
        chunk = parts_dir / f"part-{seq:08d}-{os.getpid()}-{token}.{suffix}"
        if self._use_pyarrow:
            _write_parquet_chunk(chunk, fieldnames, stringified)
        else:
            _write_npz_chunk(chunk, fieldnames, stringified)

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        meta = self._meta(experiment_id)
        if meta is None:
            raise ExperimentError(
                f"no saved results found at {self._parts_dir(experiment_id)}"
            )
        columns = list(meta["columns"])
        rows: List[Dict[str, str]] = []
        for chunk in self._chunk_paths(experiment_id):
            rows.extend(_read_chunk(chunk, columns))
        return rows

    def read_header_comment(self, experiment_id: str) -> Optional[str]:
        meta = self._meta(experiment_id)
        return None if meta is None else meta.get("header_comment")

    def has_rows(self, experiment_id: str) -> bool:
        return self._meta(experiment_id) is not None and bool(
            self._chunk_paths(experiment_id)
        )

    def list_experiments(self) -> List[str]:
        if not self.root.exists():
            return []
        identifiers = []
        for parts_dir in self.root.glob(f"*{PARTS_SUFFIX}"):
            meta_path = parts_dir / "meta.json"
            if meta_path.exists():
                with meta_path.open("r", encoding="utf-8") as handle:
                    identifiers.append(json.load(handle)["experiment_id"])
        return sorted(identifiers)

    def location(self, experiment_id: str) -> str:
        return str(self._parts_dir(experiment_id))


register_backend(ParquetBackend.kind, ParquetBackend)
