"""Pluggable results backends: one durable-store contract, many formats.

The sweep / distributed layers persist results as *flat rows* — ordered
string-valued records grouped by ``experiment_id``, optionally tagged with a
single-line header comment (the sweep layer stores the spec fingerprint
there).  Historically the only implementation was the append-only CSV
:class:`~repro.store.results_store.ResultsStore`; at millions of grid points
a CSV is the bottleneck and is unqueryable.  This module defines the small
backend interface those layers now write through, plus the registry that the
CLI ``--store {csv,sqlite,parquet}`` flag resolves against.

Contract (every backend, verified by the conformance suite in
``tests/test_store_backends.py``):

* **Append-only rows.**  :meth:`ResultsBackend.append_rows` adds whole rows
  to one experiment; all rows of an experiment share one column set
  (mismatches raise :class:`~repro.exceptions.ExperimentError`), and cell
  values must not contain newlines (CSV wire compatibility — migration
  between backends is bit-identical both ways).
* **String round trip.**  :meth:`ResultsBackend.load_rows` returns rows in
  append order with every cell stringified exactly as the CSV backend would
  (``str(value)``, ``None`` → ``""``), so a resumed sweep computes identical
  grid keys regardless of backend.
* **Crash safety.**  A writer killed at any instant leaves a loadable
  prefix: every previously *completed* ``append_rows`` call survives, and no
  torn or half-written row is ever observable.  Each backend realizes this
  with its own native mechanism (``O_APPEND`` + torn-tail truncation for
  CSV, WAL transactions for SQLite, staged-temp + rename chunk files for the
  columnar backends).
* **Header comment.**  The comment given with the *creating* append is
  durable and returned verbatim by :meth:`ResultsBackend.read_header_comment`;
  later comments are ignored.  The sweep fingerprint convention
  (``sweep_spec_fingerprint=<hex>``) is understood by every backend and
  indexed where the format allows.
* **Close.**  :meth:`ResultsBackend.close` releases OS resources (database
  connections, mmaps); backends are context managers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..exceptions import ExperimentError

__all__ = [
    "FINGERPRINT_KEY",
    "ResultsBackend",
    "available_backend_kinds",
    "detect_backend_kind",
    "fingerprint_from_comment",
    "make_backend",
    "register_backend",
    "require_backend_kind",
    "stringify_cell",
    "validate_rows",
]

#: Key of the spec-fingerprint header-comment convention
#: (``# sweep_spec_fingerprint=<hex>`` in CSVs; a dedicated indexed column
#: in SQLite).
FINGERPRINT_KEY = "sweep_spec_fingerprint"


def fingerprint_from_comment(comment: Optional[str]) -> Optional[str]:
    """The spec fingerprint carried by a header comment, or ``None``."""
    if comment is not None and comment.startswith(f"{FINGERPRINT_KEY}="):
        return comment.split("=", 1)[1]
    return None


def stringify_cell(value: object) -> str:
    """One cell as the CSV writer would serialize it (``None`` → ``""``).

    Every backend stores this canonical string form, so rows migrate
    between backends byte-for-byte and ``load_rows`` agrees with the CSV
    reader for any input value type.
    """
    return "" if value is None else str(value)


def validate_rows(
    rows: Sequence[Mapping[str, object]],
) -> Tuple[List[str], List[Dict[str, str]]]:
    """Shared append-side validation: column consistency + newline ban.

    Returns ``(fieldnames, stringified_rows)``.  Mirrors the checks the CSV
    store applies (same error messages), so the conformance contract is
    identical across backends.
    """
    fieldnames = list(rows[0].keys())
    stringified: List[Dict[str, str]] = []
    for row in rows:
        if list(row.keys()) != fieldnames:
            raise ExperimentError("all rows must share the same columns")
        for value in row.values():
            if isinstance(value, str) and ("\n" in value or "\r" in value):
                raise ExperimentError(
                    "appended cell values must not contain newlines"
                )
        stringified.append({key: stringify_cell(row[key]) for key in fieldnames})
    return fieldnames, stringified


def validate_header_comment(header_comment: Optional[str]) -> Optional[str]:
    """Reject multi-line header comments, as the CSV format requires."""
    if header_comment is not None and (
        "\n" in header_comment or "\r" in header_comment
    ):
        raise ExperimentError("header comment must be a single line")
    return header_comment


class ResultsBackend(ABC):
    """Abstract durable row store; see the module docstring for the contract.

    Subclasses set :attr:`kind` (the ``--store`` flag value) and register a
    factory with :func:`register_backend`.
    """

    #: Registry key of this backend (``"csv"``, ``"sqlite"``, ``"parquet"``).
    kind: str = ""

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    @abstractmethod
    def append_rows(
        self,
        experiment_id: str,
        rows: Sequence[Mapping[str, object]],
        header_comment: Optional[str] = None,
    ) -> None:
        """Durably append ``rows`` to ``experiment_id`` (whole-batch or not
        at all under a mid-write kill; an empty batch is a no-op)."""

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    @abstractmethod
    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        """All rows of one experiment, in append order, cells stringified.

        Raises :class:`~repro.exceptions.ExperimentError` when the
        experiment does not exist.
        """

    @abstractmethod
    def read_header_comment(self, experiment_id: str) -> Optional[str]:
        """The creating append's header comment; ``None`` when absent (or
        when the experiment does not exist)."""

    @abstractmethod
    def has_rows(self, experiment_id: str) -> bool:
        """Whether the experiment holds at least one durably appended row."""

    @abstractmethod
    def list_experiments(self) -> List[str]:
        """Identifiers of every experiment with rows, sorted."""

    @abstractmethod
    def location(self, experiment_id: str) -> str:
        """Human-readable description of where the rows live (log lines)."""

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def fingerprint(self, experiment_id: str) -> Optional[str]:
        """The spec fingerprint of one experiment, when recorded."""
        return fingerprint_from_comment(self.read_header_comment(experiment_id))

    def query(
        self,
        experiment_id: Optional[str] = None,
        fingerprint: Optional[str] = None,
        protocol: Optional[str] = None,
        eps_min: Optional[float] = None,
        eps_max: Optional[float] = None,
    ) -> List[Dict[str, str]]:
        """Rows matching every given filter, tagged with their experiment.

        Filters: exact ``experiment_id``; exact spec ``fingerprint`` (whole
        experiments are skipped without reading their rows when theirs does
        not match); exact ``protocol`` column; inclusive ``eps_min`` /
        ``eps_max`` range over the ``eps_inf`` column (rows without a
        numeric ``eps_inf`` never match a range filter).  Returned rows gain
        an ``experiment_id`` first column.  Backends with a native query
        engine override this row-scan fallback.
        """
        if experiment_id is not None:
            identifiers = [experiment_id] if self.has_rows(experiment_id) else []
        else:
            identifiers = self.list_experiments()
        matches: List[Dict[str, str]] = []
        for identifier in identifiers:
            if fingerprint is not None and self.fingerprint(identifier) != fingerprint:
                continue
            for row in self.load_rows(identifier):
                if row_matches(row, protocol, eps_min, eps_max):
                    matches.append({"experiment_id": identifier, **row})
        return matches

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release OS resources; reads/writes after close are undefined."""

    def __enter__(self) -> "ResultsBackend":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()


def row_matches(
    row: Mapping[str, str],
    protocol: Optional[str],
    eps_min: Optional[float],
    eps_max: Optional[float],
) -> bool:
    """Row-level filter shared by the scan-based backends."""
    if protocol is not None and row.get("protocol") != protocol:
        return False
    if eps_min is not None or eps_max is not None:
        try:
            eps_inf = float(row["eps_inf"])
        except (KeyError, ValueError):
            return False
        if eps_min is not None and eps_inf < eps_min:
            return False
        if eps_max is not None and eps_inf > eps_max:
            return False
    return True


# ---------------------------------------------------------------------- #
# Registry
# ---------------------------------------------------------------------- #
_BACKEND_FACTORIES: Dict[str, Callable[..., ResultsBackend]] = {}


def register_backend(kind: str, factory: Callable[..., ResultsBackend]) -> None:
    """Register a backend factory ``(root) -> ResultsBackend`` under a kind."""
    if not kind or not isinstance(kind, str):
        raise ExperimentError("backend kind must be a non-empty string")
    _BACKEND_FACTORIES[kind] = factory


def available_backend_kinds() -> Tuple[str, ...]:
    """Registered backend kinds, sorted (the ``--store`` choices)."""
    return tuple(sorted(_BACKEND_FACTORIES))


def require_backend_kind(kind: str) -> str:
    """Validate a backend kind against the registry and return it."""
    # Importing the sibling modules registers the built-in backends; the
    # lazy import keeps module import order irrelevant.
    from . import csv_backend, parquet_backend, sqlite_backend  # noqa: F401

    if kind not in _BACKEND_FACTORIES:
        raise ExperimentError(
            f"unknown results backend {kind!r}; "
            f"available: {', '.join(available_backend_kinds())}"
        )
    return kind


def make_backend(kind: str, root) -> ResultsBackend:
    """Open a results backend of ``kind`` rooted at directory ``root``."""
    return _BACKEND_FACTORIES[require_backend_kind(kind)](root)


def detect_backend_kind(root) -> str:
    """Infer which backend wrote a results directory (``repro-ldp query``).

    A SQLite database file wins over columnar part directories, which win
    over loose CSVs — matching the specificity of the formats' markers.
    """
    from pathlib import Path

    root = Path(root)
    if not root.exists():
        raise ExperimentError(f"no results directory at {root}")
    if (root / "results.sqlite").exists():
        return "sqlite"
    if any(root.glob("*.parts")):
        return "parquet"
    if any(root.glob("*.csv")):
        return "csv"
    raise ExperimentError(
        f"{root} holds no recognizable results store (no results.sqlite, "
        f"*.parts directory or *.csv file); pass --store explicitly"
    )
