"""Storage helpers: a columnar in-memory report store and a results store.

* :class:`ReportStore` accumulates sanitized reports per round in columnar
  numpy buffers, which is how a real collection server would stage reports
  before aggregation.
* :class:`ResultsStore` persists experiment outputs (sweep points, figure
  series, table rows) to JSON / CSV files so benchmark runs can be inspected
  and compared after the fact.
"""

from .report_store import ReportStore, RoundBatch
from .results_store import ResultsStore

__all__ = ["ReportStore", "RoundBatch", "ResultsStore"]
