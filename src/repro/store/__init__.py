"""Storage helpers: a columnar in-memory report store and durable results
backends.

* :class:`ReportStore` accumulates sanitized reports per round in columnar
  numpy buffers, which is how a real collection server would stage reports
  before aggregation.
* :class:`ResultsStore` persists experiment outputs (sweep points, figure
  series, table rows) to JSON / CSV files so benchmark runs can be inspected
  and compared after the fact.
* :class:`ResultsBackend` is the pluggable durable-row-store interface the
  sweep and distributed layers write through, with three registered
  implementations — ``csv`` (:class:`CsvBackend`, the historical format),
  ``sqlite`` (:class:`SqliteBackend`, WAL database, indexed queries) and
  ``parquet`` (:class:`ParquetBackend`, columnar chunks; pure-numpy npz
  fallback when pyarrow is absent).  :func:`migrate_store` lifts experiments
  between backends byte-identically.
"""

from .backends import (
    FINGERPRINT_KEY,
    ResultsBackend,
    available_backend_kinds,
    detect_backend_kind,
    fingerprint_from_comment,
    make_backend,
    register_backend,
    require_backend_kind,
)
from .csv_backend import CsvBackend
from .migrate import migrate_store
from .parquet_backend import ParquetBackend, pyarrow_available
from .report_store import ReportStore, RoundBatch
from .results_store import ResultsStore, safe_experiment_stem
from .sqlite_backend import SqliteBackend

__all__ = [
    "FINGERPRINT_KEY",
    "CsvBackend",
    "ParquetBackend",
    "ReportStore",
    "ResultsBackend",
    "ResultsStore",
    "RoundBatch",
    "SqliteBackend",
    "available_backend_kinds",
    "detect_backend_kind",
    "fingerprint_from_comment",
    "make_backend",
    "migrate_store",
    "pyarrow_available",
    "register_backend",
    "require_backend_kind",
    "safe_experiment_stem",
]
