"""Persistence of experiment results to JSON and CSV files.

Every experiment harness in :mod:`repro.experiments` can hand its output to a
:class:`ResultsStore`, which writes one JSON document per experiment plus an
optional flat CSV for spreadsheet-style inspection.  The store never
overwrites silently: re-saving an experiment requires ``overwrite=True``.

Whole-file writes (:meth:`ResultsStore.save_rows`,
:meth:`ResultsStore.save_json`) are **atomic**: content is staged to a temp
file in the same directory, fsynced and renamed over the target.  Incremental flushes (:meth:`ResultsStore.append_rows`) use
``O_APPEND`` + fsync — O(batch) I/O per flush instead of re-reading and
rewriting the whole file, which over a long sweep was O(rows^2).  A writer
killed mid-flush can leave at most one torn trailing line; readers (and the
next append) detect it by the missing newline terminator and drop it, so a
crash can never poison a later ``--resume``.  CSVs may carry leading
``# key=value`` comment lines (e.g. the sweep-spec fingerprint) above the
header; readers skip them transparently.  Only lines *before* the header are
comments — a data row whose first cell happens to start with ``#`` is data.
"""

from __future__ import annotations

import csv
import hashlib
import io
import json
import os
import re
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .._atomicio import atomic_write_text as _atomic_write_text
from ..exceptions import ExperimentError

__all__ = ["ResultsStore", "safe_experiment_stem"]

#: Characters allowed verbatim in on-disk experiment file stems.
_UNSAFE_STEM_CHARS = re.compile(r"[^a-z0-9._-]")


def safe_experiment_stem(experiment_id: str) -> str:
    """Collision-safe file stem for ``experiment_id``.

    Identifiers that are already filesystem-safe (lowercase letters, digits,
    ``._-``) map to themselves — every id this repo generates (``table1``,
    ``sweep_syn`` …) keeps its historical filename.  Any id that *needs*
    sanitizing gets an 8-hex-digit hash of the original appended, so two
    distinct ids can never share a file: the old mapping sent ``"a/b"``,
    ``"a b"`` and ``"A_B"`` all to ``a_b.*``, silently interleaving their
    rows whenever the columns matched.
    """
    if not isinstance(experiment_id, str) or not experiment_id:
        raise ExperimentError("experiment_id must be a non-empty string")
    sanitized = _UNSAFE_STEM_CHARS.sub("_", experiment_id.lower())
    if sanitized != experiment_id:
        digest = hashlib.sha256(experiment_id.encode("utf-8")).hexdigest()[:8]
        sanitized = f"{sanitized}-{digest}"
    return sanitized


class ResultsStore:
    """Directory-backed store for experiment outputs.

    Parameters
    ----------
    root:
        Directory in which result files are written (created on demand).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, experiment_id: str, suffix: str) -> Path:
        return self.root / f"{safe_experiment_stem(experiment_id)}.{suffix}"

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save_json(
        self, experiment_id: str, payload: Dict[str, object], overwrite: bool = False
    ) -> Path:
        """Persist ``payload`` as ``<experiment_id>.json`` and return the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "json")
        if path.exists() and not overwrite:
            raise ExperimentError(
                f"{path} already exists; pass overwrite=True to replace it"
            )
        # Serialize before touching the file: a payload that fails mid-encode
        # (or a kill mid-write) must leave any existing document intact.
        content = json.dumps(payload, indent=2, sort_keys=True, default=_jsonify)
        _atomic_write_text(path, content)
        return path

    def save_rows(
        self,
        experiment_id: str,
        rows: Sequence[Dict[str, object]],
        overwrite: bool = False,
    ) -> Path:
        """Persist a list of flat dictionaries as ``<experiment_id>.csv``."""
        if not rows:
            raise ExperimentError("cannot save an empty row list")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "csv")
        if path.exists() and not overwrite:
            raise ExperimentError(
                f"{path} already exists; pass overwrite=True to replace it"
            )
        fieldnames = list(rows[0].keys())
        for row in rows:
            if list(row.keys()) != fieldnames:
                raise ExperimentError("all rows must share the same columns")
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
        _atomic_write_text(path, buffer.getvalue())
        return path

    def append_rows(
        self,
        experiment_id: str,
        rows: Sequence[Dict[str, object]],
        header_comment: Optional[str] = None,
    ) -> Path:
        """Append flat dictionaries to ``<experiment_id>.csv``, creating it on
        first use.

        Unlike :meth:`save_rows` this is an *incremental* writer: long-running
        sweeps flush completed grid points as they finish, so a crashed or
        interrupted run leaves every already-computed row on disk.  Appended
        rows must match the columns of the existing file.

        Each flush is one ``O_APPEND`` write followed by an fsync — O(batch)
        I/O, regardless of how many rows the file already holds.  A writer
        killed mid-write can leave at most one torn (newline-less) trailing
        line, which both :meth:`load_rows` and the next append drop; complete
        earlier rows are never touched.

        ``header_comment``, when given, is written as a single ``# <comment>``
        line above the CSV header of a *newly created* file (existing files
        keep whatever comment they have); readers skip leading comment lines.
        """
        if not rows:
            return self._path(experiment_id, "csv")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "csv")
        fieldnames = list(rows[0].keys())
        for row in rows:
            if list(row.keys()) != fieldnames:
                raise ExperimentError("all rows must share the same columns")
            for value in row.values():
                if isinstance(value, str) and ("\n" in value or "\r" in value):
                    # A quoted multi-line cell would span physical lines, and
                    # a writer killed between them leaves a torn record that
                    # ends in a newline — invisible to the torn-tail guard.
                    raise ExperimentError(
                        "appended cell values must not contain newlines"
                    )
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        existing_header = None
        if path.exists() and path.stat().st_size > 0:
            _truncate_torn_tail(path)
            existing_header = _read_header_fields(path)
        if existing_header is None:
            if header_comment is not None:
                if "\n" in header_comment or "\r" in header_comment:
                    raise ExperimentError("header comment must be a single line")
                buffer.write(f"# {header_comment}\n")
            writer.writeheader()
        elif existing_header != fieldnames:
            raise ExperimentError(
                f"cannot append to {path}: existing columns {existing_header} do "
                f"not match {fieldnames}"
            )
        writer.writerows(rows)
        payload = buffer.getvalue().encode("utf-8")
        fd = os.open(path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o666)
        try:
            view = memoryview(payload)
            while view:
                view = view[os.write(fd, view) :]
            os.fsync(fd)
        finally:
            os.close(fd)
        return path

    def read_header_comment(self, experiment_id: str) -> Optional[str]:
        """The first ``# <comment>`` line of a CSV, without the marker;
        ``None`` if the file is missing or carries no comment.

        Skips leading blank lines exactly like :meth:`load_rows` and
        :func:`_read_header_fields` do — the three readers must agree on
        what counts as the comment block, or a stray blank line above the
        fingerprint comment would make the rows load fine while the
        fingerprint silently "disappears" (downgrading the ``sweep
        --resume`` spec check to the legacy-CSV warning path).
        """
        path = self._path(experiment_id, "csv")
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8", newline="") as handle:
            for line in handle:
                if not line.strip():
                    continue
                if line.startswith("#"):
                    return line[1:].strip()
                return None
        return None

    def has_rows(self, experiment_id: str) -> bool:
        """Whether a CSV for ``experiment_id`` already exists on disk."""
        return self._path(experiment_id, "csv").exists()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load_json(self, experiment_id: str) -> Dict[str, object]:
        """Load a previously saved JSON document."""
        path = self._path(experiment_id, "json")
        if not path.exists():
            raise ExperimentError(f"no saved results found at {path}")
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        """Load a previously saved CSV as a list of string-valued dictionaries.

        Comment lines (e.g. the sweep-spec fingerprint) are skipped, but only
        *above* the header row — a data row whose first cell starts with
        ``#`` is data and survives the round trip.  A torn trailing line
        (no newline terminator, left by a writer killed mid-append) is
        dropped.
        """
        path = self._path(experiment_id, "csv")
        if not path.exists():
            raise ExperimentError(f"no saved results found at {path}")
        with path.open("r", encoding="utf-8", newline="") as handle:
            lines = handle.readlines()
        if lines and not lines[-1].endswith(("\n", "\r")):
            # Torn trailing line from a crashed O_APPEND flush; every line of
            # a completely flushed file ends with its newline terminator.
            del lines[-1]
        start = 0
        while start < len(lines) and (
            lines[start].startswith("#") or not lines[start].strip()
        ):
            start += 1
        return list(csv.DictReader(lines[start:]))

    def list_experiments(self) -> List[str]:
        """Identifiers of every experiment with a saved JSON document."""
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))


def _read_header_fields(path: Path) -> Optional[List[str]]:
    """The CSV header row of ``path``, skipping leading comment / blank lines.

    Reads only the file's prefix (never the data rows); returns ``None`` when
    no header line exists yet.
    """
    with path.open("r", encoding="utf-8", newline="") as handle:
        for line in handle:
            if line.startswith("#") or not line.strip():
                continue
            return next(csv.reader([line]), None)
    return None


#: Backward scan granularity of :func:`_truncate_torn_tail` (bytes).
_TAIL_SCAN_CHUNK = 64 * 1024


def _truncate_torn_tail(path: Path) -> None:
    """Cut a torn (newline-less) trailing line off an append-mode CSV.

    A writer killed mid-``os.write`` can leave a partial last line; appending
    after it would fuse the next row onto the partial one.  Scanning
    backwards for the last newline touches O(torn line) bytes, not the file.
    """
    with path.open("rb+") as handle:
        size = handle.seek(0, os.SEEK_END)
        if size == 0:
            return
        handle.seek(-1, os.SEEK_END)
        if handle.read(1) in (b"\n", b"\r"):
            return
        position = size
        while position > 0:
            chunk_start = max(0, position - _TAIL_SCAN_CHUNK)
            handle.seek(chunk_start)
            chunk = handle.read(position - chunk_start)
            newline = max(chunk.rfind(b"\n"), chunk.rfind(b"\r"))
            if newline >= 0:
                handle.truncate(chunk_start + newline + 1)
                return
            position = chunk_start
        handle.truncate(0)


def _jsonify(value: object) -> object:
    """JSON encoder fallback for numpy scalars and arrays."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.tolist()
    # np.bool_ is not an np.integer subclass, and any comparison on kernel
    # output produces one — it needs its own branch or save_json raises.
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    raise TypeError(f"object of type {type(value).__name__} is not JSON serializable")
