"""Persistence of experiment results to JSON and CSV files.

Every experiment harness in :mod:`repro.experiments` can hand its output to a
:class:`ResultsStore`, which writes one JSON document per experiment plus an
optional flat CSV for spreadsheet-style inspection.  The store never
overwrites silently: re-saving an experiment requires ``overwrite=True``.

CSV writes are **atomic**: content is staged to a temp file in the same
directory, fsynced and renamed over the target, so a writer killed mid-flush
(a crashed sweep worker, a SIGKILLed collector) can never leave a torn row
that would poison a later ``--resume``.  CSVs may carry a single leading
``# key=value`` comment line (e.g. the sweep-spec fingerprint); readers skip
it transparently.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from .._atomicio import atomic_write_text as _atomic_write_text
from ..exceptions import ExperimentError

__all__ = ["ResultsStore"]


class ResultsStore:
    """Directory-backed store for experiment outputs.

    Parameters
    ----------
    root:
        Directory in which result files are written (created on demand).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, experiment_id: str, suffix: str) -> Path:
        safe = experiment_id.replace("/", "_").replace(" ", "_").lower()
        return self.root / f"{safe}.{suffix}"

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save_json(
        self, experiment_id: str, payload: Dict[str, object], overwrite: bool = False
    ) -> Path:
        """Persist ``payload`` as ``<experiment_id>.json`` and return the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "json")
        if path.exists() and not overwrite:
            raise ExperimentError(
                f"{path} already exists; pass overwrite=True to replace it"
            )
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=_jsonify)
        return path

    def save_rows(
        self,
        experiment_id: str,
        rows: Sequence[Dict[str, object]],
        overwrite: bool = False,
    ) -> Path:
        """Persist a list of flat dictionaries as ``<experiment_id>.csv``."""
        if not rows:
            raise ExperimentError("cannot save an empty row list")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "csv")
        if path.exists() and not overwrite:
            raise ExperimentError(
                f"{path} already exists; pass overwrite=True to replace it"
            )
        fieldnames = list(rows[0].keys())
        for row in rows:
            if list(row.keys()) != fieldnames:
                raise ExperimentError("all rows must share the same columns")
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
        _atomic_write_text(path, buffer.getvalue())
        return path

    def append_rows(
        self,
        experiment_id: str,
        rows: Sequence[Dict[str, object]],
        header_comment: Optional[str] = None,
    ) -> Path:
        """Append flat dictionaries to ``<experiment_id>.csv``, creating it on
        first use.

        Unlike :meth:`save_rows` this is an *incremental* writer: long-running
        sweeps flush completed grid points as they finish, so a crashed or
        interrupted run leaves every already-computed row on disk.  Appended
        rows must match the columns of the existing file.

        The flush is atomic (temp file + rename): a writer killed mid-flush
        leaves the previous complete file, never a torn row.

        ``header_comment``, when given, is written as a single ``# <comment>``
        line above the CSV header of a *newly created* file (existing files
        keep whatever comment they have); readers skip comment lines.
        """
        if not rows:
            return self._path(experiment_id, "csv")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "csv")
        fieldnames = list(rows[0].keys())
        for row in rows:
            if list(row.keys()) != fieldnames:
                raise ExperimentError("all rows must share the same columns")
        existing_text = ""
        if path.exists():
            existing_text = path.read_text(encoding="utf-8")
        buffer = io.StringIO()
        if not existing_text.strip():
            if header_comment is not None:
                if "\n" in header_comment or "\r" in header_comment:
                    raise ExperimentError("header comment must be a single line")
                buffer.write(f"# {header_comment}\n")
            writer = csv.DictWriter(buffer, fieldnames=fieldnames)
            writer.writeheader()
        else:
            header_row = next(
                csv.reader(
                    line
                    for line in io.StringIO(existing_text)
                    if not line.startswith("#")
                ),
                None,
            )
            if header_row and header_row != fieldnames:
                raise ExperimentError(
                    f"cannot append to {path}: existing columns {header_row} do "
                    f"not match {fieldnames}"
                )
            buffer.write(existing_text)
            if not existing_text.endswith("\n"):
                buffer.write("\n")
            writer = csv.DictWriter(buffer, fieldnames=fieldnames)
        writer.writerows(rows)
        _atomic_write_text(path, buffer.getvalue())
        return path

    def read_header_comment(self, experiment_id: str) -> Optional[str]:
        """The ``# <comment>`` line of a CSV, without the marker; ``None`` if
        the file is missing or carries no comment."""
        path = self._path(experiment_id, "csv")
        if not path.exists():
            return None
        with path.open("r", encoding="utf-8", newline="") as handle:
            first = handle.readline()
        if first.startswith("#"):
            return first[1:].strip()
        return None

    def has_rows(self, experiment_id: str) -> bool:
        """Whether a CSV for ``experiment_id`` already exists on disk."""
        return self._path(experiment_id, "csv").exists()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load_json(self, experiment_id: str) -> Dict[str, object]:
        """Load a previously saved JSON document."""
        path = self._path(experiment_id, "json")
        if not path.exists():
            raise ExperimentError(f"no saved results found at {path}")
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        """Load a previously saved CSV as a list of string-valued dictionaries.

        Leading ``#`` comment lines (e.g. the sweep-spec fingerprint) are
        skipped.
        """
        path = self._path(experiment_id, "csv")
        if not path.exists():
            raise ExperimentError(f"no saved results found at {path}")
        with path.open("r", encoding="utf-8", newline="") as handle:
            return list(
                csv.DictReader(line for line in handle if not line.startswith("#"))
            )

    def list_experiments(self) -> List[str]:
        """Identifiers of every experiment with a saved JSON document."""
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))


def _jsonify(value: object) -> object:
    """JSON encoder fallback for numpy scalars and arrays."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    raise TypeError(f"object of type {type(value).__name__} is not JSON serializable")
