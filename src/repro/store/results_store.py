"""Persistence of experiment results to JSON and CSV files.

Every experiment harness in :mod:`repro.experiments` can hand its output to a
:class:`ResultsStore`, which writes one JSON document per experiment plus an
optional flat CSV for spreadsheet-style inspection.  The store never
overwrites silently: re-saving an experiment requires ``overwrite=True``.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..exceptions import ExperimentError

__all__ = ["ResultsStore"]


class ResultsStore:
    """Directory-backed store for experiment outputs.

    Parameters
    ----------
    root:
        Directory in which result files are written (created on demand).
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path(self, experiment_id: str, suffix: str) -> Path:
        safe = experiment_id.replace("/", "_").replace(" ", "_").lower()
        return self.root / f"{safe}.{suffix}"

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def save_json(
        self, experiment_id: str, payload: Dict[str, object], overwrite: bool = False
    ) -> Path:
        """Persist ``payload`` as ``<experiment_id>.json`` and return the path."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "json")
        if path.exists() and not overwrite:
            raise ExperimentError(
                f"{path} already exists; pass overwrite=True to replace it"
            )
        with path.open("w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True, default=_jsonify)
        return path

    def save_rows(
        self,
        experiment_id: str,
        rows: Sequence[Dict[str, object]],
        overwrite: bool = False,
    ) -> Path:
        """Persist a list of flat dictionaries as ``<experiment_id>.csv``."""
        if not rows:
            raise ExperimentError("cannot save an empty row list")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "csv")
        if path.exists() and not overwrite:
            raise ExperimentError(
                f"{path} already exists; pass overwrite=True to replace it"
            )
        fieldnames = list(rows[0].keys())
        for row in rows:
            if list(row.keys()) != fieldnames:
                raise ExperimentError("all rows must share the same columns")
        with path.open("w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            writer.writerows(rows)
        return path

    def append_rows(
        self, experiment_id: str, rows: Sequence[Dict[str, object]]
    ) -> Path:
        """Append flat dictionaries to ``<experiment_id>.csv``, creating it on
        first use.

        Unlike :meth:`save_rows` this is an *incremental* writer: long-running
        sweeps flush completed grid points as they finish, so a crashed or
        interrupted run leaves every already-computed row on disk.  Appended
        rows must match the columns of the existing file.
        """
        if not rows:
            return self._path(experiment_id, "csv")
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(experiment_id, "csv")
        fieldnames = list(rows[0].keys())
        for row in rows:
            if list(row.keys()) != fieldnames:
                raise ExperimentError("all rows must share the same columns")
        write_header = not path.exists() or path.stat().st_size == 0
        if not write_header:
            with path.open("r", encoding="utf-8", newline="") as handle:
                existing = next(csv.reader(handle), None)
            if existing and existing != fieldnames:
                raise ExperimentError(
                    f"cannot append to {path}: existing columns {existing} do not "
                    f"match {fieldnames}"
                )
        with path.open("a", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            if write_header:
                writer.writeheader()
            writer.writerows(rows)
        return path

    def has_rows(self, experiment_id: str) -> bool:
        """Whether a CSV for ``experiment_id`` already exists on disk."""
        return self._path(experiment_id, "csv").exists()

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load_json(self, experiment_id: str) -> Dict[str, object]:
        """Load a previously saved JSON document."""
        path = self._path(experiment_id, "json")
        if not path.exists():
            raise ExperimentError(f"no saved results found at {path}")
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        """Load a previously saved CSV as a list of string-valued dictionaries."""
        path = self._path(experiment_id, "csv")
        if not path.exists():
            raise ExperimentError(f"no saved results found at {path}")
        with path.open("r", encoding="utf-8", newline="") as handle:
            return list(csv.DictReader(handle))

    def list_experiments(self) -> List[str]:
        """Identifiers of every experiment with a saved JSON document."""
        if not self.root.exists():
            return []
        return sorted(path.stem for path in self.root.glob("*.json"))


def _jsonify(value: object) -> object:
    """JSON encoder fallback for numpy scalars and arrays."""
    import numpy as np

    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    raise TypeError(f"object of type {type(value).__name__} is not JSON serializable")
