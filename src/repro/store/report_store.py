"""Columnar in-memory staging area for sanitized reports.

A collection server receives one report per user per round.  The
:class:`ReportStore` groups reports by round, keeps them in compact numpy
buffers and hands complete rounds to the protocol's aggregator.  It is used
by the examples to show what a deployment's ingestion path looks like, and it
gives the tests a place to exercise out-of-order and partial-round arrival.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence

import numpy as np

from ..exceptions import AggregationError

__all__ = ["RoundBatch", "ReportStore"]


@dataclass
class RoundBatch:
    """All reports received for one collection round.

    Attributes
    ----------
    round_index:
        The collection round the batch belongs to.
    reports:
        The raw reports in arrival order (protocol-specific objects).
    user_ids:
        The submitting users, aligned with ``reports``.
    """

    round_index: int
    reports: List[object]
    user_ids: List[int]

    @property
    def n_reports(self) -> int:
        """Number of reports in the batch."""
        return len(self.reports)


class ReportStore:
    """Accumulates sanitized reports grouped by collection round.

    Parameters
    ----------
    expected_users:
        When provided, :meth:`is_round_complete` compares against this count
        and :meth:`add` rejects duplicate submissions from the same user in
        the same round.
    """

    def __init__(self, expected_users: Optional[int] = None) -> None:
        self.expected_users = expected_users
        self._rounds: Dict[int, RoundBatch] = {}
        self._seen: Dict[int, set] = {}

    def add(self, round_index: int, user_id: int, report: object) -> None:
        """Register one report from ``user_id`` for ``round_index``."""
        if round_index < 0:
            raise AggregationError(f"round_index must be non-negative, got {round_index}")
        if user_id < 0:
            raise AggregationError(f"user_id must be non-negative, got {user_id}")
        seen = self._seen.setdefault(round_index, set())
        if user_id in seen:
            raise AggregationError(
                f"user {user_id} already submitted a report for round {round_index}"
            )
        seen.add(user_id)
        batch = self._rounds.setdefault(
            round_index, RoundBatch(round_index=round_index, reports=[], user_ids=[])
        )
        batch.reports.append(report)
        batch.user_ids.append(user_id)

    def add_round(self, round_index: int, reports: Sequence[object]) -> None:
        """Register a full round of reports at once (users numbered 0..n-1).

        All-or-nothing: the whole batch is validated before any report is
        registered, so a rejected round leaves the store exactly as it was.
        The old per-report loop raised mid-way on the first duplicate user,
        leaving the earlier reports of the *failed* round registered — a
        retry of the same round then failed on users it never accepted.
        """
        if round_index < 0:
            raise AggregationError(f"round_index must be non-negative, got {round_index}")
        seen = self._seen.get(round_index, set())
        duplicates = sorted(user_id for user_id in range(len(reports)) if user_id in seen)
        if duplicates:
            raise AggregationError(
                f"round {round_index} already holds reports from users "
                f"{duplicates}; add_round is all-or-nothing and registered "
                f"none of this batch"
            )
        for user_id, report in enumerate(reports):
            self.add(round_index, user_id, report)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def rounds(self) -> List[int]:
        """Round indices with at least one report, in increasing order."""
        return sorted(self._rounds)

    def batch(self, round_index: int) -> RoundBatch:
        """The batch for ``round_index`` (raises if no report was received)."""
        try:
            return self._rounds[round_index]
        except KeyError:
            raise AggregationError(f"no reports received for round {round_index}") from None

    def n_reports(self, round_index: int) -> int:
        """Number of reports received for ``round_index`` (0 if none)."""
        batch = self._rounds.get(round_index)
        return 0 if batch is None else batch.n_reports

    def is_round_complete(self, round_index: int) -> bool:
        """Whether every expected user has reported for ``round_index``."""
        if self.expected_users is None:
            raise AggregationError(
                "is_round_complete requires the store to be built with expected_users"
            )
        return self.n_reports(round_index) >= self.expected_users

    def iter_complete_rounds(self) -> Iterator[RoundBatch]:
        """Iterate over batches that have reached the expected user count."""
        for round_index in self.rounds():
            if self.expected_users is None or self.is_round_complete(round_index):
                yield self._rounds[round_index]

    def __len__(self) -> int:
        return len(self._rounds)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ReportStore(rounds={len(self._rounds)}, expected_users={self.expected_users})"
