"""SQLite results backend: one WAL-mode database per results directory.

Layout (``<root>/results.sqlite``):

* ``experiments`` — one row per experiment id: the creating append's header
  comment, the spec fingerprint parsed out of it (indexed, so
  ``repro-ldp query --fingerprint`` touches no data rows of non-matching
  experiments), and the JSON-encoded column list.
* ``rows`` — the data rows, keyed ``(experiment_id, seq)`` so load order is
  append order.  ``protocol`` and ``eps_inf`` are denormalized into typed,
  indexed columns (every sweep row has them); the full row is stored as a
  JSON object of the canonical cell strings, which keeps the backend
  schema-free and migration to/from CSV byte-identical.

Crash safety / concurrency: the database runs ``journal_mode=WAL`` with
``synchronous=FULL``, and every :meth:`SqliteBackend.append_rows` call is a
single explicit ``BEGIN IMMEDIATE`` transaction — a writer killed mid-append
rolls back to the previously committed prefix (the SQL analogue of the CSV
torn-tail truncation, but batch-granular instead of line-granular).
Concurrent sweep writers on one database serialize on the WAL write lock
with a 30 s busy timeout; each process must open its own backend instance
(SQLite connections do not cross ``fork``/pickle boundaries, and the sweep
executor only ever flushes from the parent process).
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Union

from ..exceptions import ExperimentError
from .backends import (
    ResultsBackend,
    fingerprint_from_comment,
    register_backend,
    validate_header_comment,
    validate_rows,
)

__all__ = ["SqliteBackend", "DB_FILENAME"]

#: Database filename inside a results directory (also the marker
#: :func:`~repro.store.backends.detect_backend_kind` looks for).
DB_FILENAME = "results.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS experiments (
    experiment_id TEXT PRIMARY KEY,
    header_comment TEXT,
    fingerprint TEXT,
    columns TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_experiments_fingerprint
    ON experiments (fingerprint);
CREATE TABLE IF NOT EXISTS rows (
    experiment_id TEXT NOT NULL,
    seq INTEGER NOT NULL,
    protocol TEXT,
    eps_inf REAL,
    data TEXT NOT NULL,
    PRIMARY KEY (experiment_id, seq)
);
CREATE INDEX IF NOT EXISTS idx_rows_protocol_eps
    ON rows (protocol, eps_inf);
"""


def _eps_inf_of(row: Mapping[str, str]) -> Optional[float]:
    """The row's ``eps_inf`` as a float for the typed column, else NULL."""
    try:
        return float(row["eps_inf"])
    except (KeyError, ValueError):
        return None


class SqliteBackend(ResultsBackend):
    """All experiments of one results directory in a single WAL database."""

    kind = "sqlite"

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.path = self.root / DB_FILENAME
        self._connection: Optional[sqlite3.Connection] = None

    def _connect(self) -> sqlite3.Connection:
        if self._connection is None:
            self.root.mkdir(parents=True, exist_ok=True)
            # isolation_level=None: no implicit transactions — append_rows
            # drives BEGIN IMMEDIATE / COMMIT itself so the all-or-nothing
            # boundary is exactly one append call.
            connection = sqlite3.connect(
                str(self.path), timeout=30.0, isolation_level=None
            )
            connection.execute("PRAGMA journal_mode=WAL")
            connection.execute("PRAGMA synchronous=FULL")
            connection.execute("PRAGMA busy_timeout=30000")
            connection.executescript(_SCHEMA)
            self._connection = connection
        return self._connection

    # ------------------------------------------------------------------ #
    # Writing
    # ------------------------------------------------------------------ #
    def append_rows(
        self,
        experiment_id: str,
        rows: Sequence[Mapping[str, object]],
        header_comment: Optional[str] = None,
    ) -> None:
        if not isinstance(experiment_id, str) or not experiment_id:
            raise ExperimentError("experiment_id must be a non-empty string")
        if not rows:
            return
        fieldnames, stringified = validate_rows(rows)
        validate_header_comment(header_comment)
        connection = self._connect()
        connection.execute("BEGIN IMMEDIATE")
        try:
            existing = connection.execute(
                "SELECT columns FROM experiments WHERE experiment_id = ?",
                (experiment_id,),
            ).fetchone()
            if existing is None:
                connection.execute(
                    "INSERT INTO experiments "
                    "(experiment_id, header_comment, fingerprint, columns) "
                    "VALUES (?, ?, ?, ?)",
                    (
                        experiment_id,
                        header_comment,
                        fingerprint_from_comment(header_comment),
                        json.dumps(fieldnames),
                    ),
                )
            else:
                existing_fields = json.loads(existing[0])
                if existing_fields != fieldnames:
                    raise ExperimentError(
                        f"cannot append to {self.location(experiment_id)}: "
                        f"existing columns {existing_fields} do not match "
                        f"{fieldnames}"
                    )
            next_seq = connection.execute(
                "SELECT COALESCE(MAX(seq) + 1, 0) FROM rows "
                "WHERE experiment_id = ?",
                (experiment_id,),
            ).fetchone()[0]
            connection.executemany(
                "INSERT INTO rows (experiment_id, seq, protocol, eps_inf, data) "
                "VALUES (?, ?, ?, ?, ?)",
                [
                    (
                        experiment_id,
                        next_seq + offset,
                        row.get("protocol"),
                        _eps_inf_of(row),
                        json.dumps(row),
                    )
                    for offset, row in enumerate(stringified)
                ],
            )
            connection.execute("COMMIT")
        except BaseException:
            # repro: allow[EXC-BROAD] transactional append must roll back on
            # every exit path (including KeyboardInterrupt) and re-raise; a
            # narrower clause would leave the write lock held.
            connection.execute("ROLLBACK")
            raise

    # ------------------------------------------------------------------ #
    # Reading
    # ------------------------------------------------------------------ #
    def load_rows(self, experiment_id: str) -> List[Dict[str, str]]:
        connection = self._connect()
        if not self.has_rows(experiment_id):
            raise ExperimentError(
                f"no saved results found at {self.location(experiment_id)}"
            )
        cursor = connection.execute(
            "SELECT data FROM rows WHERE experiment_id = ? ORDER BY seq",
            (experiment_id,),
        )
        return [json.loads(data) for (data,) in cursor]

    def read_header_comment(self, experiment_id: str) -> Optional[str]:
        row = self._connect().execute(
            "SELECT header_comment FROM experiments WHERE experiment_id = ?",
            (experiment_id,),
        ).fetchone()
        return None if row is None else row[0]

    def has_rows(self, experiment_id: str) -> bool:
        row = self._connect().execute(
            "SELECT 1 FROM experiments WHERE experiment_id = ? LIMIT 1",
            (experiment_id,),
        ).fetchone()
        return row is not None

    def list_experiments(self) -> List[str]:
        cursor = self._connect().execute(
            "SELECT experiment_id FROM experiments ORDER BY experiment_id"
        )
        return [experiment_id for (experiment_id,) in cursor]

    def location(self, experiment_id: str) -> str:
        return f"{self.path}#{experiment_id}"

    # ------------------------------------------------------------------ #
    # Querying
    # ------------------------------------------------------------------ #
    def query(
        self,
        experiment_id: Optional[str] = None,
        fingerprint: Optional[str] = None,
        protocol: Optional[str] = None,
        eps_min: Optional[float] = None,
        eps_max: Optional[float] = None,
    ) -> List[Dict[str, str]]:
        """SQL-level filtering: the fingerprint/protocol/ε predicates run on
        the indexed columns, so only matching rows are ever deserialized —
        no full-table load.  Result shape matches the base-class scan."""
        clauses = ["1 = 1"]
        params: List[object] = []
        if experiment_id is not None:
            clauses.append("rows.experiment_id = ?")
            params.append(experiment_id)
        if fingerprint is not None:
            clauses.append("experiments.fingerprint = ?")
            params.append(fingerprint)
        if protocol is not None:
            clauses.append("rows.protocol = ?")
            params.append(protocol)
        if eps_min is not None:
            clauses.append("rows.eps_inf >= ?")
            params.append(eps_min)
        if eps_max is not None:
            clauses.append("rows.eps_inf <= ?")
            params.append(eps_max)
        cursor = self._connect().execute(
            "SELECT rows.experiment_id, rows.data FROM rows "
            "JOIN experiments ON experiments.experiment_id = rows.experiment_id "
            f"WHERE {' AND '.join(clauses)} "
            "ORDER BY rows.experiment_id, rows.seq",
            params,
        )
        return [
            {"experiment_id": identifier, **json.loads(data)}
            for identifier, data in cursor
        ]

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        if self._connection is not None:
            self._connection.close()
            self._connection = None


register_backend(SqliteBackend.kind, SqliteBackend)
