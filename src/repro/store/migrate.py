"""Lift results between backends (``repro-ldp migrate-store``).

The canonical use is promoting a directory of historical sweep CSVs into a
queryable SQLite database, but any registered backend pair works: rows are
read through the source backend's ``load_rows`` (canonical cell strings) and
re-appended through the destination's ``append_rows``, so the migrated rows
are byte-identical to the originals and header comments — including the
``sweep_spec_fingerprint=…`` convention that guards ``sweep --resume`` —
carry over verbatim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..exceptions import ExperimentError
from .backends import make_backend

__all__ = ["migrate_store"]


def migrate_store(
    source_root: Union[str, Path],
    dest_root: Union[str, Path],
    source_kind: str,
    dest_kind: str,
    experiments: Optional[List[str]] = None,
) -> Dict[str, int]:
    """Copy experiments from one backend to another; returns row counts.

    Parameters
    ----------
    source_root, dest_root:
        Results directories (may be the same directory — e.g. adding a
        ``results.sqlite`` next to the CSVs it was lifted from).
    source_kind, dest_kind:
        Registered backend kinds (``csv``, ``sqlite``, ``parquet``).
    experiments:
        Identifiers to migrate; every experiment in the source when omitted.

    The migration is append-only and refuses to touch a destination
    experiment that already has rows — rerunning after a partial failure
    migrates only the experiments that are still missing.
    """
    with make_backend(source_kind, source_root) as source, make_backend(
        dest_kind, dest_root
    ) as dest:
        identifiers = (
            list(experiments) if experiments is not None else source.list_experiments()
        )
        if not identifiers:
            raise ExperimentError(
                f"no experiments to migrate from {source_root} ({source_kind})"
            )
        migrated: Dict[str, int] = {}
        for experiment_id in identifiers:
            rows = source.load_rows(experiment_id)
            if dest.has_rows(experiment_id):
                raise ExperimentError(
                    f"destination already holds rows for {experiment_id!r} at "
                    f"{dest.location(experiment_id)}; refusing to mix stores"
                )
            if not rows:
                migrated[experiment_id] = 0
                continue
            dest.append_rows(
                experiment_id,
                rows,
                header_comment=source.read_header_comment(experiment_id),
            )
            migrated[experiment_id] = len(rows)
        return migrated
