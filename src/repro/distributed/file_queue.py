"""Crash-safe file-spool transport.

The queue is a directory tree shared between the coordinator and any number
of worker processes (same host, or any shared filesystem)::

    <queue_dir>/
        tasks/      task-<shard>.json      claimable work
        claims/     task-<shard>.json      claimed work (mtime = lease start)
        summaries/  summary-<shard>.npz    completed results
        tmp/                               staging for atomic publishes

Every state transition is a single ``os.replace``/``os.rename`` within the
queue directory, which POSIX guarantees to be atomic:

* **publish** writes the payload to ``tmp/`` and renames it into ``tasks/``
  — a reader never observes a half-written task;
* **claim** renames ``tasks/x`` to ``claims/x`` — exactly one of several
  racing workers wins (the losers see ``FileNotFoundError`` and move on);
* **complete** writes the summary to ``tmp/`` and renames it into
  ``summaries/`` — a worker SIGKILLed mid-write leaves only a stale temp
  file, never a torn summary;
* **reclaim** renames an expired ``claims/x`` back to ``tasks/x``.

A worker killed at *any* instant therefore leaves the queue in one of two
recoverable states: its task still sits in ``claims/`` (requeued after the
lease expires) or its summary already landed in ``summaries/`` (the shard is
simply done).  The lease clock is the claim file's mtime, refreshed by the
claiming worker via :func:`os.utime`.

Scanning is **snapshot-diffed**, not repeated: every rename into (or out
of) a spool directory bumps that directory's own mtime, so both endpoints
stat the directory first and skip the listing entirely while the mtime is
unchanged — the common poll-loop case.  When it has changed, the
coordinator takes one :func:`os.scandir` snapshot of ``summaries/`` (the
``DirEntry`` stat results come for free) and diffs it against the
``(mtime_ns, size)`` signatures it has already delivered or rejected, so a
collection with thousands of spooled summaries no longer re-stats every
file on every 20 ms poll.

With ``auth=`` (a :class:`~repro.distributed.auth.PayloadAuthenticator`)
task files are signed by the coordinator and verified by the claiming
worker, and summary files are signed by the worker and verified by the
coordinator's scan — the defense for queue directories on a filesystem
other parties can write to.  A file that fails verification is rejected and
counted (:attr:`FileQueueTransport.rejected` /
:attr:`FileQueueWorker.rejected`), never executed or absorbed: a bad
summary's shard recovers through the lease-expiry requeue, and a bad task
file is unlinked by the worker and republished from the coordinator's
authentic copy (see :meth:`FileQueueTransport.missing_tasks`).
"""

from __future__ import annotations

import os
import time
import uuid
from collections import deque
from pathlib import Path
from typing import Deque, Dict, List, Optional, Sequence, Tuple, Union

from ..obs.metrics import default_registry
from .auth import AuthenticationError, PayloadAuthenticator
from .codec import TransportError
from .transports import SummaryEnvelope, TaskEnvelope, Transport, WorkerEndpoint

__all__ = ["FileQueueTransport", "FileQueueWorker"]

_TASK_PREFIX = "task-"
_SUMMARY_PREFIX = "summary-"

#: ``(mtime_ns, size)`` of one spooled file version.
_FileSignature = Tuple[int, int]

#: The mtime gates only trust an *unchanged* directory mtime once it is
#: this much older than the wall clock: on filesystems with coarse
#: timestamps (1 s on HFS+, jiffies on older Linux kernels) two renames
#: inside one timestamp tick are indistinguishable, so a recent mtime may
#: still be hiding a change.
_DIR_MTIME_TRUST_NS = 2_000_000_000

#: Unconditional rescan interval: even a trusted-looking mtime (e.g. under
#: NFS clock skew) never suppresses listings for longer than this.
_FORCED_RESCAN_NS = 5_000_000_000


def _skip_scan(cached_mtime_ns: int, dir_mtime_ns: int, last_scan_ns: int) -> bool:
    """Whether an unchanged directory mtime justifies skipping the listing."""
    now_ns = time.time_ns()
    return (
        dir_mtime_ns == cached_mtime_ns
        and now_ns - dir_mtime_ns > _DIR_MTIME_TRUST_NS
        and now_ns - last_scan_ns < _FORCED_RESCAN_NS
    )


def _shard_from_name(name: str, prefix: str, suffix: str) -> Optional[int]:
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    try:
        return int(name[len(prefix) : -len(suffix)])
    except ValueError:
        return None


class _QueueLayout:
    """Shared directory layout helpers for both endpoints."""

    def __init__(self, queue_dir: Union[str, Path]) -> None:
        self.root = Path(queue_dir)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.summaries = self.root / "summaries"
        self.tmp = self.root / "tmp"
        for directory in (self.tasks, self.claims, self.summaries, self.tmp):
            directory.mkdir(parents=True, exist_ok=True)

    def task_name(self, shard_id: int) -> str:
        return f"{_TASK_PREFIX}{int(shard_id):06d}.json"

    def summary_name(self, shard_id: int) -> str:
        return f"{_SUMMARY_PREFIX}{int(shard_id):06d}.npz"

    def stage(self, name: str, payload: bytes) -> Path:
        """Write ``payload`` to a unique temp file and return its path."""
        staged = self.tmp / f"{name}.{os.getpid()}.{uuid.uuid4().hex}"
        # repro: allow[IO-ATOMIC] this IS the staging write; publish is a rename
        with staged.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return staged


class FileQueueTransport(Transport):
    """Coordinator endpoint of the file-spool queue."""

    def __init__(
        self,
        queue_dir: Union[str, Path],
        auth: Optional[PayloadAuthenticator] = None,
    ) -> None:
        self._layout = _QueueLayout(queue_dir)
        self._auth = auth
        #: shard id -> signature of the summary file last delivered.  Keyed
        #: on the file signature, not the shard id alone: a stale summary
        #: from a previous collection in a reused queue dir gets
        #: *overwritten* by the fresh worker result, and the replacement
        #: must be delivered again even though the shard id repeats.
        self._delivered: Dict[int, _FileSignature] = {}
        #: shard id -> signature of a summary file version that failed
        #: verification (counted once, then skipped until the file changes).
        self._rejected_signatures: Dict[int, _FileSignature] = {}
        #: Summary files dropped because their payload failed verification.
        self.rejected = 0
        self._m_rejected = default_registry().counter(
            "repro_transport_rejected_total",
            "Payloads dropped after failing verification, by transport and side.",
        ).labels(transport="file", side="coordinator")
        #: ``summaries/`` directory mtime at the last snapshot; while it is
        #: unchanged (and trustworthy — see :func:`_skip_scan`) no rename has
        #: touched the spool and the scan is skipped.
        self._summaries_dir_mtime_ns = -1
        self._last_summary_scan_ns = 0
        #: Snapshot entries not yet delivered, in shard order.
        self._deliverable: Deque[Tuple[int, str, _FileSignature]] = deque()

    @property
    def queue_dir(self) -> Path:
        return self._layout.root

    def publish(self, envelope: TaskEnvelope) -> None:
        layout = self._layout
        payload = envelope.payload
        if self._auth is not None:
            payload = self._auth.sign(payload)
        staged = layout.stage(layout.task_name(envelope.shard_id), payload)
        os.replace(staged, layout.tasks / layout.task_name(envelope.shard_id))

    def poll_summary(self, timeout: float = 0.0) -> Optional[SummaryEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            envelope = self._scan_summaries()
            if envelope is not None:
                return envelope
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.02)

    def _scan_summaries(self) -> Optional[SummaryEnvelope]:
        envelope = self._pop_deliverable()
        if envelope is not None:
            return envelope
        layout = self._layout
        try:
            dir_stat = os.stat(layout.summaries)
        except FileNotFoundError:  # pragma: no cover - concurrent cleanup
            return None
        if _skip_scan(
            self._summaries_dir_mtime_ns,
            dir_stat.st_mtime_ns,
            self._last_summary_scan_ns,
        ):
            return None  # no rename has touched the spool since the snapshot
        # Record the mtime read *before* the snapshot: a rename landing while
        # we scan bumps it again, forcing the next poll to re-snapshot, so a
        # file the scan raced past is never lost.
        self._summaries_dir_mtime_ns = dir_stat.st_mtime_ns
        self._last_summary_scan_ns = time.time_ns()
        fresh: List[Tuple[int, str, _FileSignature]] = []
        with os.scandir(layout.summaries) as entries:
            for entry in entries:
                shard_id = _shard_from_name(entry.name, _SUMMARY_PREFIX, ".npz")
                if shard_id is None:
                    continue
                try:
                    stat = entry.stat()
                except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                    continue
                signature = (stat.st_mtime_ns, stat.st_size)
                if self._delivered.get(shard_id) == signature:
                    continue
                if self._rejected_signatures.get(shard_id) == signature:
                    continue
                fresh.append((shard_id, entry.name, signature))
        fresh.sort()
        self._deliverable.extend(fresh)
        return self._pop_deliverable()

    def _pop_deliverable(self) -> Optional[SummaryEnvelope]:
        while self._deliverable:
            shard_id, name, signature = self._deliverable.popleft()
            if self._delivered.get(shard_id) == signature:
                continue
            try:
                payload = (self._layout.summaries / name).read_bytes()
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                continue
            if self._auth is not None:
                try:
                    payload = self._auth.verify(payload)
                except AuthenticationError:
                    # Reject and count this file version; the shard recovers
                    # through the lease-expiry requeue / task republish.
                    self.rejected += 1
                    self._m_rejected.inc()
                    self._rejected_signatures[shard_id] = signature
                    continue
            self._delivered[shard_id] = signature
            return SummaryEnvelope(shard_id=shard_id, payload=payload)
        return None

    def reclaim_expired(self, lease_timeout: float) -> List[int]:
        layout = self._layout
        now = time.time()
        reclaimed: List[int] = []
        for name in sorted(os.listdir(layout.claims)):
            shard_id = _shard_from_name(name, _TASK_PREFIX, ".json")
            if shard_id is None:
                continue
            try:
                claim_stat = os.stat(layout.claims / name)
            except FileNotFoundError:
                continue
            try:
                summary_stat = os.stat(
                    layout.summaries / layout.summary_name(shard_id)
                )
            except FileNotFoundError:
                summary_stat = None
            if (
                summary_stat is not None
                and summary_stat.st_mtime_ns >= claim_stat.st_mtime_ns
            ):
                # The claimant delivered (the summary postdates the lease
                # start): the claim is moot, drop it instead of requeueing.
                # An OLDER summary is stale spool content from a previous
                # collection and must not cancel a live claim.
                try:
                    os.unlink(layout.claims / name)
                except FileNotFoundError:
                    pass
                continue
            age = now - claim_stat.st_mtime
            if age < lease_timeout:
                continue
            try:
                os.rename(layout.claims / name, layout.tasks / name)
            except FileNotFoundError:  # pragma: no cover - lost a reclaim race
                continue
            reclaimed.append(shard_id)
        return reclaimed

    def missing_tasks(self, shard_ids: Sequence[int]) -> List[int]:
        """Shards whose task file vanished from the whole spool.

        A task file can disappear without a summary: an operator deleted it,
        or a worker destroyed its claim after the payload failed
        verification.  Such shards would otherwise hang the collection —
        neither claimable, nor leased, nor done — so the coordinator
        republishes its authentic copy of each one.  A summary file whose
        current version failed verification counts as *absent* here: its
        claim is already gone (the worker delivered before the tampering),
        so the republish path is the only way the shard can still recover.
        A shard mid-claim can transiently appear in neither directory; the
        resulting spurious republish at worst produces a duplicate summary,
        which the coordinator deduplicates.
        """
        layout = self._layout
        missing: List[int] = []
        for shard_id in shard_ids:
            task_name = layout.task_name(shard_id)
            if (layout.tasks / task_name).exists():
                continue
            if (layout.claims / task_name).exists():
                continue
            try:
                stat = os.stat(layout.summaries / layout.summary_name(shard_id))
            except FileNotFoundError:
                stat = None
            if stat is not None:
                signature = (stat.st_mtime_ns, stat.st_size)
                if self._rejected_signatures.get(shard_id) != signature:
                    continue  # a (so far) credible summary is on disk
            missing.append(shard_id)
        return missing

    def worker(self) -> "FileQueueWorker":
        return FileQueueWorker(self._layout.root, auth=self._auth)


class FileQueueWorker(WorkerEndpoint):
    """Worker endpoint of the file-spool queue.

    Construct directly with the shared queue directory — worker processes do
    not need (and must not share) the coordinator object.
    """

    def __init__(
        self,
        queue_dir: Union[str, Path],
        auth: Optional[PayloadAuthenticator] = None,
    ) -> None:
        self._layout = _QueueLayout(queue_dir)
        self._auth = auth
        #: ``tasks/`` directory mtime after the last scan that found nothing
        #: claimable; while it is unchanged (and trustworthy — see
        #: :func:`_skip_scan`) the listing is skipped.
        self._idle_tasks_mtime_ns = -1
        self._last_task_scan_ns = 0
        #: Task files destroyed because their payload failed verification.
        self.rejected = 0
        self._m_rejected = default_registry().counter(
            "repro_transport_rejected_total",
            "Payloads dropped after failing verification, by transport and side.",
        ).labels(transport="file", side="worker")

    def claim(self, timeout: float = 0.0) -> Optional[TaskEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            envelope = self._try_claim()
            if envelope is not None:
                return envelope
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.02)

    def _try_claim(self) -> Optional[TaskEnvelope]:
        layout = self._layout
        try:
            dir_stat = os.stat(layout.tasks)
        except FileNotFoundError:  # pragma: no cover - concurrent cleanup
            return None
        if _skip_scan(
            self._idle_tasks_mtime_ns, dir_stat.st_mtime_ns, self._last_task_scan_ns
        ):
            # No rename has touched tasks/ since the last empty scan, so
            # there is still nothing to claim — skip the listing.
            return None
        self._last_task_scan_ns = time.time_ns()
        for name in sorted(os.listdir(layout.tasks)):
            shard_id = _shard_from_name(name, _TASK_PREFIX, ".json")
            if shard_id is None:
                continue
            claimed_path = layout.claims / name
            try:
                os.rename(layout.tasks / name, claimed_path)
            except FileNotFoundError:
                continue  # another worker won this task's claim race
            try:
                os.utime(claimed_path)  # lease starts now, not at publish time
                payload = claimed_path.read_bytes()
            except FileNotFoundError:
                # Reclaimed from under us before the lease touch / read (the
                # file's pre-claim mtime already exceeded a tiny lease
                # timeout); treat as not claimed.
                continue
            if self._auth is not None:
                try:
                    payload = self._auth.verify(payload)
                except AuthenticationError:
                    # Never execute a tampered task.  Destroy the claim so it
                    # cannot loop through requeues; the coordinator notices
                    # the vanished shard and republishes its authentic copy.
                    self.rejected += 1
                    self._m_rejected.inc()
                    try:
                        os.unlink(claimed_path)
                    except FileNotFoundError:  # pragma: no cover
                        pass
                    continue
            return TaskEnvelope(shard_id=shard_id, payload=payload)
        # The scan came up empty: remember the pre-scan mtime so idle polls
        # stop listing the directory until a rename touches it again.
        self._idle_tasks_mtime_ns = dir_stat.st_mtime_ns
        return None

    def complete(self, shard_id: int, payload: bytes) -> None:
        layout = self._layout
        if self._auth is not None:
            payload = self._auth.sign(payload)
        name = layout.summary_name(shard_id)
        staged = layout.stage(name, payload)
        os.replace(staged, layout.summaries / name)
        try:
            os.unlink(layout.claims / layout.task_name(shard_id))
        except FileNotFoundError:
            pass  # requeued meanwhile, or claimed by a later attempt


def validate_queue_dir(queue_dir: Union[str, Path]) -> Path:
    """Normalize and create a queue directory, rejecting file paths."""
    path = Path(queue_dir)
    if path.exists() and not path.is_dir():
        raise TransportError(f"queue path {path} exists and is not a directory")
    _QueueLayout(path)
    return path
