"""Crash-safe file-spool transport.

The queue is a directory tree shared between the coordinator and any number
of worker processes (same host, or any shared filesystem)::

    <queue_dir>/
        tasks/      task-<shard>.json      claimable work
        claims/     task-<shard>.json      claimed work (mtime = lease start)
        summaries/  summary-<shard>.npz    completed results
        tmp/                               staging for atomic publishes

Every state transition is a single ``os.replace``/``os.rename`` within the
queue directory, which POSIX guarantees to be atomic:

* **publish** writes the payload to ``tmp/`` and renames it into ``tasks/``
  — a reader never observes a half-written task;
* **claim** renames ``tasks/x`` to ``claims/x`` — exactly one of several
  racing workers wins (the losers see ``FileNotFoundError`` and move on);
* **complete** writes the summary to ``tmp/`` and renames it into
  ``summaries/`` — a worker SIGKILLed mid-write leaves only a stale temp
  file, never a torn summary;
* **reclaim** renames an expired ``claims/x`` back to ``tasks/x``.

A worker killed at *any* instant therefore leaves the queue in one of two
recoverable states: its task still sits in ``claims/`` (requeued after the
lease expires) or its summary already landed in ``summaries/`` (the shard is
simply done).  The lease clock is the claim file's mtime, refreshed by the
claiming worker via :func:`os.utime`.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from .codec import TransportError
from .transports import SummaryEnvelope, TaskEnvelope, Transport, WorkerEndpoint

__all__ = ["FileQueueTransport", "FileQueueWorker"]

_TASK_PREFIX = "task-"
_SUMMARY_PREFIX = "summary-"


def _shard_from_name(name: str, prefix: str, suffix: str) -> Optional[int]:
    if not (name.startswith(prefix) and name.endswith(suffix)):
        return None
    try:
        return int(name[len(prefix) : -len(suffix)])
    except ValueError:
        return None


class _QueueLayout:
    """Shared directory layout helpers for both endpoints."""

    def __init__(self, queue_dir: Union[str, Path]) -> None:
        self.root = Path(queue_dir)
        self.tasks = self.root / "tasks"
        self.claims = self.root / "claims"
        self.summaries = self.root / "summaries"
        self.tmp = self.root / "tmp"
        for directory in (self.tasks, self.claims, self.summaries, self.tmp):
            directory.mkdir(parents=True, exist_ok=True)

    def task_name(self, shard_id: int) -> str:
        return f"{_TASK_PREFIX}{int(shard_id):06d}.json"

    def summary_name(self, shard_id: int) -> str:
        return f"{_SUMMARY_PREFIX}{int(shard_id):06d}.npz"

    def stage(self, name: str, payload: bytes) -> Path:
        """Write ``payload`` to a unique temp file and return its path."""
        staged = self.tmp / f"{name}.{os.getpid()}.{uuid.uuid4().hex}"
        with staged.open("wb") as handle:
            handle.write(payload)
            handle.flush()
            os.fsync(handle.fileno())
        return staged


class FileQueueTransport(Transport):
    """Coordinator endpoint of the file-spool queue."""

    def __init__(self, queue_dir: Union[str, Path]) -> None:
        self._layout = _QueueLayout(queue_dir)
        #: shard id -> (mtime_ns, size) of the summary file last delivered.
        #: Keyed on the file signature, not the shard id alone: a stale
        #: summary from a previous collection in a reused queue dir gets
        #: *overwritten* by the fresh worker result, and the replacement
        #: must be delivered again even though the shard id repeats.
        self._delivered: Dict[int, Tuple[int, int]] = {}

    @property
    def queue_dir(self) -> Path:
        return self._layout.root

    def publish(self, envelope: TaskEnvelope) -> None:
        layout = self._layout
        staged = layout.stage(layout.task_name(envelope.shard_id), envelope.payload)
        os.replace(staged, layout.tasks / layout.task_name(envelope.shard_id))

    def poll_summary(self, timeout: float = 0.0) -> Optional[SummaryEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            envelope = self._scan_summaries()
            if envelope is not None:
                return envelope
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.02)

    def _scan_summaries(self) -> Optional[SummaryEnvelope]:
        for name in sorted(os.listdir(self._layout.summaries)):
            shard_id = _shard_from_name(name, _SUMMARY_PREFIX, ".npz")
            if shard_id is None:
                continue
            path = self._layout.summaries / name
            try:
                stat = os.stat(path)
                signature = (stat.st_mtime_ns, stat.st_size)
                if self._delivered.get(shard_id) == signature:
                    continue
                payload = path.read_bytes()
            except FileNotFoundError:  # pragma: no cover - concurrent cleanup
                continue
            self._delivered[shard_id] = signature
            return SummaryEnvelope(shard_id=shard_id, payload=payload)
        return None

    def reclaim_expired(self, lease_timeout: float) -> List[int]:
        layout = self._layout
        now = time.time()
        reclaimed: List[int] = []
        for name in sorted(os.listdir(layout.claims)):
            shard_id = _shard_from_name(name, _TASK_PREFIX, ".json")
            if shard_id is None:
                continue
            try:
                claim_stat = os.stat(layout.claims / name)
            except FileNotFoundError:
                continue
            try:
                summary_stat = os.stat(
                    layout.summaries / layout.summary_name(shard_id)
                )
            except FileNotFoundError:
                summary_stat = None
            if (
                summary_stat is not None
                and summary_stat.st_mtime_ns >= claim_stat.st_mtime_ns
            ):
                # The claimant delivered (the summary postdates the lease
                # start): the claim is moot, drop it instead of requeueing.
                # An OLDER summary is stale spool content from a previous
                # collection and must not cancel a live claim.
                try:
                    os.unlink(layout.claims / name)
                except FileNotFoundError:
                    pass
                continue
            age = now - claim_stat.st_mtime
            if age < lease_timeout:
                continue
            try:
                os.rename(layout.claims / name, layout.tasks / name)
            except FileNotFoundError:  # pragma: no cover - lost a reclaim race
                continue
            reclaimed.append(shard_id)
        return reclaimed

    def worker(self) -> "FileQueueWorker":
        return FileQueueWorker(self._layout.root)


class FileQueueWorker(WorkerEndpoint):
    """Worker endpoint of the file-spool queue.

    Construct directly with the shared queue directory — worker processes do
    not need (and must not share) the coordinator object.
    """

    def __init__(self, queue_dir: Union[str, Path]) -> None:
        self._layout = _QueueLayout(queue_dir)

    def claim(self, timeout: float = 0.0) -> Optional[TaskEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            envelope = self._try_claim()
            if envelope is not None:
                return envelope
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.02)

    def _try_claim(self) -> Optional[TaskEnvelope]:
        layout = self._layout
        for name in sorted(os.listdir(layout.tasks)):
            shard_id = _shard_from_name(name, _TASK_PREFIX, ".json")
            if shard_id is None:
                continue
            claimed_path = layout.claims / name
            try:
                os.rename(layout.tasks / name, claimed_path)
            except FileNotFoundError:
                continue  # another worker won this task's claim race
            try:
                os.utime(claimed_path)  # lease starts now, not at publish time
                payload = claimed_path.read_bytes()
            except FileNotFoundError:
                # Reclaimed from under us before the lease touch / read (the
                # file's pre-claim mtime already exceeded a tiny lease
                # timeout); treat as not claimed.
                continue
            return TaskEnvelope(shard_id=shard_id, payload=payload)
        return None

    def complete(self, shard_id: int, payload: bytes) -> None:
        layout = self._layout
        name = layout.summary_name(shard_id)
        staged = layout.stage(name, payload)
        os.replace(staged, layout.summaries / name)
        try:
            os.unlink(layout.claims / layout.task_name(shard_id))
        except FileNotFoundError:
            pass  # requeued meanwhile, or claimed by a later attempt


def validate_queue_dir(queue_dir: Union[str, Path]) -> Path:
    """Normalize and create a queue directory, rejecting file paths."""
    path = Path(queue_dir)
    if path.exists() and not path.is_dir():
        raise TransportError(f"queue path {path} exists and is not a directory")
    _QueueLayout(path)
    return path
