"""Distributed collection: transports, coordinator and workers.

This package decouples *what* a sharded simulation computes (the
:class:`~repro.simulation.runner.ShardTask` /
:class:`~repro.simulation.sinks.ShardSummary` contract of the simulation
layer) from *where* it runs.  A :class:`Transport` moves JSON task payloads
and ``.npz`` summary payloads — never pickled code — between one
:class:`Coordinator` and any number of workers:

=========================  ====================================================
:class:`InProcessTransport`  in-memory queues; tests and worker threads
:class:`FileQueueTransport`  spool directory with atomic claim-by-rename;
                             crash-safe across worker processes on one host
                             (or a shared filesystem)
:class:`SocketTransport`     length-prefixed TCP frames through an asyncio
                             broker; workers on other hosts
=========================  ====================================================

The coordinator detects dead workers through lease timeouts, requeues their
shards, deduplicates double-delivered summaries by shard id and streams
accepted summaries into a :class:`~repro.service.session.CollectorSession`
as they arrive; because every shard's randomness is derived from the root
seed alone, the final estimates are bit-identical to the serial path no
matter how the work was distributed, weighted, crashed or retried.

For untrusted media, both remote transports accept a
:class:`PayloadAuthenticator` (shared HMAC-SHA256 secret, resolved from an
environment variable via :func:`authenticator_from_env`): tampered or
unsigned payloads are rejected and counted, never absorbed or executed.
TCP workers park at the broker until work is pushed (zero idle frames) and
may advertise capacity hints so weighted shard plans
(``make_shard_tasks(weights=...)``) land their biggest shards on the
fastest hosts.

The ``repro-ldp serve`` / ``repro-ldp work`` CLI subcommands wire these
pieces into long-running processes; ``simulate_protocol_sharded(transport=...)``
uses them inline.
"""

from .auth import AuthenticationError, PayloadAuthenticator, authenticator_from_env
from .codec import (
    DatasetRef,
    TransportError,
    decode_summary,
    decode_task,
    encode_summary,
    encode_task,
)
from .coordinator import Coordinator, CoordinatorTimeout
from .file_queue import FileQueueTransport, FileQueueWorker
from .socket_transport import SocketTransport, SocketWorker
from .transports import (
    InProcessTransport,
    SummaryEnvelope,
    TaskEnvelope,
    Transport,
    WorkerEndpoint,
)
from .worker import LocalWorkerPool, local_worker_threads, run_worker

__all__ = [
    "AuthenticationError",
    "Coordinator",
    "CoordinatorTimeout",
    "DatasetRef",
    "PayloadAuthenticator",
    "authenticator_from_env",
    "FileQueueTransport",
    "FileQueueWorker",
    "InProcessTransport",
    "LocalWorkerPool",
    "SocketTransport",
    "SocketWorker",
    "SummaryEnvelope",
    "TaskEnvelope",
    "Transport",
    "TransportError",
    "WorkerEndpoint",
    "decode_summary",
    "decode_task",
    "encode_summary",
    "encode_task",
    "local_worker_threads",
    "run_worker",
]
