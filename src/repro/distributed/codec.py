"""Wire encoding of distributed work units and results.

Everything that crosses a transport is **plain data**: shard tasks travel as
JSON documents (the :class:`~repro.simulation.runner.ShardTask` fields plus
an optional :class:`DatasetRef` telling remote workers how to rebuild the
workload from the dataset registry), and shard summaries travel as ``.npz``
archives (numpy's own zip container).  No pickled code ever crosses a
process or host boundary, so a worker can only execute protocols and
datasets that its own library build already knows how to construct.

Seed sequences serialize by their ``(entropy, spawn_key)`` pair —
:class:`numpy.random.SeedSequence` is a pure function of those fields, so a
worker on another host reconstructs bit-identical randomness streams.
"""

from __future__ import annotations

import io
import json
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import ExperimentError
from ..simulation.runner import ShardTask
from ..simulation.sinks import ShardSummary
from ..specs import ProtocolSpec

__all__ = [
    "DatasetRef",
    "TransportError",
    "encode_task",
    "decode_task",
    "encode_summary",
    "decode_summary",
    "seed_to_dict",
    "seed_from_dict",
]

_TASK_KIND = "repro-shard-task"
_TASK_FORMAT = 1
_SUMMARY_FORMAT = 1


class TransportError(ExperimentError):
    """A payload could not be encoded, decoded or delivered."""


def seed_to_dict(seed: np.random.SeedSequence) -> Dict[str, object]:
    """JSON-scalar form of a :class:`~numpy.random.SeedSequence`."""
    entropy = seed.entropy
    if entropy is None:
        raise TransportError(
            "cannot ship a SeedSequence without explicit entropy; derive task "
            "seeds from an integer root seed"
        )
    return {
        "entropy": list(entropy) if isinstance(entropy, (list, tuple)) else int(entropy),
        "spawn_key": [int(key) for key in seed.spawn_key],
    }


def seed_from_dict(payload: Dict[str, object]) -> np.random.SeedSequence:
    """Inverse of :func:`seed_to_dict` (bit-identical streams)."""
    entropy = payload["entropy"]
    if isinstance(entropy, list):
        entropy = [int(word) for word in entropy]
    else:
        entropy = int(entropy)
    return np.random.SeedSequence(
        entropy, spawn_key=tuple(int(key) for key in payload.get("spawn_key", ()))
    )


@dataclass(frozen=True)
class DatasetRef:
    """Registry recipe for rebuilding a workload on a remote worker.

    ``make_dataset(name, scale=scale, rng=seed)`` with equal fields is
    deterministic, so every worker holding this library reconstructs the
    exact same dataset — the distributed analogue of shipping the dataset
    through a process-pool initializer.
    """

    name: str
    scale: float = 1.0
    seed: int = 0

    def build(self):
        from ..datasets import make_dataset

        return make_dataset(self.name, scale=self.scale, rng=self.seed)

    def to_dict(self) -> Dict[str, object]:
        return {"name": self.name, "scale": float(self.scale), "seed": int(self.seed)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "DatasetRef":
        return cls(
            name=str(payload["name"]),
            scale=float(payload.get("scale", 1.0)),
            seed=int(payload.get("seed", 0)),
        )

    def cache_key(self) -> Tuple[str, float, int]:
        return (self.name, float(self.scale), int(self.seed))


# --------------------------------------------------------------------- #
# Shard tasks (JSON)
# --------------------------------------------------------------------- #
def encode_task(
    shard_id: int,
    task: ShardTask,
    dataset_ref: Optional[DatasetRef] = None,
    plan: Optional[str] = None,
) -> bytes:
    """Serialize one shard task as a UTF-8 JSON payload.

    ``plan`` is the coordinator's collection-plan fingerprint; workers echo
    it back in their summaries so a coordinator can recognize (and drop)
    summaries that a reused queue still holds from a *different* collection.
    """
    document: Dict[str, object] = {
        "kind": _TASK_KIND,
        "format": _TASK_FORMAT,
        "shard_id": int(shard_id),
        "spec": task.spec.to_dict(),
        "dataset_name": task.dataset_name,
        "start": int(task.start),
        "stop": int(task.stop),
        "seed": seed_to_dict(task.seed),
    }
    if dataset_ref is not None:
        document["dataset"] = dataset_ref.to_dict()
    if plan is not None:
        document["plan"] = str(plan)
    return json.dumps(document, sort_keys=True).encode("utf-8")


def decode_task(
    payload: bytes,
) -> Tuple[int, ShardTask, Optional[DatasetRef], Optional[str]]:
    """Inverse of :func:`encode_task`; validates the payload envelope."""
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise TransportError(f"malformed task payload: {error}") from None
    if not isinstance(document, dict) or document.get("kind") != _TASK_KIND:
        raise TransportError(
            f"payload is not a shard task (kind={document.get('kind') if isinstance(document, dict) else None!r})"
        )
    if document.get("format") != _TASK_FORMAT:
        raise TransportError(
            f"unsupported task format {document.get('format')!r} "
            f"(expected {_TASK_FORMAT})"
        )
    try:
        task = ShardTask(
            spec=ProtocolSpec.from_dict(document["spec"]),
            dataset_name=str(document["dataset_name"]),
            start=int(document["start"]),
            stop=int(document["stop"]),
            seed=seed_from_dict(document["seed"]),
        )
        shard_id = int(document["shard_id"])
    except (KeyError, TypeError, ValueError) as error:
        raise TransportError(f"incomplete task payload: {error}") from None
    ref = document.get("dataset")
    dataset_ref = DatasetRef.from_dict(ref) if isinstance(ref, dict) else None
    plan = document.get("plan")
    return shard_id, task, dataset_ref, (str(plan) if plan is not None else None)


# --------------------------------------------------------------------- #
# Shard summaries (npz)
# --------------------------------------------------------------------- #
def encode_summary(
    shard_id: int, summary: ShardSummary, plan: Optional[str] = None
) -> bytes:
    """Serialize one shard summary as an ``.npz`` archive (zip magic).

    ``plan`` should echo the fingerprint received with the task (see
    :func:`encode_task`).
    """
    buffer = io.BytesIO()
    arrays: Dict[str, np.ndarray] = {
        "format": np.int64(_SUMMARY_FORMAT),
        "shard_id": np.int64(shard_id),
        "n_users": np.int64(summary.n_users),
        "support_counts": summary.support_counts,
        "distinct_memoized_per_user": summary.distinct_memoized_per_user,
    }
    if plan is not None:
        arrays["plan"] = np.array(str(plan))
    np.savez_compressed(buffer, **arrays)
    return buffer.getvalue()


def decode_summary(payload: bytes) -> Tuple[int, ShardSummary, Optional[str]]:
    """Inverse of :func:`encode_summary`."""
    try:
        with np.load(io.BytesIO(payload), allow_pickle=False) as archive:
            if int(archive["format"]) != _SUMMARY_FORMAT:
                raise TransportError(
                    f"unsupported summary format {int(archive['format'])} "
                    f"(expected {_SUMMARY_FORMAT})"
                )
            shard_id = int(archive["shard_id"])
            summary = ShardSummary(
                support_counts=archive["support_counts"],
                distinct_memoized_per_user=archive["distinct_memoized_per_user"],
                n_users=int(archive["n_users"]),
            )
            plan = str(archive["plan"][()]) if "plan" in archive else None
    except TransportError:
        raise
    except Exception as error:  # zipfile/KeyError/ValueError from np.load
        raise TransportError(f"malformed summary payload: {error}") from None
    return shard_id, summary, plan
