"""TCP transport: length-prefixed frames through an asyncio broker.

The coordinator side (:class:`SocketTransport`) runs a small asyncio broker
on a background thread.  Workers (:class:`SocketWorker`) connect with plain
blocking sockets and speak a four-message pull protocol::

    worker -> broker   READY                       "give me work"
    broker -> worker   TASK(shard, payload) |      one claimable task
                       IDLE                        nothing right now, retry
    worker -> broker   SUMMARY(shard, payload)     completed result
    broker -> worker   SHUTDOWN                    collection over, disconnect

Frames are ``>IBI`` headers (payload length, message type, shard id)
followed by the payload bytes — no pickled code on the wire, only the JSON /
npz payloads of :mod:`repro.distributed.codec`.

Fault tolerance mirrors the file queue: a task handed to a connection is
*outstanding* until its SUMMARY arrives.  If the connection drops, its
outstanding tasks go straight back to the pending queue; if a worker hangs
without disconnecting, :meth:`SocketTransport.reclaim_expired` requeues
tasks whose lease is older than the timeout.  Both paths may produce
duplicate summaries, which the coordinator deduplicates by shard id.

Broker state (pending deque, outstanding map) is guarded by one lock shared
between the event-loop thread and the coordinator thread; no handler holds
it across an ``await``.
"""

from __future__ import annotations

import asyncio
import queue
import socket
import struct
import threading
import time
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from .codec import TransportError
from .transports import SummaryEnvelope, TaskEnvelope, Transport, WorkerEndpoint

__all__ = ["SocketTransport", "SocketWorker"]

_HEADER = struct.Struct(">IBI")  # payload length, message type, shard id
_MAX_FRAME = 1 << 30  # defensive bound against garbage length prefixes

MSG_READY = 1
MSG_TASK = 2
MSG_IDLE = 3
MSG_SUMMARY = 4
MSG_SHUTDOWN = 5


def _pack_frame(msg_type: int, shard_id: int, payload: bytes = b"") -> bytes:
    return _HEADER.pack(len(payload), msg_type, shard_id) + payload


async def _read_frame_async(reader: asyncio.StreamReader) -> Tuple[int, int, bytes]:
    header = await reader.readexactly(_HEADER.size)
    length, msg_type, shard_id = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the maximum")
    payload = await reader.readexactly(length) if length else b""
    return msg_type, shard_id, payload


def _recv_exact(sock: socket.socket, n_bytes: int) -> bytes:
    chunks = []
    remaining = n_bytes
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame_blocking(sock: socket.socket) -> Tuple[int, int, bytes]:
    length, msg_type, shard_id = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the maximum")
    payload = _recv_exact(sock, length) if length else b""
    return msg_type, shard_id, payload


class SocketTransport(Transport):
    """Coordinator endpoint: an asyncio TCP broker on a background thread.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` (default) binds an ephemeral port; read
        the resolved address from :attr:`address`.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._state_lock = threading.Lock()
        self._pending: Deque[TaskEnvelope] = deque()
        #: shard id -> (connection id, lease start, envelope)
        self._outstanding: Dict[int, Tuple[int, float, TaskEnvelope]] = {}
        self._summaries: "queue.Queue[SummaryEnvelope]" = queue.Queue()
        self._writers: set = set()
        self._shutdown = False
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._address: Optional[Tuple[str, int]] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._next_connection_id = 0
        self._thread = threading.Thread(
            target=self._thread_main, args=(host, port), daemon=True,
            name="repro-socket-broker",
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise TransportError(f"broker failed to start: {self._startup_error}")

    # ------------------------------------------------------------------ #
    # Event-loop thread
    # ------------------------------------------------------------------ #
    def _thread_main(self, host: str, port: int) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop_event = asyncio.Event()
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_client, host, port)
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            loop.run_until_complete(self._stop_event.wait())
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Close client connections first so their handlers unwind through
            # the normal EOF path; cancel only whatever is still left.
            with self._state_lock:
                writers = list(self._writers)
            for writer in writers:
                writer.close()
            tasks = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.close()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._state_lock:
            connection_id = self._next_connection_id
            self._next_connection_id += 1
            self._writers.add(writer)
        try:
            while True:
                msg_type, shard_id, payload = await _read_frame_async(reader)
                if msg_type == MSG_READY:
                    frame = self._next_task_frame(connection_id)
                    writer.write(frame)
                    await writer.drain()
                elif msg_type == MSG_SUMMARY:
                    with self._state_lock:
                        self._outstanding.pop(shard_id, None)
                    self._summaries.put(
                        SummaryEnvelope(shard_id=shard_id, payload=payload)
                    )
                else:
                    break  # unknown message: drop the connection
        except (asyncio.IncompleteReadError, ConnectionError, TransportError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown while waiting on this client; exit quietly (a
            # cancelled handler must not leave asyncio's stream callback a
            # pending exception to log).
            pass
        finally:
            with self._state_lock:
                self._writers.discard(writer)
            self._requeue_connection(connection_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    def _next_task_frame(self, connection_id: int) -> bytes:
        with self._state_lock:
            if self._shutdown:
                return _pack_frame(MSG_SHUTDOWN, 0)
            if not self._pending:
                return _pack_frame(MSG_IDLE, 0)
            envelope = self._pending.popleft()
            self._outstanding[envelope.shard_id] = (
                connection_id, time.monotonic(), envelope,
            )
            return _pack_frame(MSG_TASK, envelope.shard_id, envelope.payload)

    def _requeue_connection(self, connection_id: int) -> None:
        """A connection died: its outstanding tasks become claimable again."""
        with self._state_lock:
            for shard_id, (owner, _, envelope) in list(self._outstanding.items()):
                if owner == connection_id:
                    del self._outstanding[shard_id]
                    self._pending.append(envelope)

    # ------------------------------------------------------------------ #
    # Coordinator side (called from the coordinator thread)
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The broker's resolved ``(host, port)``."""
        if self._address is None:
            raise TransportError("broker is not listening")
        return self._address

    def publish(self, envelope: TaskEnvelope) -> None:
        with self._state_lock:
            if self._shutdown:
                raise TransportError("transport is closed")
            self._pending.append(envelope)

    def poll_summary(self, timeout: float = 0.0) -> Optional[SummaryEnvelope]:
        try:
            if timeout > 0:
                return self._summaries.get(timeout=timeout)
            return self._summaries.get_nowait()
        except queue.Empty:
            return None

    def reclaim_expired(self, lease_timeout: float) -> List[int]:
        now = time.monotonic()
        reclaimed: List[int] = []
        with self._state_lock:
            for shard_id, (_, leased_at, envelope) in list(self._outstanding.items()):
                if now - leased_at >= lease_timeout:
                    del self._outstanding[shard_id]
                    self._pending.append(envelope)
                    reclaimed.append(shard_id)
        return reclaimed

    def worker(self) -> "SocketWorker":
        host, port = self.address
        return SocketWorker(host, port)

    def close(self) -> None:
        with self._state_lock:
            if self._shutdown:
                return
            self._shutdown = True
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=5.0)


class SocketWorker(WorkerEndpoint):
    """Worker endpoint: a blocking TCP client of the broker."""

    def __init__(
        self, host: str, port: int, connect_timeout: float = 10.0
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._lock = threading.Lock()
        self._shutdown_seen = False

    def claim(self, timeout: float = 0.0) -> Optional[TaskEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            if self._shutdown_seen:
                return None
            try:
                with self._lock:
                    self._sock.sendall(_pack_frame(MSG_READY, 0))
                    msg_type, shard_id, payload = _read_frame_blocking(self._sock)
            except (TransportError, ConnectionError, OSError):
                # The broker went away: for a worker that is between tasks
                # this is indistinguishable from an orderly SHUTDOWN.
                self._shutdown_seen = True
                return None
            if msg_type == MSG_TASK:
                return TaskEnvelope(shard_id=shard_id, payload=payload)
            if msg_type == MSG_SHUTDOWN:
                self._shutdown_seen = True
                return None
            if msg_type != MSG_IDLE:
                raise TransportError(f"unexpected broker message type {msg_type}")
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.02)

    def complete(self, shard_id: int, payload: bytes) -> None:
        with self._lock:
            self._sock.sendall(_pack_frame(MSG_SUMMARY, shard_id, payload))

    @property
    def saw_shutdown(self) -> bool:
        """Whether the broker told this worker the collection is over."""
        return self._shutdown_seen

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform noise
            pass
