"""TCP transport: length-prefixed frames through an asyncio broker.

The coordinator side (:class:`SocketTransport`) runs a small asyncio broker
on a background thread.  Workers (:class:`SocketWorker`) connect with plain
blocking sockets and speak a pull protocol with two claim flavours::

    worker -> broker   READY(capacity)             "give me work; I'll wait"
    broker -> worker   TASK(shard, payload)        pushed when work exists
    worker -> broker   POLL(capacity)              "give me work right now"
    broker -> worker   TASK(shard, payload) |
                       IDLE                        nothing right now, retry
    worker -> broker   SUMMARY(shard, payload)     completed result
    broker -> worker   SHUTDOWN                    collection over, disconnect

``READY`` is the default: the broker *parks* the connection and pushes a
``TASK`` the moment one is published (or requeued), so an idle worker sends
zero frames while the queue is empty — no READY/IDLE chatter, no sleep
loops.  Parked workers are woken with ``SHUTDOWN`` (or a connection close)
when the collection ends.  ``POLL`` keeps the old immediate TASK-or-IDLE
exchange as a compatibility mode (``repro-ldp work --poll``).

Both claim frames carry the worker's *capacity hint* in the header's shard
field.  The broker hands the largest pending shard (by the coordinator's
:attr:`~repro.distributed.transports.TaskEnvelope.cost`) to the
highest-capacity claimant and the smallest to everyone else, so a mixed
fleet drains a weighted shard plan (see
:func:`repro.simulation.runner.make_shard_tasks`) without the fast hosts
idling behind the slow ones.  Which worker runs which shard never changes
the estimates — shard randomness is derived from the root seed alone.

Frames are ``>IBI`` headers (payload length, message type, shard id /
capacity) followed by the payload bytes — no pickled code on the wire, only
the JSON / npz payloads of :mod:`repro.distributed.codec`.  With ``auth=``
(a :class:`~repro.distributed.auth.PayloadAuthenticator`) every task payload
is signed by the broker and verified by the worker, and every summary
payload is signed by the worker and verified by the broker; a frame that
fails verification is dropped and counted (:attr:`SocketTransport.rejected`,
:attr:`SocketWorker.rejected`), never absorbed, and the shard recovers
through the normal lease-expiry requeue.

Fault tolerance mirrors the file queue: a task handed to a connection is
*outstanding* until its SUMMARY arrives.  If the connection drops, its
outstanding tasks go straight back to the pending queue; if a worker hangs
without disconnecting, :meth:`SocketTransport.reclaim_expired` requeues
tasks whose lease is older than the timeout.  Both paths may produce
duplicate summaries, which the coordinator deduplicates by shard id.

Broker state (pending list, outstanding map, parked waiters) is guarded by
one lock shared between the event-loop thread and the coordinator thread;
no handler holds it across an ``await``, and woken waiters are written to
outside the lock.
"""

from __future__ import annotations

import asyncio
import bisect
import queue
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..obs.metrics import default_registry
from .auth import AuthenticationError, PayloadAuthenticator
from .codec import TransportError
from .transports import SummaryEnvelope, TaskEnvelope, Transport, WorkerEndpoint

__all__ = ["SocketTransport", "SocketWorker"]

_HEADER = struct.Struct(">IBI")  # payload length, message type, shard id
_MAX_FRAME = 1 << 30  # defensive bound against garbage length prefixes
_MAX_CAPACITY = 1 << 20  # defensive bound against garbage capacity hints

MSG_READY = 1
MSG_TASK = 2
MSG_IDLE = 3
MSG_SUMMARY = 4
MSG_SHUTDOWN = 5
MSG_POLL = 6


def _pack_frame(msg_type: int, shard_id: int, payload: bytes = b"") -> bytes:
    return _HEADER.pack(len(payload), msg_type, shard_id) + payload


async def _read_frame_async(reader: asyncio.StreamReader) -> Tuple[int, int, bytes]:
    header = await reader.readexactly(_HEADER.size)
    length, msg_type, shard_id = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the maximum")
    payload = await reader.readexactly(length) if length else b""
    return msg_type, shard_id, payload


class _ReceiveTimeout(Exception):
    """No frame started arriving before the caller's deadline."""


def _recv_exact(
    sock: socket.socket, n_bytes: int, deadline: Optional[float] = None
) -> bytes:
    """Receive exactly ``n_bytes``.

    ``deadline`` bounds the wait for the *first* chunk only: once a frame has
    started arriving the remainder is read without a deadline, so a timeout
    can never tear the stream mid-frame (the next read would misparse the
    leftover bytes as a header).
    """
    chunks = []
    remaining = n_bytes
    while remaining:
        if not chunks and deadline is not None:
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise _ReceiveTimeout
            sock.settimeout(timeout)
        else:
            sock.settimeout(None)
        try:
            chunk = sock.recv(remaining)
        except socket.timeout:
            raise _ReceiveTimeout from None
        finally:
            sock.settimeout(None)
        if not chunk:
            raise TransportError("connection closed mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _read_frame_blocking(
    sock: socket.socket, deadline: Optional[float] = None
) -> Tuple[int, int, bytes]:
    length, msg_type, shard_id = _HEADER.unpack(
        _recv_exact(sock, _HEADER.size, deadline)
    )
    if length > _MAX_FRAME:
        raise TransportError(f"frame of {length} bytes exceeds the maximum")
    payload = _recv_exact(sock, length) if length else b""
    return msg_type, shard_id, payload


@dataclass
class _Waiter:
    """One parked READY connection awaiting a task push."""

    order: int
    connection_id: int
    capacity: int
    writer: asyncio.StreamWriter


class SocketTransport(Transport):
    """Coordinator endpoint: an asyncio TCP broker on a background thread.

    Parameters
    ----------
    host, port:
        Bind address.  ``port=0`` (default) binds an ephemeral port; read
        the resolved address from :attr:`address`.
    auth:
        Optional :class:`~repro.distributed.auth.PayloadAuthenticator`.
        When set, published task payloads are signed and incoming summary
        payloads must verify; failures are counted in :attr:`rejected` and
        dropped without disturbing the collection.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        auth: Optional[PayloadAuthenticator] = None,
    ) -> None:
        self._auth = auth
        self._state_lock = threading.Lock()
        #: Pending tasks kept sorted ascending by (cost, shard id, seq), so a
        #: claim pops the cheapest from the front or the most expensive from
        #: the back without scanning the queue under the lock.
        self._pending: List[Tuple[float, int, int, TaskEnvelope]] = []
        self._pending_seq = 0
        #: shard id -> (connection id, lease start, envelope)
        self._outstanding: Dict[int, Tuple[int, float, TaskEnvelope]] = {}
        self._summaries: "queue.Queue[SummaryEnvelope]" = queue.Queue()
        self._waiters: List[_Waiter] = []
        self._next_waiter_order = 0
        #: connection id -> most recent capacity hint from its claim frames.
        self._capacities: Dict[int, int] = {}
        self._writers: set = set()
        self._shutdown = False
        #: Summary frames dropped because their payload failed verification.
        self.rejected = 0
        self._m_rejected = default_registry().counter(
            "repro_transport_rejected_total",
            "Payloads dropped after failing verification, by transport and side.",
        ).labels(transport="tcp", side="coordinator")
        self._m_summaries = default_registry().counter(
            "repro_broker_summaries_total",
            "Verified summary frames received by the tcp broker.",
        )
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._address: Optional[Tuple[str, int]] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._next_connection_id = 0
        self._thread = threading.Thread(
            target=self._thread_main, args=(host, port), daemon=True,
            name="repro-socket-broker",
        )
        self._thread.start()
        self._started.wait()
        if self._startup_error is not None:
            raise TransportError(f"broker failed to start: {self._startup_error}")

    # ------------------------------------------------------------------ #
    # Event-loop thread
    # ------------------------------------------------------------------ #
    def _thread_main(self, host: str, port: int) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self._stop_event = asyncio.Event()
        try:
            server = loop.run_until_complete(
                asyncio.start_server(self._handle_client, host, port)
            )
        except OSError as error:
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._address = server.sockets[0].getsockname()[:2]
        self._started.set()
        try:
            loop.run_until_complete(self._stop_event.wait())
        finally:
            server.close()
            loop.run_until_complete(server.wait_closed())
            # Wake parked workers with an orderly SHUTDOWN, then close client
            # connections so their handlers unwind through the normal EOF
            # path; cancel only whatever is still left.
            self._dispatch()
            with self._state_lock:
                writers = list(self._writers)
            for writer in writers:
                writer.close()
            tasks = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in tasks:
                task.cancel()
            if tasks:
                loop.run_until_complete(
                    asyncio.gather(*tasks, return_exceptions=True)
                )
            loop.close()

    async def _handle_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._state_lock:
            connection_id = self._next_connection_id
            self._next_connection_id += 1
            self._writers.add(writer)
        try:
            while True:
                msg_type, shard_id, payload = await _read_frame_async(reader)
                if msg_type in (MSG_READY, MSG_POLL):
                    capacity = max(1, min(int(shard_id), _MAX_CAPACITY))
                    frame = self._claim_frame(
                        connection_id, capacity, writer, park=msg_type == MSG_READY
                    )
                    if frame is not None:
                        writer.write(frame)
                        await writer.drain()
                elif msg_type == MSG_SUMMARY:
                    self._receive_summary(shard_id, payload)
                else:
                    break  # unknown message: drop the connection
        except (asyncio.IncompleteReadError, ConnectionError, TransportError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown while waiting on this client; exit quietly (a
            # cancelled handler must not leave asyncio's stream callback a
            # pending exception to log).
            pass
        finally:
            with self._state_lock:
                self._writers.discard(writer)
            self._requeue_connection(connection_id)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    def _claim_frame(
        self,
        connection_id: int,
        capacity: int,
        writer: asyncio.StreamWriter,
        park: bool,
    ) -> Optional[bytes]:
        """Answer one claim: a frame to send now, or ``None`` once parked."""
        with self._state_lock:
            self._capacities[connection_id] = capacity
            if self._shutdown:
                return _pack_frame(MSG_SHUTDOWN, 0)
            if self._pending:
                envelope = self._pick_task_locked(capacity)
                self._outstanding[envelope.shard_id] = (
                    connection_id, time.monotonic(), envelope,
                )
                return _pack_frame(MSG_TASK, envelope.shard_id, envelope.payload)
            if not park:
                return _pack_frame(MSG_IDLE, 0)
            self._waiters.append(
                _Waiter(self._next_waiter_order, connection_id, capacity, writer)
            )
            self._next_waiter_order += 1
            return None

    def _receive_summary(self, shard_id: int, payload: bytes) -> None:
        if self._auth is not None:
            try:
                payload = self._auth.verify(payload)
            except AuthenticationError:
                # Reject and count; the shard stays outstanding, so the
                # lease-expiry requeue recovers it through another delivery.
                with self._state_lock:
                    self.rejected += 1
                self._m_rejected.inc()
                return
        with self._state_lock:
            self._outstanding.pop(shard_id, None)
        self._m_summaries.inc()
        self._summaries.put(SummaryEnvelope(shard_id=shard_id, payload=payload))

    def _push_pending_locked(self, envelope: TaskEnvelope) -> None:
        entry = (envelope.cost, envelope.shard_id, self._pending_seq, envelope)
        self._pending_seq += 1
        bisect.insort(self._pending, entry)

    def _pick_task_locked(self, capacity: int) -> TaskEnvelope:
        """Pop the pending task best matching a claimant's capacity.

        The fleet's fastest claimants (capacity equal to the highest hint
        currently known) receive the most expensive pending shard; everyone
        else receives the cheapest.  Ties break on (shard id, publish
        order), so assignment is deterministic for a given claim order.
        """
        fleet_max = max(self._capacities.values(), default=capacity)
        if capacity >= fleet_max:
            return self._pending.pop()[3]
        return self._pending.pop(0)[3]

    def _dispatch(self) -> None:
        """Match pending tasks to parked waiters (event-loop thread only)."""
        sends: List[Tuple[asyncio.StreamWriter, bytes]] = []
        with self._state_lock:
            if self._shutdown:
                for waiter in self._waiters:
                    sends.append((waiter.writer, _pack_frame(MSG_SHUTDOWN, 0)))
                self._waiters.clear()
            else:
                while self._pending and self._waiters:
                    # Highest capacity first; FIFO among equals.
                    waiter = max(
                        self._waiters, key=lambda w: (w.capacity, -w.order)
                    )
                    self._waiters.remove(waiter)
                    envelope = self._pick_task_locked(waiter.capacity)
                    self._outstanding[envelope.shard_id] = (
                        waiter.connection_id, time.monotonic(), envelope,
                    )
                    sends.append((
                        waiter.writer,
                        _pack_frame(MSG_TASK, envelope.shard_id, envelope.payload),
                    ))
        for writer, frame in sends:
            try:
                writer.write(frame)
            except (ConnectionError, RuntimeError):  # pragma: no cover
                pass  # the drop is handled by the connection's own handler

    def _wake_broker(self) -> None:
        """Schedule a dispatch pass from a non-loop thread."""
        loop = self._loop
        if loop is not None and loop.is_running():
            try:
                loop.call_soon_threadsafe(self._dispatch)
            except RuntimeError:  # pragma: no cover - loop shut down mid-call
                pass

    def _requeue_connection(self, connection_id: int) -> None:
        """A connection died: its outstanding tasks become claimable again."""
        with self._state_lock:
            self._capacities.pop(connection_id, None)
            self._waiters = [
                w for w in self._waiters if w.connection_id != connection_id
            ]
            requeued = False
            for shard_id, (owner, _, envelope) in list(self._outstanding.items()):
                if owner == connection_id:
                    del self._outstanding[shard_id]
                    self._push_pending_locked(envelope)
                    requeued = True
        if requeued:
            self._dispatch()

    # ------------------------------------------------------------------ #
    # Coordinator side (called from the coordinator thread)
    # ------------------------------------------------------------------ #
    @property
    def address(self) -> Tuple[str, int]:
        """The broker's resolved ``(host, port)``."""
        if self._address is None:
            raise TransportError("broker is not listening")
        return self._address

    def capacity_hints(self) -> Dict[int, int]:
        """Capacity last advertised by each live connection, by connection id."""
        with self._state_lock:
            return dict(self._capacities)

    def publish(self, envelope: TaskEnvelope) -> None:
        if self._auth is not None:
            envelope = TaskEnvelope(
                shard_id=envelope.shard_id,
                payload=self._auth.sign(envelope.payload),
                cost=envelope.cost,
            )
        with self._state_lock:
            if self._shutdown:
                raise TransportError("transport is closed")
            self._push_pending_locked(envelope)
        self._wake_broker()

    def poll_summary(self, timeout: float = 0.0) -> Optional[SummaryEnvelope]:
        try:
            if timeout > 0:
                return self._summaries.get(timeout=timeout)
            return self._summaries.get_nowait()
        except queue.Empty:
            return None

    def reclaim_expired(self, lease_timeout: float) -> List[int]:
        now = time.monotonic()
        reclaimed: List[int] = []
        with self._state_lock:
            for shard_id, (_, leased_at, envelope) in list(self._outstanding.items()):
                if now - leased_at >= lease_timeout:
                    del self._outstanding[shard_id]
                    self._push_pending_locked(envelope)
                    reclaimed.append(shard_id)
        if reclaimed:
            self._wake_broker()
        return reclaimed

    def worker(self, capacity: int = 1, mode: str = "blocking") -> "SocketWorker":
        host, port = self.address
        return SocketWorker(
            host, port, auth=self._auth, capacity=capacity, mode=mode
        )

    def close(self) -> None:
        with self._state_lock:
            if self._shutdown:
                return
            self._shutdown = True
        if self._loop is not None and self._loop.is_running():
            # Wake parked workers with SHUTDOWN while the loop still runs,
            # then stop it (call_soon_threadsafe callbacks run in order).
            self._loop.call_soon_threadsafe(self._dispatch)
            self._loop.call_soon_threadsafe(self._stop_event.set)
        self._thread.join(timeout=5.0)


class SocketWorker(WorkerEndpoint):
    """Worker endpoint: a blocking TCP client of the broker.

    Parameters
    ----------
    capacity:
        Relative throughput hint advertised with every claim; the broker
        hands the largest pending shards to the fleet's highest hint.
    mode:
        ``"blocking"`` (default) parks at the broker until work exists —
        an idle worker sends no frames at all.  ``"poll"`` restores the
        READY/IDLE request-response exchange per claim attempt.
    auth:
        Optional :class:`~repro.distributed.auth.PayloadAuthenticator`
        matching the broker's; task payloads that fail verification are
        counted in :attr:`rejected` and skipped, and summary payloads are
        signed before delivery.
    """

    def __init__(
        self,
        host: str,
        port: int,
        connect_timeout: float = 10.0,
        auth: Optional[PayloadAuthenticator] = None,
        capacity: int = 1,
        mode: str = "blocking",
    ) -> None:
        if mode not in ("blocking", "poll"):
            raise TransportError(
                f"claim mode must be 'blocking' or 'poll', got {mode!r}"
            )
        self._auth = auth
        self._capacity = max(1, min(int(capacity), _MAX_CAPACITY))
        self._mode = mode
        self._sock = socket.create_connection((host, port), timeout=connect_timeout)
        self._sock.settimeout(None)
        self._lock = threading.Lock()
        self._shutdown_seen = False
        #: Whether a blocking READY is parked at the broker without a
        #: response yet (a timed-out claim leaves it parked; the next claim
        #: keeps waiting instead of sending another frame).
        self._ready_outstanding = False
        #: READY/POLL frames sent so far — the idle-chatter metric.
        self.claim_frames_sent = 0
        #: Task payloads dropped because they failed verification.
        self.rejected = 0
        registry = default_registry()
        self._m_claim_frames = registry.counter(
            "repro_transport_claim_frames_total",
            "READY/POLL frames sent to the tcp broker (idle chatter).",
        )
        self._m_rejected = registry.counter(
            "repro_transport_rejected_total",
            "Payloads dropped after failing verification, by transport and side.",
        ).labels(transport="tcp", side="worker")

    @property
    def capacity(self) -> int:
        return self._capacity

    def claim(self, timeout: float = 0.0) -> Optional[TaskEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            if self._shutdown_seen:
                return None
            try:
                with self._lock:
                    if self._mode == "blocking":
                        received = self._blocking_exchange(deadline)
                    else:
                        received = self._poll_exchange()
            except _ReceiveTimeout:
                return None
            except (TransportError, ConnectionError, OSError):
                # The broker went away: for a worker that is between tasks
                # this is indistinguishable from an orderly SHUTDOWN.
                self._shutdown_seen = True
                return None
            if received is not None:
                msg_type, shard_id, payload = received
                if msg_type == MSG_TASK:
                    if self._auth is not None:
                        try:
                            payload = self._auth.verify(payload)
                        except AuthenticationError:
                            self.rejected += 1
                            self._m_rejected.inc()
                            continue  # ask again; the lease recovers the shard
                    return TaskEnvelope(shard_id=shard_id, payload=payload)
                if msg_type == MSG_SHUTDOWN:
                    self._shutdown_seen = True
                    return None
                if msg_type != MSG_IDLE:
                    raise TransportError(
                        f"unexpected broker message type {msg_type}"
                    )
            if time.monotonic() >= deadline:
                return None
            if self._mode == "poll":
                time.sleep(0.02)

    def _blocking_exchange(
        self, deadline: float
    ) -> Optional[Tuple[int, int, bytes]]:
        """Send READY once, then wait (bounded) for the broker's push."""
        if not self._ready_outstanding:
            self._sock.sendall(_pack_frame(MSG_READY, self._capacity))
            self.claim_frames_sent += 1
            self._m_claim_frames.inc()
            self._ready_outstanding = True
        frame = _read_frame_blocking(self._sock, deadline)
        self._ready_outstanding = False
        return frame

    def _poll_exchange(self) -> Optional[Tuple[int, int, bytes]]:
        self._sock.sendall(_pack_frame(MSG_POLL, self._capacity))
        self.claim_frames_sent += 1
        self._m_claim_frames.inc()
        return _read_frame_blocking(self._sock)

    def complete(self, shard_id: int, payload: bytes) -> None:
        if self._auth is not None:
            payload = self._auth.sign(payload)
        with self._lock:
            self._sock.sendall(_pack_frame(MSG_SUMMARY, shard_id, payload))

    @property
    def saw_shutdown(self) -> bool:
        """Whether the broker told this worker the collection is over."""
        return self._shutdown_seen

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - platform noise
            pass
