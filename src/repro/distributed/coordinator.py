"""Fault-tolerant shard coordinator.

The :class:`Coordinator` owns one sharded collection: it derives nothing
itself — it is handed the full list of :class:`~repro.simulation.runner.ShardTask`
work units (whose seeds were derived from the root seed in shard order, see
:func:`repro.simulation.runner.make_shard_tasks`) and a
:class:`~repro.distributed.transports.Transport`, publishes every task not
yet summarized, and folds arriving summaries until the collection is
complete.

Correctness invariants, independent of transport, worker count, crashes and
delivery order:

* **Seed derivation** — a shard's randomness depends only on the root seed
  and its shard index, never on which worker runs it or how often.  A shard
  executed twice (lease expiry plus a slow-but-alive worker) produces the
  *identical* summary.
* **Deduplication** — summaries are keyed by shard id; the first delivery
  wins and every later duplicate is counted and dropped, so at-least-once
  transports look exactly-once to the aggregation.
* **Order-independent aggregation** — support counts are integer-valued
  floats, so streaming them into a
  :class:`~repro.service.session.CollectorSession` as they arrive (out of
  order) is exact; the final merge additionally replays summaries in shard
  order, making the end state bit-identical to the serial path including
  the per-user budget vector layout.
* **Crash-safe checkpointing** — after every accepted summary the
  coordinator can atomically rewrite an ``.npz`` checkpoint of all received
  summaries, or append the summary as one row to a
  :class:`~repro.store.ResultsBackend` (``checkpoint_store``) — the same
  pluggable store the sweeps write results through, so a SQLite-backed
  deployment keeps checkpoints and results in one queryable database.  A
  killed collector restores, republishes only the missing shards, and
  finishes bit-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import time
from hashlib import sha256
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Union

import numpy as np

from .._atomicio import atomic_write_bytes
from ..exceptions import ExperimentError
from ..obs.events import emit_event
from ..obs.metrics import default_registry
from ..simulation.runner import ShardTask
from ..simulation.sinks import ShardedSink, ShardSummary
from .codec import DatasetRef, TransportError, decode_summary, encode_task
from .transports import TaskEnvelope, Transport

__all__ = ["Coordinator", "CoordinatorTimeout"]

_CHECKPOINT_FORMAT = 1


class CoordinatorTimeout(ExperimentError):
    """The collection did not complete within the requested wall-clock bound."""


class Coordinator:
    """Drives one sharded collection over a transport until complete.

    Parameters
    ----------
    tasks:
        The shard work units, in shard order (shard id = list index).
    transport:
        Coordinator-side transport endpoint.
    dataset_ref:
        Optional registry recipe shipped inside every task payload so remote
        workers can rebuild the workload themselves.  Omit when workers are
        handed the dataset directly (threads, tests).
    lease_timeout:
        Seconds after which a claimed-but-unfinished shard is requeued.
    poll_interval:
        Summary poll granularity of :meth:`run`.
    session:
        Optional :class:`~repro.service.session.CollectorSession`; every
        accepted summary is streamed into it on arrival, so running
        estimates update while the collection is in flight.
    checkpoint_path:
        Optional ``.npz`` path rewritten atomically after every accepted
        summary; see :meth:`load_checkpoint`.
    checkpoint_store, checkpoint_experiment_id:
        Optional :class:`~repro.store.ResultsBackend` (any kind): every
        accepted summary is durably *appended* as one row under
        ``checkpoint_experiment_id`` — O(shard) per summary instead of the
        O(collection) ``.npz`` rewrite — with the plan fingerprint in the
        store's header comment; see :meth:`load_checkpoint_from_store`.
        Composable with ``checkpoint_path`` (both are written).
    """

    def __init__(
        self,
        tasks: Sequence[ShardTask],
        transport: Transport,
        dataset_ref: Optional[DatasetRef] = None,
        lease_timeout: float = 30.0,
        poll_interval: float = 0.05,
        session=None,
        checkpoint_path: Optional[Union[str, Path]] = None,
        checkpoint_store=None,
        checkpoint_experiment_id: str = "coordinator_checkpoint",
    ) -> None:
        self.tasks: List[ShardTask] = list(tasks)
        if not self.tasks:
            raise ExperimentError("a coordinator requires at least one shard task")
        self.transport = transport
        self.dataset_ref = dataset_ref
        self.lease_timeout = float(lease_timeout)
        self.poll_interval = float(poll_interval)
        self.session = session
        self.checkpoint_path = Path(checkpoint_path) if checkpoint_path else None
        self.checkpoint_store = checkpoint_store
        self.checkpoint_experiment_id = checkpoint_experiment_id
        self.summaries: Dict[int, ShardSummary] = {}
        self.duplicates = 0
        self.requeued = 0
        self.foreign = 0
        self.republished = 0
        self._published = False
        self._restoring = False
        # Fingerprint over the canonical task payloads: a checkpoint or a
        # spooled summary written for a different plan (other spec / shards /
        # seeds) must not be silently merged into this one.
        bare_payloads = [
            encode_task(shard_id, task, dataset_ref)
            for shard_id, task in enumerate(self.tasks)
        ]
        digest = sha256()
        for payload in bare_payloads:
            digest.update(payload)
        self.plan_fingerprint = digest.hexdigest()[:16]
        # Published payloads carry the fingerprint; workers echo it in their
        # summaries so stale results in a reused queue are recognizable.
        self._payloads = [
            encode_task(shard_id, task, dataset_ref, plan=self.plan_fingerprint)
            for shard_id, task in enumerate(self.tasks)
        ]
        # The legacy plain-int attributes above stay the programmatic API;
        # these mirror them into the process-global registry so a
        # --metrics-port scrape (and `repro-ldp status`) sees the fleet.
        registry = default_registry()
        self._m_published = registry.counter(
            "repro_coord_tasks_published_total", "Shard tasks published to the transport."
        )
        self._m_summaries = registry.counter(
            "repro_coord_summaries_total", "Shard summaries accepted (first delivery)."
        )
        self._m_duplicates = registry.counter(
            "repro_coord_duplicates_total", "Duplicate shard summaries dropped."
        )
        self._m_requeued = registry.counter(
            "repro_coord_tasks_requeued_total", "Shard tasks requeued after lease expiry."
        )
        self._m_republished = registry.counter(
            "repro_coord_tasks_republished_total",
            "Authentic payloads republished for shards the transport lost.",
        )
        self._m_foreign = registry.counter(
            "repro_coord_foreign_total", "Summaries of another collection plan dropped."
        )
        self._m_checkpoint_seconds = registry.histogram(
            "repro_coord_checkpoint_seconds", "Wall-clock latency of checkpoint writes."
        )
        self._g_shards_total = registry.gauge(
            "repro_coord_shards_total", "Shards in the collection plan."
        )
        self._g_shards_done = registry.gauge(
            "repro_coord_shards_done", "Shards with an accepted summary."
        )
        self._g_shards_pending = registry.gauge(
            "repro_coord_shards_pending", "Shards still awaiting a summary."
        )
        self._g_shards_total.set(self.n_shards)
        self._g_shards_done.set(0)
        self._g_shards_pending.set(self.n_shards)

    # ------------------------------------------------------------------ #
    # Progress
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        return len(self.tasks)

    @property
    def pending_shards(self) -> List[int]:
        """Shard ids without an accepted summary, in shard order."""
        return [i for i in range(self.n_shards) if i not in self.summaries]

    @property
    def is_complete(self) -> bool:
        return len(self.summaries) == self.n_shards

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def publish_pending(self) -> int:
        """Publish every shard not yet summarized; returns the count."""
        pending = self.pending_shards
        for shard_id in pending:
            self.transport.publish(self._envelope(shard_id))
        self._published = True
        if pending:
            self._m_published.inc(len(pending))
            emit_event(
                "tasks_published",
                component="coordinator",
                plan=self.plan_fingerprint,
                n_shards=len(pending),
            )
        return len(pending)

    def _envelope(self, shard_id: int) -> TaskEnvelope:
        """The authentic task envelope of one shard, costed by its user count.

        The cost lets capacity-aware transports hand the biggest shards of a
        weighted plan to the workers advertising the most capacity.
        """
        task = self.tasks[shard_id]
        return TaskEnvelope(
            shard_id=shard_id,
            payload=self._payloads[shard_id],
            cost=float(task.stop - task.start),
        )

    def absorb(self, shard_id: int, summary: ShardSummary) -> bool:
        """Accept one summary; returns ``False`` for duplicates.

        The first delivery of a shard id wins; duplicates (requeue races,
        retried workers, coordinator restarts over a persistent queue) are
        counted in :attr:`duplicates` and dropped, which keeps the
        aggregation exactly-once on top of at-least-once transports.
        """
        if not 0 <= shard_id < self.n_shards:
            raise TransportError(
                f"summary for unknown shard {shard_id} "
                f"(plan has {self.n_shards} shards)"
            )
        if shard_id in self.summaries:
            self.duplicates += 1
            self._m_duplicates.inc()
            return False
        expected_users = self.tasks[shard_id].stop - self.tasks[shard_id].start
        if summary.n_users != expected_users:
            raise TransportError(
                f"summary for shard {shard_id} covers {summary.n_users} users, "
                f"expected {expected_users}"
            )
        self.summaries[shard_id] = summary
        self._m_summaries.inc()
        self._g_shards_done.set(len(self.summaries))
        self._g_shards_pending.set(self.n_shards - len(self.summaries))
        if self.session is not None:
            self.session.absorb_summary(summary)
        if not self._restoring:
            if self.checkpoint_path is not None:
                self.checkpoint(self.checkpoint_path)
            if self.checkpoint_store is not None:
                self._checkpoint_summary_to_store(shard_id, summary)
        return True

    def step(self, timeout: float = 0.0) -> Optional[bool]:
        """Poll once: ``None`` if nothing arrived, else whether it was new."""
        envelope = self.transport.poll_summary(timeout)
        if envelope is None:
            return None
        shard_id, summary, plan = decode_summary(envelope.payload)
        if shard_id != envelope.shard_id:
            raise TransportError(
                f"envelope addressed to shard {envelope.shard_id} carries a "
                f"summary for shard {shard_id}"
            )
        if plan is not None and plan != self.plan_fingerprint:
            # A reused queue can still hold summaries of a *previous*
            # collection (other spec / seed / shard layout); merging one
            # would silently corrupt the estimates.  Drop it and count it.
            self.foreign += 1
            self._m_foreign.inc()
            return False
        return self.absorb(shard_id, summary)

    def drain(self, idle_timeout: float = 0.0) -> int:
        """Absorb summaries until none arrives for ``idle_timeout`` seconds."""
        absorbed = 0
        while not self.is_complete:
            accepted = self.step(idle_timeout)
            if accepted is None:
                break
            absorbed += int(accepted)
        return absorbed

    def run(
        self,
        timeout: Optional[float] = None,
        abort: Optional[Callable[[], Optional[str]]] = None,
    ) -> Dict[int, ShardSummary]:
        """Publish pending shards and poll until the collection completes.

        Requeues expired leases as it goes, and republishes the authentic
        payload of any pending shard the transport has lost track of (a task
        file deleted, or destroyed by a worker after failing payload
        verification — see :meth:`Transport.missing_tasks`); raises
        :class:`CoordinatorTimeout` if ``timeout`` (wall-clock seconds)
        elapses first.  ``abort`` is polled every loop iteration; a
        non-``None`` string aborts the run with that reason (the hook for
        "every local worker died" — see
        :meth:`repro.distributed.worker.LocalWorkerPool.failure_reason` —
        so a coordinator does not poll an abandoned queue forever).
        """
        if not self._published:
            self.publish_pending()
        deadline = time.monotonic() + timeout if timeout is not None else None
        # Reclaim often enough to notice a dead worker well within one lease,
        # but never busier than the poll loop itself.
        reclaim_interval = max(self.poll_interval, self.lease_timeout / 4.0)
        next_reclaim = time.monotonic() + reclaim_interval
        while not self.is_complete:
            self.step(self.poll_interval)
            now = time.monotonic()
            if now >= next_reclaim:
                expired = self.transport.reclaim_expired(self.lease_timeout)
                if expired:
                    self.requeued += len(expired)
                    self._m_requeued.inc(len(expired))
                    emit_event(
                        "lease_requeue",
                        component="coordinator",
                        shards=sorted(int(s) for s in expired),
                        lease_timeout=self.lease_timeout,
                    )
                # A pending shard the transport has lost track of entirely
                # (e.g. a task file destroyed after failing verification)
                # would hang the collection; republish the authentic copy.
                for shard_id in self.transport.missing_tasks(self.pending_shards):
                    self.transport.publish(self._envelope(shard_id))
                    self.republished += 1
                    self._m_republished.inc()
                    emit_event(
                        "task_republished", component="coordinator", shard_id=shard_id
                    )
                next_reclaim = now + reclaim_interval
            if abort is not None and not self.is_complete:
                reason = abort()
                if reason is not None:
                    raise ExperimentError(
                        f"collection aborted with {len(self.pending_shards)} of "
                        f"{self.n_shards} shards missing: {reason}"
                    )
            if deadline is not None and now >= deadline:
                raise CoordinatorTimeout(
                    f"collection incomplete after {timeout}s: "
                    f"{len(self.pending_shards)} of {self.n_shards} shards missing"
                )
        emit_event(
            "collection_complete",
            component="coordinator",
            plan=self.plan_fingerprint,
            n_shards=self.n_shards,
            requeued=self.requeued,
            republished=self.republished,
            duplicates=self.duplicates,
            foreign=self.foreign,
        )
        return dict(self.summaries)

    # ------------------------------------------------------------------ #
    # Results
    # ------------------------------------------------------------------ #
    def ordered_summaries(self) -> List[ShardSummary]:
        """All summaries in shard order; raises while incomplete."""
        if not self.is_complete:
            raise ExperimentError(
                f"collection incomplete: shards {self.pending_shards} missing"
            )
        return [self.summaries[i] for i in range(self.n_shards)]

    def merged_sink(self) -> ShardedSink:
        """Fold the summaries in shard order (bit-identical to serial)."""
        sink = ShardedSink()
        for summary in self.ordered_summaries():
            sink.absorb(summary)
        return sink

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def progress_summary(self) -> Dict[str, object]:
        """Machine-readable progress of the collection, for checkpoints
        and the ``repro-ldp status`` spool fallback."""
        done = len(self.summaries)
        return {
            "n_shards": self.n_shards,
            "done": done,
            "pending": self.n_shards - done,
            "duplicates": self.duplicates,
            "requeued": self.requeued,
            "republished": self.republished,
            "foreign": self.foreign,
            "updated_ts": time.time(),
        }

    def checkpoint(self, path: Union[str, Path]) -> Path:
        """Atomically persist every accepted summary as one ``.npz`` file."""
        started = time.perf_counter()
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        meta = {
            "format": _CHECKPOINT_FORMAT,
            "plan_fingerprint": self.plan_fingerprint,
            "n_shards": self.n_shards,
            "completed": sorted(self.summaries),
            # Ignored by load_checkpoint; read by `repro-ldp status` when no
            # metrics port is up.
            "progress": self.progress_summary(),
        }
        arrays: Dict[str, np.ndarray] = {"meta": np.array(json.dumps(meta))}
        for shard_id, summary in self.summaries.items():
            arrays[f"counts_{shard_id}"] = summary.support_counts
            arrays[f"distinct_{shard_id}"] = summary.distinct_memoized_per_user
        written = atomic_write_bytes(
            path, lambda handle: np.savez_compressed(handle, **arrays)
        )
        self._m_checkpoint_seconds.observe(time.perf_counter() - started)
        return written

    def load_checkpoint(self, path: Optional[Union[str, Path]] = None) -> int:
        """Restore previously accepted summaries; returns how many.

        Refuses checkpoints written for a different plan (spec, shard count
        or seeds) via the plan fingerprint.  Restored summaries are streamed
        into the session exactly like live arrivals, so a resumed collection
        continues from identical state.
        """
        path = Path(path) if path is not None else self.checkpoint_path
        if path is None:
            raise ExperimentError("no checkpoint path configured")
        if not path.exists():
            return 0
        with np.load(path, allow_pickle=False) as archive:
            meta = json.loads(str(archive["meta"][()]))
            if meta.get("format") != _CHECKPOINT_FORMAT:
                raise ExperimentError(
                    f"unsupported coordinator checkpoint format "
                    f"{meta.get('format')!r}"
                )
            if meta.get("plan_fingerprint") != self.plan_fingerprint:
                raise ExperimentError(
                    f"checkpoint {path} belongs to a different collection plan "
                    f"(fingerprint {meta.get('plan_fingerprint')!r} != "
                    f"{self.plan_fingerprint!r}); refusing to merge it"
                )
            if int(meta.get("n_shards", -1)) != self.n_shards:
                raise ExperimentError(
                    f"checkpoint has {meta.get('n_shards')} shards, "
                    f"plan has {self.n_shards}"
                )
            restored = 0
            # Suppress the per-summary checkpoint rewrite while restoring —
            # the file already holds exactly this state.
            self._restoring = True
            try:
                for shard_id in meta.get("completed", []):
                    shard_id = int(shard_id)
                    task = self.tasks[shard_id]
                    summary = ShardSummary(
                        support_counts=archive[f"counts_{shard_id}"],
                        distinct_memoized_per_user=archive[f"distinct_{shard_id}"],
                        n_users=int(task.stop - task.start),
                    )
                    if self.absorb(shard_id, summary):
                        restored += 1
            finally:
                self._restoring = False
        return restored

    # ------------------------------------------------------------------ #
    # Store-backed checkpointing
    # ------------------------------------------------------------------ #
    def _checkpoint_summary_to_store(self, shard_id: int, summary: ShardSummary) -> None:
        """Append one accepted summary as a row to the checkpoint store.

        The arrays are JSON-encoded cell strings (``tolist`` of the float64 /
        int64 buffers — exact round trips, since :class:`ShardSummary`
        coerces dtypes in ``__post_init__``), so the row survives any
        registered backend and migrates between them unchanged.
        """
        started = time.perf_counter()
        self.checkpoint_store.append_rows(
            self.checkpoint_experiment_id,
            [
                {
                    "shard_id": shard_id,
                    "n_users": summary.n_users,
                    "support_counts": json.dumps(summary.support_counts.tolist()),
                    "distinct_memoized_per_user": json.dumps(
                        summary.distinct_memoized_per_user.tolist()
                    ),
                }
            ],
            header_comment=f"plan_fingerprint={self.plan_fingerprint}",
        )
        self._m_checkpoint_seconds.observe(time.perf_counter() - started)

    def load_checkpoint_from_store(self) -> int:
        """Restore summaries previously appended to the checkpoint store.

        The mirror of :meth:`load_checkpoint` for ``checkpoint_store``:
        refuses rows whose header comment carries a different plan
        fingerprint, streams restored summaries through :meth:`absorb` like
        live arrivals (duplicate rows from a crash between the append and
        the transport ack are deduplicated for free), and suppresses
        re-appending while restoring.  Returns how many summaries were
        restored; ``0`` when the store holds no checkpoint rows yet.
        """
        if self.checkpoint_store is None:
            raise ExperimentError("no checkpoint store configured")
        if not self.checkpoint_store.has_rows(self.checkpoint_experiment_id):
            return 0
        comment = self.checkpoint_store.read_header_comment(
            self.checkpoint_experiment_id
        )
        expected = f"plan_fingerprint={self.plan_fingerprint}"
        if comment != expected:
            raise ExperimentError(
                f"checkpoint rows at "
                f"{self.checkpoint_store.location(self.checkpoint_experiment_id)} "
                f"belong to a different collection plan ({comment!r} != "
                f"{expected!r}); refusing to merge them"
            )
        restored = 0
        self._restoring = True
        try:
            for row in self.checkpoint_store.load_rows(self.checkpoint_experiment_id):
                shard_id = int(row["shard_id"])
                summary = ShardSummary(
                    support_counts=np.asarray(
                        json.loads(row["support_counts"]), dtype=np.float64
                    ),
                    distinct_memoized_per_user=np.asarray(
                        json.loads(row["distinct_memoized_per_user"]), dtype=np.int64
                    ),
                    n_users=int(row["n_users"]),
                )
                if self.absorb(shard_id, summary):
                    restored += 1
        finally:
            self._restoring = False
        return restored
