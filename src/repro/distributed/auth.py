"""Shared-secret payload authentication for untrusted transports.

The file-spool and TCP transports move task and summary payloads through
media an attacker may be able to write to (a shared filesystem, a network
segment).  :class:`PayloadAuthenticator` wraps every payload in an
HMAC-SHA256 envelope::

    b"RHM1" + 32-byte HMAC-SHA256(key, payload) + payload

Both endpoints of an authenticated transport hold the same secret: the
coordinator signs task payloads and verifies summary payloads, the worker
verifies task payloads and signs summary payloads.  A payload whose tag does
not verify — tampered bytes, a signature stripped off, a frame signed with a
different key — raises :class:`AuthenticationError`, which the transports
translate into "reject, count, continue" rather than a crash: summaries are
re-requested through the normal lease-expiry requeue and tampered task files
are republished from the coordinator's authentic copies.

The secret itself never travels through spec files or the queue: it is
resolved from an environment variable named by
:attr:`repro.specs.CollectionSpec.auth_key_env` / ``--auth-key-env`` (see
:func:`authenticator_from_env`), so a ``collection.json`` can be committed
or shipped without leaking the key.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from typing import Optional

from .codec import TransportError

__all__ = [
    "AuthenticationError",
    "PayloadAuthenticator",
    "authenticator_from_env",
]

_MAGIC = b"RHM1"
_TAG_BYTES = hashlib.sha256().digest_size
_HEADER_BYTES = len(_MAGIC) + _TAG_BYTES


class AuthenticationError(TransportError):
    """A payload failed HMAC verification (tampered, unsigned or wrong key)."""


class PayloadAuthenticator:
    """Signs and verifies transport payloads with one shared secret."""

    def __init__(self, key: bytes) -> None:
        if not isinstance(key, (bytes, bytearray)) or not key:
            raise TransportError("the authentication key must be non-empty bytes")
        self._key = bytes(key)

    def sign(self, payload: bytes) -> bytes:
        """Wrap ``payload`` in the signed envelope."""
        tag = hmac.new(self._key, payload, hashlib.sha256).digest()
        return _MAGIC + tag + payload

    def verify(self, blob: bytes) -> bytes:
        """Check the envelope and return the bare payload.

        Raises :class:`AuthenticationError` for unsigned blobs (no magic),
        truncated envelopes and tag mismatches.  Comparison is constant-time
        (:func:`hmac.compare_digest`).
        """
        if len(blob) < _HEADER_BYTES or not blob.startswith(_MAGIC):
            raise AuthenticationError(
                "payload is not signed but this endpoint requires authentication"
            )
        tag = blob[len(_MAGIC) : _HEADER_BYTES]
        payload = blob[_HEADER_BYTES:]
        expected = hmac.new(self._key, payload, hashlib.sha256).digest()
        if not hmac.compare_digest(tag, expected):
            raise AuthenticationError(
                "payload signature does not verify (tampered, or signed with a "
                "different key)"
            )
        return payload


def authenticator_from_env(env_name: Optional[str]) -> Optional[PayloadAuthenticator]:
    """Build an authenticator from the environment variable named ``env_name``.

    ``None`` (authentication off) passes through as ``None``.  Naming a
    variable that is unset or empty is a configuration error, not a silent
    downgrade to unauthenticated transport.
    """
    if env_name is None:
        return None
    value = os.environ.get(env_name)
    if not value:
        raise TransportError(
            f"authentication key environment variable {env_name!r} is not set "
            f"(export a shared secret in it on both the collector and every "
            f"worker)"
        )
    return PayloadAuthenticator(value.encode("utf-8"))
