"""Transport abstraction for shipping shard tasks and summaries.

A transport moves opaque byte payloads (see :mod:`repro.distributed.codec`)
between one *coordinator* and any number of *workers*.  The two roles have
separate interfaces:

* :class:`Transport` — the coordinator side: publish task payloads, poll for
  summary payloads, and reclaim tasks whose worker lease expired (the
  crashed-worker recovery hook).
* :class:`WorkerEndpoint` — the worker side: claim one task at a time and
  hand back its summary.  ``transport.worker()`` builds an endpoint wired to
  the same queue; remote workers construct their endpoint directly from the
  shared location (a spool directory or a TCP address).

Delivery is **at-least-once**: a lease that expires while the worker is
merely slow leads to the same shard being executed twice, and both summaries
may arrive.  Shard execution is deterministic (the task carries its own seed)
and the :class:`~repro.distributed.coordinator.Coordinator` deduplicates by
shard id, so duplicate delivery is harmless by construction.

:class:`InProcessTransport` is the in-memory reference implementation used by
tests and single-process runs; the file-spool and TCP implementations live in
:mod:`repro.distributed.file_queue` and :mod:`repro.distributed.socket_transport`.
"""

from __future__ import annotations

import abc
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from .codec import TransportError

__all__ = [
    "TaskEnvelope",
    "SummaryEnvelope",
    "Transport",
    "WorkerEndpoint",
    "InProcessTransport",
]


@dataclass(frozen=True)
class TaskEnvelope:
    """One task payload in flight, addressed by its shard id.

    ``cost`` is the coordinator's estimate of how much work the task holds
    (the shard's user count).  It never crosses the wire — capacity-aware
    transports use it locally to hand the biggest pending shards to the
    workers advertising the most capacity; the default of ``1.0`` keeps
    hand-built envelopes order-neutral.
    """

    shard_id: int
    payload: bytes
    cost: float = 1.0


@dataclass(frozen=True)
class SummaryEnvelope:
    """One summary payload in flight, addressed by its shard id."""

    shard_id: int
    payload: bytes


class WorkerEndpoint(abc.ABC):
    """Worker-side half of a transport: claim tasks, return summaries."""

    @abc.abstractmethod
    def claim(self, timeout: float = 0.0) -> Optional[TaskEnvelope]:
        """Claim one pending task, waiting up to ``timeout`` seconds.

        Returns ``None`` when nothing became available in time.  Claiming
        starts the task's lease; a claimed task that is neither completed nor
        reclaimed is considered lost with its worker.
        """

    @abc.abstractmethod
    def complete(self, shard_id: int, payload: bytes) -> None:
        """Deliver the summary payload of a claimed task."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release worker-side resources (idempotent)."""

    def __enter__(self) -> "WorkerEndpoint":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class Transport(abc.ABC):
    """Coordinator-side half of a transport."""

    @abc.abstractmethod
    def publish(self, envelope: TaskEnvelope) -> None:
        """Make one task available for workers to claim."""

    @abc.abstractmethod
    def poll_summary(self, timeout: float = 0.0) -> Optional[SummaryEnvelope]:
        """Receive the next summary, waiting up to ``timeout`` seconds."""

    @abc.abstractmethod
    def reclaim_expired(self, lease_timeout: float) -> List[int]:
        """Requeue claimed tasks whose lease is older than ``lease_timeout``.

        Returns the shard ids that were made claimable again.  At-least-once
        semantics: the original worker may still finish and deliver a
        duplicate summary, which the coordinator deduplicates.
        """

    @abc.abstractmethod
    def worker(self) -> WorkerEndpoint:
        """Build a worker endpoint attached to this transport's queue."""

    def missing_tasks(self, shard_ids: Sequence[int]) -> List[int]:
        """Of ``shard_ids``, the shards this transport has *lost track of*.

        A lost shard is neither pending, nor claimed/outstanding, nor already
        summarized — the state a file-queue shard reaches when its task file
        vanishes (deleted by an operator, or destroyed by a worker that
        rejected a tampered payload).  The coordinator republishes its
        authentic copy of every lost shard.  Transports whose tasks cannot
        vanish (in-memory queues, the TCP broker) keep the default: nothing
        is ever lost, so nothing is republished.
        """
        return []

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release coordinator-side resources (idempotent)."""

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class InProcessTransport(Transport):
    """In-memory transport: queues guarded by one lock, shared by reference.

    The reference implementation of the transport contract — used by unit
    tests and by ``simulate_protocol_sharded(transport=...)`` when workers
    run as threads of the coordinator process.  Payloads still round-trip
    through the byte codec, so the in-process path exercises exactly the
    serialization used across hosts.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pending: Deque[TaskEnvelope] = deque()
        self._claimed: Dict[int, Tuple[TaskEnvelope, float]] = {}
        self._summaries: Deque[SummaryEnvelope] = deque()
        self._closed = False

    # ------------------------------------------------------------------ #
    # Coordinator side
    # ------------------------------------------------------------------ #
    def publish(self, envelope: TaskEnvelope) -> None:
        with self._lock:
            if self._closed:
                raise TransportError("transport is closed")
            self._pending.append(envelope)

    def poll_summary(self, timeout: float = 0.0) -> Optional[SummaryEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            with self._lock:
                if self._summaries:
                    return self._summaries.popleft()
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.001)

    def reclaim_expired(self, lease_timeout: float) -> List[int]:
        now = time.monotonic()
        reclaimed: List[int] = []
        with self._lock:
            for shard_id, (envelope, claimed_at) in list(self._claimed.items()):
                if now - claimed_at >= lease_timeout:
                    del self._claimed[shard_id]
                    self._pending.append(envelope)
                    reclaimed.append(shard_id)
        return reclaimed

    def worker(self) -> "_InProcessWorker":
        return _InProcessWorker(self)

    def close(self) -> None:
        with self._lock:
            self._closed = True

    # ------------------------------------------------------------------ #
    # Worker side (driven through _InProcessWorker)
    # ------------------------------------------------------------------ #
    def _claim(self, timeout: float) -> Optional[TaskEnvelope]:
        deadline = time.monotonic() + max(0.0, timeout)
        while True:
            with self._lock:
                if self._closed:
                    return None
                if self._pending:
                    envelope = self._pending.popleft()
                    self._claimed[envelope.shard_id] = (envelope, time.monotonic())
                    return envelope
            if time.monotonic() >= deadline:
                return None
            time.sleep(0.001)

    def _complete(self, shard_id: int, payload: bytes) -> None:
        with self._lock:
            self._claimed.pop(shard_id, None)
            self._summaries.append(SummaryEnvelope(shard_id=shard_id, payload=payload))


class _InProcessWorker(WorkerEndpoint):
    def __init__(self, transport: InProcessTransport) -> None:
        self._transport = transport

    def claim(self, timeout: float = 0.0) -> Optional[TaskEnvelope]:
        return self._transport._claim(timeout)

    def complete(self, shard_id: int, payload: bytes) -> None:
        self._transport._complete(shard_id, payload)
