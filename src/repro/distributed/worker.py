"""Remote aggregator workers: the execution side of the distributed queue.

:func:`run_worker` is the worker loop used both by in-process worker threads
(``simulate_protocol_sharded(transport=..., n_workers=N)``) and by the
``repro-ldp work`` CLI process.  It repeatedly claims a task payload, decodes
it (JSON only — no pickled code), rebuilds the dataset from the embedded
:class:`~repro.distributed.codec.DatasetRef` when one was not handed in
directly, executes the shard with
:func:`repro.simulation.runner.run_shard_task` and delivers the summary.

Because a task carries its own derived seed, a worker is a pure function of
the task payload: any worker, any number of times, produces the identical
summary — the property that makes lease-expiry requeues and duplicate
deliveries harmless.
"""

from __future__ import annotations

import json
import sys
import threading
import time
import traceback
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Tuple

from ..datasets.base import LongitudinalDataset
from ..obs.events import emit_event
from ..obs.metrics import default_registry
from ..obs.spans import span
from ..simulation.runner import run_shard_task
from .codec import TransportError, decode_task, encode_summary
from .transports import Transport, WorkerEndpoint

__all__ = ["LocalWorkerPool", "run_worker", "local_worker_threads"]


def _worker_failure(stage: str, error: BaseException, **fields: object) -> None:
    """Report a worker failure as a structured, machine-greppable event.

    The record goes to the default event log (when one is installed) *and*
    as one JSON line to stderr, so fleet failures can be grepped out of
    either surface; the caller re-raises, which makes the worker process
    exit nonzero.
    """
    record = {
        "component": "worker",
        "event": "error",
        "stage": stage,
        "error": f"{type(error).__name__}: {error}",
        "traceback": traceback.format_exc(),
    }
    record.update(fields)
    emit_event(
        "error",
        component="worker",
        stage=stage,
        error=record["error"],
        traceback=record["traceback"],
        **fields,
    )
    default_registry().counter(
        "repro_worker_errors_total", "Worker failures, by stage."
    ).labels(stage=stage).inc()
    print(json.dumps(record), file=sys.stderr, flush=True)


def run_worker(
    endpoint: WorkerEndpoint,
    dataset: Optional[LongitudinalDataset] = None,
    max_tasks: Optional[int] = None,
    idle_timeout: Optional[float] = 5.0,
    poll_interval: float = 0.1,
    stop: Optional[threading.Event] = None,
    memo_pool=None,
) -> int:
    """Claim-and-execute loop; returns the number of completed shards.

    Parameters
    ----------
    endpoint:
        Worker-side transport endpoint.
    dataset:
        The workload, when already available in this process.  ``None``
        rebuilds (and caches) datasets from each task's
        :class:`~repro.distributed.codec.DatasetRef` — the remote-worker
        path.
    max_tasks:
        Stop after this many completed shards (``None`` = unbounded).
    idle_timeout:
        Exit after this many seconds without claimable work (``None`` =
        wait forever, until ``stop`` is set or the broker shuts down).
    poll_interval:
        Claim poll granularity.
    stop:
        Cooperative cancellation for worker threads.
    memo_pool:
        Optional :class:`~repro.simulation.shm.SharedMemoPool` shared by
        every co-located worker on this host; each claimed shard's engine
        then uses a view over the pooled memo table (its own disjoint user
        slice) instead of a private allocation.  Summaries are bit-identical
        either way.
    """
    registry = default_registry()
    m_claims = registry.counter(
        "repro_worker_tasks_claimed_total", "Task payloads claimed from the queue."
    )
    m_summaries = registry.counter(
        "repro_worker_summaries_total", "Shard summaries delivered."
    )
    m_cache_hits = registry.counter(
        "repro_worker_dataset_cache_hits_total",
        "Claims served from the per-process dataset-rebuild cache.",
    )
    m_rebuilds = registry.counter(
        "repro_worker_dataset_rebuilds_total",
        "Datasets rebuilt from a task's registry reference.",
    )
    m_idle_seconds = registry.counter(
        "repro_worker_idle_seconds_total",
        "Wall-clock seconds spent waiting for claimable work.",
    )
    m_task_seconds = registry.histogram(
        "repro_worker_task_seconds", "Wall-clock duration of executed shard tasks."
    )
    completed = 0
    cache: Dict[Tuple[str, float, int], LongitudinalDataset] = {}
    idle_since = time.monotonic()
    while max_tasks is None or completed < max_tasks:
        if stop is not None and stop.is_set():
            break
        claim_started = time.monotonic()
        envelope = endpoint.claim(timeout=poll_interval)
        if envelope is None:
            m_idle_seconds.inc(max(0.0, time.monotonic() - claim_started))
            if getattr(endpoint, "saw_shutdown", False):
                break
            if (
                idle_timeout is not None
                and time.monotonic() - idle_since >= idle_timeout
            ):
                break
            continue
        m_claims.inc()
        try:
            shard_id, task, dataset_ref, plan = decode_task(envelope.payload)
        except Exception as error:
            # Broad on purpose: any decode failure (codec, auth, truncation)
            # is counted and logged with shard context, then re-raised.
            _worker_failure("task_decode", error, shard_id=envelope.shard_id)
            raise
        workload = dataset
        if workload is None:
            if dataset_ref is None:
                try:
                    raise TransportError(
                        f"task for shard {shard_id} carries no dataset reference "
                        f"and this worker was not handed a dataset"
                    )
                except TransportError as error:
                    _worker_failure("dataset_rebuild", error, shard_id=shard_id)
                    raise
            key = dataset_ref.cache_key()
            if key not in cache:
                try:
                    cache[key] = dataset_ref.build()
                except Exception as error:
                    # Broad on purpose: rebuild failures are counted and
                    # logged with shard context, then re-raised.
                    _worker_failure("dataset_rebuild", error, shard_id=shard_id)
                    raise
                m_rebuilds.inc()
            else:
                m_cache_hits.inc()
            workload = cache[key]
        task_started = time.perf_counter()
        with span("shard.run", component="worker", shard_id=shard_id):
            summary = run_shard_task(task, workload, memo_pool=memo_pool)
        task_seconds = time.perf_counter() - task_started
        m_task_seconds.observe(task_seconds)
        # Echo the coordinator's plan fingerprint so stale summaries in a
        # reused queue are recognizable as belonging to another collection.
        endpoint.complete(shard_id, encode_summary(shard_id, summary, plan=plan))
        m_summaries.inc()
        emit_event(
            "task_done",
            component="worker",
            shard_id=shard_id,
            seconds=round(task_seconds, 6),
        )
        completed += 1
        idle_since = time.monotonic()
    return completed


class LocalWorkerPool:
    """Handle to a set of in-process worker threads.

    :meth:`failure_reason` is the liveness hook for
    :meth:`repro.distributed.coordinator.Coordinator.run`: it reports a
    non-``None`` reason as soon as a worker raised or every worker exited
    while the pool is still supposed to be running, so a coordinator does
    not poll an abandoned queue forever.
    """

    def __init__(self, threads: List[threading.Thread], stop: threading.Event) -> None:
        self.threads = threads
        self.errors: List[BaseException] = []
        self._stop = stop

    def failure_reason(self) -> Optional[str]:
        if self.errors:
            return f"local worker failed: {self.errors[0]!r}"
        if (
            self.threads
            and not self._stop.is_set()
            and not any(thread.is_alive() for thread in self.threads)
        ):
            return "every local worker thread exited before the collection completed"
        return None


@contextmanager
def local_worker_threads(
    transport: Transport,
    n_workers: int,
    dataset: Optional[LongitudinalDataset] = None,
    memo_pool=None,
) -> Iterator[LocalWorkerPool]:
    """Run ``n_workers`` worker threads against ``transport`` for a block.

    The workers poll until the block exits (they have no idle timeout); on
    exit they are signalled to stop and joined.  A worker exception is
    re-raised in the caller after the block (and is visible earlier through
    :meth:`LocalWorkerPool.failure_reason`).  ``memo_pool`` is handed to
    every worker (see :func:`run_worker`); the threads share the pool's
    address space, so no attach step is needed.
    """
    stop = threading.Event()
    pool: LocalWorkerPool

    def loop() -> None:
        endpoint = transport.worker()
        try:
            run_worker(
                endpoint,
                dataset=dataset,
                idle_timeout=None,
                poll_interval=0.02,
                stop=stop,
                memo_pool=memo_pool,
            )
        except BaseException as error:  # surfaced via failure_reason / below
            pool.errors.append(error)
        finally:
            endpoint.close()

    threads = [
        threading.Thread(target=loop, name=f"repro-worker-{i}", daemon=True)
        for i in range(n_workers)
    ]
    pool = LocalWorkerPool(threads, stop)
    for thread in threads:
        thread.start()
    try:
        yield pool
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=10.0)
    if pool.errors:
        raise pool.errors[0]
