"""Internal argument-validation helpers shared across the library.

These helpers keep the public constructors short and make the error messages
uniform.  They always raise :class:`repro.exceptions.ParameterError` (or a
subclass) so that callers only need to handle a single exception type for
configuration mistakes.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from .exceptions import DomainError, ParameterError

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_probability",
    "require_int_at_least",
    "require_in_range",
    "require_epsilon",
    "require_epsilon_pair",
    "require_domain_size",
    "validate_value_in_domain",
    "validate_values_array",
    "as_rng",
]


def require_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number strictly greater than zero."""
    if not math.isfinite(value) or value <= 0:
        raise ParameterError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a finite number greater than or equal to zero."""
    if not math.isfinite(value) or value < 0:
        raise ParameterError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def require_probability(value: float, name: str, *, inclusive: bool = True) -> float:
    """Return ``value`` if it lies in ``[0, 1]`` (or ``(0, 1)`` when not inclusive)."""
    if not math.isfinite(value):
        raise ParameterError(f"{name} must be a finite probability, got {value!r}")
    if inclusive:
        if not 0.0 <= value <= 1.0:
            raise ParameterError(f"{name} must lie in [0, 1], got {value!r}")
    else:
        if not 0.0 < value < 1.0:
            raise ParameterError(f"{name} must lie in (0, 1), got {value!r}")
    return float(value)


def require_int_at_least(value: int, minimum: int, name: str) -> int:
    """Return ``value`` as ``int`` if it is an integer of at least ``minimum``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise ParameterError(f"{name} must be an integer, got {type(value).__name__}")
    if value < minimum:
        raise ParameterError(f"{name} must be >= {minimum}, got {value}")
    return int(value)


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return ``value`` if ``low <= value <= high``."""
    if not math.isfinite(value) or not (low <= value <= high):
        raise ParameterError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return float(value)


def require_epsilon(epsilon: float, name: str = "epsilon") -> float:
    """Validate a single privacy budget (finite, strictly positive)."""
    return require_positive(epsilon, name)


def require_epsilon_pair(eps_1: float, eps_inf: float) -> tuple:
    """Validate a first-report / longitudinal budget pair ``0 < eps_1 < eps_inf``."""
    eps_1 = require_epsilon(eps_1, "eps_1")
    eps_inf = require_epsilon(eps_inf, "eps_inf")
    if not eps_1 < eps_inf:
        raise ParameterError(
            "eps_1 (first-report budget) must be strictly smaller than eps_inf "
            f"(longitudinal budget); got eps_1={eps_1}, eps_inf={eps_inf}"
        )
    return eps_1, eps_inf


def require_domain_size(k: int, name: str = "k", *, minimum: int = 2) -> int:
    """Validate a domain size (integer of at least ``minimum``, default 2)."""
    return require_int_at_least(k, minimum, name)


def validate_value_in_domain(value: int, k: int, name: str = "value") -> int:
    """Validate that a single categorical value lies in ``[0, k)``."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise DomainError(f"{name} must be an integer in [0, {k}), got {value!r}")
    if not 0 <= value < k:
        raise DomainError(f"{name} must lie in [0, {k}), got {value}")
    return int(value)


def validate_values_array(values: Sequence[int], k: int, name: str = "values") -> np.ndarray:
    """Validate a batch of categorical values and return it as an int64 array."""
    arr = np.asarray(values)
    if arr.size == 0:
        return arr.astype(np.int64).reshape(arr.shape)
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise DomainError(f"{name} must contain integers in [0, {k})")
    if arr.min() < 0 or arr.max() >= k:
        raise DomainError(
            f"{name} must contain integers in [0, {k}); "
            f"observed range [{arr.min()}, {arr.max()}]"
        )
    return arr.astype(np.int64)


def as_rng(rng: Optional[object]) -> np.random.Generator:
    """Coerce ``rng`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (a fresh non-deterministic generator), an integer seed,
    or an existing generator (returned unchanged).
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, (int, np.integer)):
        return np.random.default_rng(int(rng))
    if isinstance(rng, np.random.SeedSequence):
        return np.random.default_rng(rng)
    raise ParameterError(
        "rng must be None, an integer seed, a numpy SeedSequence, or a "
        f"numpy.random.Generator; got {type(rng).__name__}"
    )
