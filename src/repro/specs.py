"""Declarative, serializable protocol and sweep specifications.

The construction API of the library is *data first*: a
:class:`ProtocolSpec` is a frozen, validated description of one protocol
configuration (registry name, domain size, budgets and protocol-specific
parameters) that can be pickled, JSON round-tripped and shipped across
processes or hosts.  :func:`repro.registry.build_protocol` turns a concrete
spec into a live :class:`~repro.longitudinal.base.LongitudinalProtocol`.

Specs replace the old ``ProtocolFactory`` closures (``lambda k, eps_inf,
eps_1: ...``), which could not be serialized and therefore blocked
distributing sweeps and sharded simulations.  A spec may be *partial* — grid
fields (``k``, ``eps_inf``, ``alpha``) left as ``None`` act as a template
that a sweep fills in per grid point via :meth:`ProtocolSpec.at`.

:class:`SweepSpec` describes a whole ``(protocol, dataset, eps_inf, alpha)``
grid — the unit of work of the ``repro-ldp sweep`` CLI command — and is the
on-disk format of ``--spec grid.json`` files::

    {
      "name": "demo",
      "protocols": [
        {"name": "L-OSUE"},
        {"name": "dBitFlipPM", "label": "1BitFlipPM", "params": {"d": 1}}
      ],
      "datasets": ["syn"],
      "eps_inf_values": [0.5, 2.0],
      "alpha_values": [0.5],
      "n_runs": 1,
      "dataset_scale": 0.05,
      "seed": 20230328
    }
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Mapping, Optional, Tuple, Union

from ._atomicio import atomic_write_text
from ._validation import require_int_at_least, require_positive
from .exceptions import ExperimentError, ParameterError

__all__ = [
    "CollectionSpec",
    "IngestSpec",
    "ProtocolSpec",
    "SweepSpec",
    "load_collection_spec",
    "load_ingest_spec",
    "load_sweep_spec",
]

#: JSON-scalar types allowed as protocol-specific parameter values.
_SCALAR_TYPES = (bool, int, float, str, type(None))


def _require_json_scalar_params(params: Mapping) -> Dict[str, object]:
    normalized: Dict[str, object] = {}
    for key, value in params.items():
        if not isinstance(key, str):
            raise ParameterError(f"param keys must be strings, got {key!r}")
        if not isinstance(value, _SCALAR_TYPES):
            raise ParameterError(
                f"param {key!r} must be a JSON scalar (bool/int/float/str/None), "
                f"got {type(value).__name__}"
            )
        normalized[key] = value
    return normalized


@dataclass(frozen=True)
class ProtocolSpec:
    """Frozen, validated description of one protocol configuration.

    Attributes
    ----------
    name:
        Registry key of the protocol builder (see
        :func:`repro.registry.registered_protocols`), e.g. ``"L-GRR"``,
        ``"OLOLOHA"`` or ``"dBitFlipPM"``.
    k:
        Original domain size (``None`` in grid templates: filled in from the
        dataset).
    eps_inf:
        Longitudinal privacy budget (``None`` in grid templates).
    alpha:
        Ratio ``eps_1 / eps_inf`` in ``(0, 1)``.  Mutually exclusive with
        ``eps_1``.
    eps_1:
        Explicit first-report budget.  Mutually exclusive with ``alpha``.
    label:
        Display name used in sweep results and figures; defaults to ``name``.
        Lets two configurations of the same protocol coexist in one grid
        (``1BitFlipPM`` / ``bBitFlipPM`` are both ``dBitFlipPM`` specs).
    params:
        Protocol-specific parameters as JSON scalars (e.g. ``b``/``d`` for
        dBitFlipPM, ``g``/``hash_family`` for LOLOHA).  Validated by the
        registry builder on :func:`~repro.registry.build_protocol`.
    """

    name: str
    k: Optional[int] = None
    eps_inf: Optional[float] = None
    alpha: Optional[float] = None
    eps_1: Optional[float] = None
    label: Optional[str] = None
    params: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ParameterError("spec name must be a non-empty string")
        if self.k is not None:
            require_int_at_least(self.k, 2, "k")
            object.__setattr__(self, "k", int(self.k))
        if self.eps_inf is not None:
            require_positive(self.eps_inf, "eps_inf")
            object.__setattr__(self, "eps_inf", float(self.eps_inf))
        if self.alpha is not None and self.eps_1 is not None:
            raise ParameterError(
                "alpha and eps_1 are mutually exclusive; give one of them"
            )
        if self.alpha is not None:
            if not 0.0 < float(self.alpha) < 1.0:
                raise ParameterError(f"alpha must lie in (0, 1), got {self.alpha}")
            object.__setattr__(self, "alpha", float(self.alpha))
        if self.eps_1 is not None:
            require_positive(self.eps_1, "eps_1")
            if self.eps_inf is not None and float(self.eps_1) > self.eps_inf:
                raise ParameterError(
                    f"eps_1 must not exceed eps_inf, got eps_1={self.eps_1}, "
                    f"eps_inf={self.eps_inf}"
                )
            object.__setattr__(self, "eps_1", float(self.eps_1))
        if self.label is not None and (not isinstance(self.label, str) or not self.label):
            raise ParameterError("label must be a non-empty string or None")
        object.__setattr__(self, "params", _require_json_scalar_params(self.params))

    # ------------------------------------------------------------------ #
    # Derived views
    # ------------------------------------------------------------------ #
    @property
    def display_name(self) -> str:
        """Name used in sweep results and legends (``label`` or ``name``)."""
        return self.label if self.label is not None else self.name

    @property
    def is_concrete(self) -> bool:
        """Whether ``k`` and ``eps_inf`` are resolved (buildable)."""
        return self.k is not None and self.eps_inf is not None

    @property
    def resolved_eps_1(self) -> Optional[float]:
        """``eps_1`` — explicit, or derived as ``alpha * eps_inf``."""
        if self.eps_1 is not None:
            return self.eps_1
        if self.alpha is not None and self.eps_inf is not None:
            return self.alpha * self.eps_inf
        return None

    def at(
        self,
        k: Optional[int] = None,
        eps_inf: Optional[float] = None,
        alpha: Optional[float] = None,
        eps_1: Optional[float] = None,
    ) -> "ProtocolSpec":
        """Return a copy with the given grid fields overridden.

        Overriding ``alpha`` clears an existing ``eps_1`` (and vice versa),
        so a template can be re-pointed across a grid without accumulating
        conflicting budget fields.
        """
        if alpha is not None and eps_1 is not None:
            raise ParameterError("give one of alpha / eps_1, not both")
        updates: Dict[str, object] = {}
        if k is not None:
            updates["k"] = k
        if eps_inf is not None:
            updates["eps_inf"] = eps_inf
        if alpha is not None:
            updates.update(alpha=alpha, eps_1=None)
        if eps_1 is not None:
            updates.update(eps_1=eps_1, alpha=None)
        return replace(self, **updates) if updates else self

    def __hash__(self) -> int:
        return hash(
            (
                self.name,
                self.k,
                self.eps_inf,
                self.alpha,
                self.eps_1,
                self.label,
                tuple(sorted(self.params.items())),
            )
        )

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form: ``name`` plus every non-default field."""
        payload: Dict[str, object] = {"name": self.name}
        for attr in ("k", "eps_inf", "alpha", "eps_1", "label"):
            value = getattr(self, attr)
            if value is not None:
                payload[attr] = value
        if self.params:
            payload["params"] = dict(self.params)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "ProtocolSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"a protocol spec must be a mapping, got {type(payload).__name__}"
            )
        known = {"name", "k", "eps_inf", "alpha", "eps_1", "label", "params"}
        unknown = set(payload) - known
        if unknown:
            raise ParameterError(
                f"unknown protocol spec fields: {sorted(unknown)}; known: {sorted(known)}"
            )
        if "name" not in payload:
            raise ParameterError("a protocol spec requires a 'name' field")
        return cls(
            name=payload["name"],
            k=payload.get("k"),
            eps_inf=payload.get("eps_inf"),
            alpha=payload.get("alpha"),
            eps_1=payload.get("eps_1"),
            label=payload.get("label"),
            params=dict(payload.get("params", {})),
        )

    def to_json(self) -> str:
        """Compact JSON form of :meth:`to_dict`."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ProtocolSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of a full ``(protocol, dataset, eps_inf,
    alpha)`` sweep grid — the payload of a ``--spec grid.json`` file.

    Attributes
    ----------
    protocols:
        Protocol templates in grid order.  Display names
        (:attr:`ProtocolSpec.display_name`) must be unique.
    eps_inf_values, alpha_values:
        The privacy grid; ``eps_1 = alpha * eps_inf``.
    datasets:
        Dataset registry names to sweep (one CSV per dataset).
    n_runs:
        Independent repetitions per grid point.
    dataset_scale:
        Fraction of the paper-sized population / horizon to simulate.
    seed:
        Root seed; see :class:`repro.simulation.SweepExecutor` for the
        derived-stream guarantees.
    n_workers:
        Worker processes (results are bit-identical for every value).
    name:
        Experiment-id prefix of the output CSVs (``<name>_<dataset>.csv``).
    store:
        Results backend the sweep writes through (``csv``, ``sqlite`` or
        ``parquet``); overridable per run with ``sweep --store``.  Like
        ``n_workers``, the backend never changes a row's bytes, so it is
        excluded from :meth:`fingerprint`.
    """

    protocols: Tuple[ProtocolSpec, ...]
    eps_inf_values: Tuple[float, ...]
    alpha_values: Tuple[float, ...]
    datasets: Tuple[str, ...] = ("syn",)
    n_runs: int = 1
    dataset_scale: float = 1.0
    seed: int = 20230328
    n_workers: int = 1
    name: str = "sweep"
    store: str = "csv"

    def __post_init__(self) -> None:
        protocols = tuple(self.protocols)
        if not protocols:
            raise ParameterError("a sweep spec requires at least one protocol")
        for spec in protocols:
            if not isinstance(spec, ProtocolSpec):
                raise ParameterError(
                    f"protocols must be ProtocolSpec instances, got {type(spec).__name__}"
                )
        labels = [spec.display_name for spec in protocols]
        if len(set(labels)) != len(labels):
            raise ParameterError(
                f"protocol display names must be unique, got {labels}; "
                f"disambiguate with 'label'"
            )
        object.__setattr__(self, "protocols", protocols)
        eps_values = tuple(float(e) for e in self.eps_inf_values)
        alpha_values = tuple(float(a) for a in self.alpha_values)
        if not eps_values or not alpha_values:
            raise ParameterError("the privacy grid must be non-empty")
        for eps in eps_values:
            require_positive(eps, "eps_inf")
        for alpha in alpha_values:
            if not 0.0 < alpha < 1.0:
                raise ParameterError(f"alpha must lie in (0, 1), got {alpha}")
        object.__setattr__(self, "eps_inf_values", eps_values)
        object.__setattr__(self, "alpha_values", alpha_values)
        datasets = tuple(str(d) for d in self.datasets)
        if not datasets:
            raise ParameterError("a sweep spec requires at least one dataset")
        object.__setattr__(self, "datasets", datasets)
        require_int_at_least(self.n_runs, 1, "n_runs")
        require_positive(self.dataset_scale, "dataset_scale")
        require_int_at_least(self.n_workers, 1, "n_workers")
        if not isinstance(self.name, str) or not self.name:
            raise ParameterError("sweep name must be a non-empty string")
        # Lazy import: specs is a leaf module; the store package imports
        # nothing from it, but keeping the edge one-directional at import
        # time avoids a cycle if that ever changes.
        from .store.backends import available_backend_kinds, require_backend_kind

        try:
            require_backend_kind(self.store)
        except ExperimentError:
            raise ParameterError(
                f"unknown results store {self.store!r}; "
                f"available: {', '.join(available_backend_kinds())}"
            ) from None

    def grid_protocols(self) -> Dict[str, ProtocolSpec]:
        """Protocol templates keyed by display name, in grid order."""
        return {spec.display_name: spec for spec in self.protocols}

    def experiment_id(self, dataset: str) -> str:
        """Store id of one dataset's results CSV."""
        return f"{self.name}_{dataset}"

    @property
    def n_grid_points(self) -> int:
        """Grid points per dataset."""
        return len(self.protocols) * len(self.eps_inf_values) * len(self.alpha_values)

    # ------------------------------------------------------------------ #
    # Serialization
    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "protocols": [spec.to_dict() for spec in self.protocols],
            "eps_inf_values": list(self.eps_inf_values),
            "alpha_values": list(self.alpha_values),
            "datasets": list(self.datasets),
            "n_runs": self.n_runs,
            "dataset_scale": self.dataset_scale,
            "seed": self.seed,
            "n_workers": self.n_workers,
            "store": self.store,
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SweepSpec":
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"a sweep spec must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "name", "protocols", "eps_inf_values", "alpha_values", "datasets",
            "n_runs", "dataset_scale", "seed", "n_workers", "store",
        }
        unknown = set(payload) - known
        if unknown:
            raise ParameterError(
                f"unknown sweep spec fields: {sorted(unknown)}; known: {sorted(known)}"
            )
        for required in ("protocols", "eps_inf_values", "alpha_values"):
            if required not in payload:
                raise ParameterError(f"a sweep spec requires a {required!r} field")
        kwargs: Dict[str, object] = {
            "protocols": tuple(
                ProtocolSpec.from_dict(entry) for entry in payload["protocols"]
            ),
            "eps_inf_values": tuple(payload["eps_inf_values"]),
            "alpha_values": tuple(payload["alpha_values"]),
        }
        for optional in (
            "datasets", "n_runs", "dataset_scale", "seed", "n_workers", "name", "store",
        ):
            if optional in payload:
                value = payload[optional]
                kwargs[optional] = tuple(value) if optional == "datasets" else value
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, self.to_json() + "\n")
        return path

    def fingerprint(self) -> str:
        """Stable hash of the result-determining fields of this grid.

        The fingerprint is embedded in sweep CSV headers so ``--resume``
        can refuse to mix rows produced by a different spec.  Fields that
        never change a dataset's rows are excluded: ``n_workers`` (sweeps
        are bit-identical for any worker count), ``datasets`` (each
        dataset's CSV depends only on its own grid — adding a dataset to
        the spec must not invalidate the finished ones), ``name`` (it is
        already the CSV filename) and ``store`` (every backend persists the
        same canonical row bytes, so migrating between backends keeps the
        fingerprint valid).
        """
        payload = self.to_dict()
        for non_determining in ("n_workers", "datasets", "name", "store"):
            payload.pop(non_determining, None)
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def load_sweep_spec(path: Union[str, Path]) -> SweepSpec:
    """Load a :class:`SweepSpec` from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ParameterError(f"sweep spec file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParameterError(f"invalid JSON in sweep spec {path}: {error}") from None
    return SweepSpec.from_dict(payload)


@dataclass(frozen=True)
class CollectionSpec:
    """Declarative description of one distributed sharded collection —
    the payload of ``repro-ldp serve --spec collection.json`` files.

    Attributes
    ----------
    protocol:
        The protocol template; ``k`` is filled in from the dataset, so the
        template needs concrete budgets (``eps_inf`` plus ``alpha`` or
        ``eps_1``) only.
    dataset:
        Dataset registry name (see :func:`repro.datasets.make_dataset`).
    dataset_scale:
        Fraction of the paper-sized population / horizon to collect.
    n_shards:
        Number of contiguous user shards distributed to workers.
    seed:
        Root seed: seeds the dataset build *and* the per-shard randomness
        (derived per shard index), so any worker fleet — and any crash /
        requeue / duplicate history — reproduces the serial estimates
        bit for bit.
    name:
        Collection id used in logs and output file names.
    shard_weights:
        Optional per-shard sizing weights (one positive number per shard,
        e.g. worker capacity hints) for heterogeneous fleets; ``None``
        splits the population evenly.  See
        :func:`repro.simulation.runner.shard_boundaries`.
    auth_key_env:
        Name of the environment variable holding the shared HMAC secret for
        payload authentication (see :mod:`repro.distributed.auth`).  Only
        the *name* is serialized — the key itself is resolved from the
        environment on each endpoint and never stored in the spec JSON.
        ``None`` runs unauthenticated.
    """

    protocol: ProtocolSpec
    dataset: str = "syn"
    dataset_scale: float = 1.0
    n_shards: int = 1
    seed: int = 20230328
    name: str = "collection"
    shard_weights: Optional[Tuple[float, ...]] = None
    auth_key_env: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, ProtocolSpec):
            raise ParameterError(
                f"protocol must be a ProtocolSpec, got {type(self.protocol).__name__}"
            )
        if self.protocol.eps_inf is None:
            raise ParameterError(
                "the collection's protocol template needs a concrete eps_inf"
            )
        if not isinstance(self.dataset, str) or not self.dataset:
            raise ParameterError("dataset must be a non-empty registry name")
        require_positive(self.dataset_scale, "dataset_scale")
        require_int_at_least(self.n_shards, 1, "n_shards")
        if not isinstance(self.name, str) or not self.name:
            raise ParameterError("collection name must be a non-empty string")
        if self.shard_weights is not None:
            weights = tuple(float(w) for w in self.shard_weights)
            if len(weights) != self.n_shards:
                raise ParameterError(
                    f"shard_weights needs one weight per shard "
                    f"({self.n_shards}), got {len(weights)}"
                )
            for weight in weights:
                require_positive(weight, "shard weight")
            object.__setattr__(self, "shard_weights", weights)
        if self.auth_key_env is not None and (
            not isinstance(self.auth_key_env, str) or not self.auth_key_env
        ):
            raise ParameterError(
                "auth_key_env must be a non-empty environment variable name "
                "or None"
            )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "protocol": self.protocol.to_dict(),
            "dataset": self.dataset,
            "dataset_scale": self.dataset_scale,
            "n_shards": self.n_shards,
            "seed": self.seed,
        }
        if self.shard_weights is not None:
            payload["shard_weights"] = list(self.shard_weights)
        if self.auth_key_env is not None:
            payload["auth_key_env"] = self.auth_key_env
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "CollectionSpec":
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"a collection spec must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "name", "protocol", "dataset", "dataset_scale", "n_shards", "seed",
            "shard_weights", "auth_key_env",
        }
        unknown = set(payload) - known
        if unknown:
            raise ParameterError(
                f"unknown collection spec fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        if "protocol" not in payload:
            raise ParameterError("a collection spec requires a 'protocol' field")
        kwargs: Dict[str, object] = {
            "protocol": ProtocolSpec.from_dict(payload["protocol"])
        }
        for optional in ("name", "dataset", "dataset_scale", "n_shards", "seed", "auth_key_env"):
            if optional in payload:
                kwargs[optional] = payload[optional]
        if "shard_weights" in payload and payload["shard_weights"] is not None:
            kwargs["shard_weights"] = tuple(payload["shard_weights"])
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "CollectionSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, self.to_json() + "\n")
        return path


@dataclass(frozen=True)
class IngestSpec:
    """Declarative description of one live ingestion service — the payload
    of ``repro-ldp ingest --spec ingest.json`` files.

    Unlike a :class:`CollectionSpec` there is no dataset: the population is
    *whatever reports over the wire*, so the protocol template must be fully
    concrete (``k`` included — nothing fills it in).

    Attributes
    ----------
    protocol:
        Concrete protocol configuration served by this collector.
    n_rounds:
        Length of the collection horizon.
    name:
        Service id used in logs and metric output.
    host, port:
        Bind address of the HTTP front door (``port 0`` = ephemeral).
    window_seconds:
        Seal the open round window after this many wall-clock seconds
        (``None`` disables the timeout trigger; see
        :class:`repro.service.clock.RoundClock`).
    quorum:
        Seal the open window once it has received this many reports
        (``None`` disables the quorum trigger).
    late_policy:
        What happens to reports for an already-sealed round: ``"drop"``
        (count and discard) or ``"absorb"`` (fold into the open window).
    queue_capacity:
        Maximum number of report batches buffered between the HTTP front
        door and the aggregation consumer; a full queue answers
        ``429 Too Many Requests`` with a ``Retry-After`` hint.
    retry_after_seconds:
        The ``Retry-After`` hint sent with ``429`` responses.
    checkpoint_interval_seconds:
        Minimum seconds between periodic session/clock checkpoints (only
        active when the service is given a checkpoint path).
    auth_key_env:
        Name of the environment variable holding the shared HMAC secret
        (see :mod:`repro.distributed.auth`); submissions must then be
        signed envelopes and unauthenticated bodies are rejected with
        ``401``.  ``None`` runs unauthenticated.
    """

    protocol: ProtocolSpec
    n_rounds: int
    name: str = "ingest"
    host: str = "127.0.0.1"
    port: int = 0
    window_seconds: Optional[float] = None
    quorum: Optional[int] = None
    late_policy: str = "drop"
    queue_capacity: int = 256
    retry_after_seconds: float = 0.5
    checkpoint_interval_seconds: float = 30.0
    auth_key_env: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, ProtocolSpec):
            raise ParameterError(
                f"protocol must be a ProtocolSpec, got {type(self.protocol).__name__}"
            )
        if not self.protocol.is_concrete:
            raise ParameterError(
                "an ingest spec's protocol must be fully concrete (k and "
                "eps_inf set): there is no dataset to fill the template in"
            )
        require_int_at_least(self.n_rounds, 1, "n_rounds")
        if not isinstance(self.name, str) or not self.name:
            raise ParameterError("ingest name must be a non-empty string")
        if not isinstance(self.host, str) or not self.host:
            raise ParameterError("host must be a non-empty string")
        port = require_int_at_least(self.port, 0, "port")
        if port > 65535:
            raise ParameterError(f"port must be <= 65535, got {port}")
        if self.window_seconds is not None:
            require_positive(self.window_seconds, "window_seconds")
            object.__setattr__(self, "window_seconds", float(self.window_seconds))
        if self.quorum is not None:
            object.__setattr__(
                self, "quorum", require_int_at_least(self.quorum, 1, "quorum")
            )
        if self.late_policy not in ("drop", "absorb"):
            raise ParameterError(
                f"late_policy must be 'drop' or 'absorb', got {self.late_policy!r}"
            )
        require_int_at_least(self.queue_capacity, 1, "queue_capacity")
        require_positive(self.retry_after_seconds, "retry_after_seconds")
        require_positive(
            self.checkpoint_interval_seconds, "checkpoint_interval_seconds"
        )
        if self.auth_key_env is not None and (
            not isinstance(self.auth_key_env, str) or not self.auth_key_env
        ):
            raise ParameterError(
                "auth_key_env must be a non-empty environment variable name "
                "or None"
            )

    _OPTIONAL_FIELDS = (
        "name", "host", "port", "window_seconds", "quorum", "late_policy",
        "queue_capacity", "retry_after_seconds", "checkpoint_interval_seconds",
        "auth_key_env",
    )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "protocol": self.protocol.to_dict(),
            "n_rounds": self.n_rounds,
        }
        for attr in self._OPTIONAL_FIELDS:
            value = getattr(self, attr)
            if value is not None:
                payload[attr] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "IngestSpec":
        if not isinstance(payload, Mapping):
            raise ParameterError(
                f"an ingest spec must be a mapping, got {type(payload).__name__}"
            )
        known = {"protocol", "n_rounds", *cls._OPTIONAL_FIELDS}
        unknown = set(payload) - known
        if unknown:
            raise ParameterError(
                f"unknown ingest spec fields: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        for required in ("protocol", "n_rounds"):
            if required not in payload:
                raise ParameterError(f"an ingest spec requires a {required!r} field")
        kwargs: Dict[str, object] = {
            "protocol": ProtocolSpec.from_dict(payload["protocol"]),
            "n_rounds": payload["n_rounds"],
        }
        for optional in cls._OPTIONAL_FIELDS:
            if optional in payload:
                kwargs[optional] = payload[optional]
        return cls(**kwargs)

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "IngestSpec":
        return cls.from_dict(json.loads(text))

    def save(self, path: Union[str, Path]) -> Path:
        """Write the spec as a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, self.to_json() + "\n")
        return path


def load_ingest_spec(path: Union[str, Path]) -> IngestSpec:
    """Load an :class:`IngestSpec` from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ParameterError(f"ingest spec file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParameterError(
            f"invalid JSON in ingest spec {path}: {error}"
        ) from None
    return IngestSpec.from_dict(payload)


def load_collection_spec(path: Union[str, Path]) -> CollectionSpec:
    """Load a :class:`CollectionSpec` from a JSON file."""
    path = Path(path)
    if not path.exists():
        raise ParameterError(f"collection spec file not found: {path}")
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as error:
        raise ParameterError(
            f"invalid JSON in collection spec {path}: {error}"
        ) from None
    return CollectionSpec.from_dict(payload)
