"""The live ingestion service: an async HTTP front door over a session.

This module ties the service layer together into one deployable unit —
``repro-ldp ingest`` — that accepts longitudinal LDP reports *live* instead
of from a dataset file:

* an :class:`~repro.service.http.AsyncHttpServer` front door exposing

  ========================  ======  =========================================
  ``/v1/reports``           POST    submit a batch of reports or counts
  ``/v1/estimate/<t>``      GET     live debiased estimate of round ``t``
  ``/v1/rounds``            GET     horizon / window / late-traffic status
  ``/v1/rounds/advance``    POST    seal the open window explicitly
  ``/healthz``              GET     liveness probe
  ``/metrics``              GET     Prometheus text exposition
  ========================  ======  =========================================

* a :class:`~repro.service.clock.RoundClock` that owns round windowing
  (timeout / quorum / explicit sealing, late-report policy),
* a bounded ingest queue between the HTTP handlers and the single
  aggregation consumer — a full queue answers ``429`` with a ``Retry-After``
  hint instead of buffering without limit,
* optional HMAC-SHA256 submission authentication reusing the
  :mod:`repro.distributed.auth` envelope (same ``--auth-key-env``
  convention as the distributed transports),
* periodic atomic checkpointing of the session (``.npz``/JSON, unchanged
  format) plus a ``<checkpoint>.clock.json`` sidecar for the clock, and a
  graceful drain-and-checkpoint on SIGTERM.

Submissions are validated and folded to support counts *in the HTTP
handler* (so malformed batches fail with ``400`` synchronously), then the
pre-folded counts flow through the queue to the consumer, which routes them
through the clock and adds them to the session.  Support counts are
integer-valued floats, so this split is bit-identical to feeding the raw
reports straight into a batch :class:`~repro.service.session.CollectorSession`
in any order or grouping.

Report wire format (``encode_reports`` / ``decode_reports``): plain JSON
per protocol family — integers for L-GRR, 0/1 arrays for the unary-encoding
family, ``{"buckets": [...], "bits": [...]}`` objects for dBitFlipPM.
LOLOHA reports carry the client's hash function and are deliberately *not*
wire-serializable; LOLOHA producers submit pre-aggregated counts (the
``counts`` mode, which every protocol supports).
"""

from __future__ import annotations

import asyncio
import json
import signal
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .._atomicio import atomic_write_bytes
from ..distributed.auth import AuthenticationError, authenticator_from_env
from ..exceptions import AggregationError, ParameterError
from ..longitudinal.base import LongitudinalProtocol
from ..longitudinal.dbitflip import DBitFlipPM, DBitFlipReport
from ..longitudinal.l_grr import LGRR
from ..longitudinal.l_ue import LongitudinalUnaryEncoding
from ..specs import IngestSpec
from .clock import RoundClock, SealEvent
from .http import AsyncHttpServer, HttpError, HttpRequest, HttpResponse
from ..obs.metrics import MetricsRegistry
from .session import CollectorSession

__all__ = [
    "IngestServer",
    "encode_reports",
    "decode_reports",
    "wire_reports_supported",
]


# ---------------------------------------------------------------------- #
# Report wire codec
# ---------------------------------------------------------------------- #
def wire_reports_supported(protocol: LongitudinalProtocol) -> bool:
    """Whether this protocol's client reports are JSON-serializable.

    LOLOHA reports embed the client's hash function object; those producers
    use the ``counts`` submission mode instead.
    """
    return isinstance(protocol, (LGRR, LongitudinalUnaryEncoding, DBitFlipPM))


def encode_reports(
    protocol: LongitudinalProtocol, reports: Sequence
) -> List[object]:
    """Encode client reports as plain JSON values for ``POST /v1/reports``."""
    if isinstance(protocol, LGRR):
        return [int(report) for report in reports]
    if isinstance(protocol, LongitudinalUnaryEncoding):
        return [[int(bit) for bit in report] for report in reports]
    if isinstance(protocol, DBitFlipPM):
        return [
            {
                "buckets": [int(b) for b in report.sampled_buckets],
                "bits": [int(b) for b in report.bits],
            }
            for report in reports
        ]
    raise ParameterError(
        f"protocol {protocol.name!r} reports are not wire-serializable "
        f"(they carry the client's hash function); submit pre-aggregated "
        f"support counts instead (the 'counts' mode)"
    )


def decode_reports(protocol: LongitudinalProtocol, payload: object) -> List:
    """Decode a ``POST /v1/reports`` JSON array back into protocol reports."""
    if not isinstance(payload, list) or not payload:
        raise ParameterError("reports must be a non-empty JSON array")
    try:
        if isinstance(protocol, LGRR):
            return [int(report) for report in payload]
        if isinstance(protocol, LongitudinalUnaryEncoding):
            return [[int(bit) for bit in report] for report in payload]
        if isinstance(protocol, DBitFlipPM):
            return [
                DBitFlipReport(
                    sampled_buckets=tuple(int(b) for b in report["buckets"]),
                    bits=tuple(int(b) for b in report["bits"]),
                )
                for report in payload
            ]
    except (KeyError, TypeError, ValueError) as error:
        raise ParameterError(
            f"malformed wire report for protocol {protocol.name!r}: {error}"
        ) from None
    raise ParameterError(
        f"protocol {protocol.name!r} does not accept wire reports; submit "
        f"pre-aggregated support counts instead (the 'counts' mode)"
    )


@dataclass
class _Submission:
    """One validated batch queued between the front door and the consumer."""

    round_index: int
    counts: np.ndarray
    n_reports: int


class IngestServer:
    """The live collection endpoint described by an :class:`IngestSpec`.

    Parameters
    ----------
    spec:
        Declarative service configuration (protocol, horizon, windowing,
        queue capacity, authentication).
    checkpoint_path:
        Optional session checkpoint path (``.npz`` or JSON).  When it exists
        the server *restores* from it (plus the ``<path>.clock.json`` clock
        sidecar) and continues the horizon; while running it checkpoints
        atomically every ``spec.checkpoint_interval_seconds`` and once more
        on shutdown.
    metrics:
        Registry to expose on ``/metrics``; a private one is created when
        omitted (pass one to share series with an embedding process).
    tick_interval:
        Cadence of the background ticker that fires timeout seals, refreshes
        the queue gauge and triggers periodic checkpoints.
    time_source:
        Monotonic clock, injectable for tests.
    """

    def __init__(
        self,
        spec: IngestSpec,
        *,
        checkpoint_path: Optional[Union[str, Path]] = None,
        metrics: Optional[MetricsRegistry] = None,
        tick_interval: float = 0.25,
        time_source: Callable[[], float] = time.monotonic,
    ) -> None:
        if not isinstance(spec, IngestSpec):
            raise ParameterError(
                f"spec must be an IngestSpec, got {type(spec).__name__}"
            )
        self.spec = spec
        self._time = time_source
        if not tick_interval > 0:
            raise ParameterError(f"tick_interval must be > 0, got {tick_interval}")
        self._tick_interval = float(tick_interval)
        self._authenticator = authenticator_from_env(spec.auth_key_env)
        self._checkpoint_path = (
            Path(checkpoint_path) if checkpoint_path is not None else None
        )

        self.metrics = metrics if metrics is not None else MetricsRegistry()
        m = self.metrics
        self._m_accepted = m.counter(
            "repro_ingest_reports_accepted_total",
            "Reports folded into the collector session",
        )
        self._m_batches = m.counter(
            "repro_ingest_batches_total", "Report/count batches folded"
        )
        self._m_rejected = m.counter(
            "repro_ingest_rejected_total",
            "Submissions rejected before aggregation, by reason",
        )
        self._m_late = m.counter(
            "repro_ingest_reports_late_total",
            "Reports that arrived after their round sealed, by policy outcome",
        )
        self._m_queue_depth = m.gauge(
            "repro_ingest_queue_depth", "Batches waiting for the consumer"
        )
        self._m_queue_capacity = m.gauge(
            "repro_ingest_queue_capacity", "Bound of the ingest queue"
        )
        self._m_queue_capacity.set(spec.queue_capacity)
        self._m_sealed = m.counter(
            "repro_ingest_rounds_sealed_total", "Round windows sealed, by reason"
        )
        self._m_seal_latency = m.histogram(
            "repro_ingest_seal_latency_seconds",
            "Wall-clock seconds each sealed window was open",
        )
        self._m_estimate_age = m.gauge(
            "repro_ingest_estimate_age_seconds",
            "Seconds since the served round estimate last changed",
        )
        self._m_current_round = m.gauge(
            "repro_ingest_current_round", "The open round window"
        )
        self._m_http = m.counter(
            "repro_http_requests_total", "HTTP requests served, by route and status"
        )
        self._m_checkpoints = m.counter(
            "repro_ingest_checkpoints_total", "Session+clock checkpoints written"
        )

        self.session, self.clock = self._build_state()
        self.session.attach_clock(self.clock)
        self._m_current_round.set(self.clock.current_round)

        self._queue: Optional[asyncio.Queue] = None
        self._http: Optional[AsyncHttpServer] = None
        self._consumer_task: Optional[asyncio.Task] = None
        self._ticker_task: Optional[asyncio.Task] = None
        self._fold_times: Dict[int, float] = {}
        self._dirty = False
        self._last_checkpoint = self._time()
        self._stopped = False

    # ------------------------------------------------------------------ #
    # State construction / restore
    # ------------------------------------------------------------------ #
    @property
    def clock_state_path(self) -> Optional[Path]:
        """The clock sidecar written next to the session checkpoint."""
        if self._checkpoint_path is None:
            return None
        return self._checkpoint_path.with_name(
            self._checkpoint_path.name + ".clock.json"
        )

    def _build_state(self) -> Tuple[CollectorSession, RoundClock]:
        path = self._checkpoint_path
        if path is not None and path.exists():
            session = CollectorSession.restore(path)
            if session.spec is None or session.spec.to_dict() != self.spec.protocol.to_dict():
                raise ParameterError(
                    f"checkpoint {path} was recorded for protocol spec "
                    f"{session.spec.to_dict() if session.spec else None}, which "
                    f"does not match this service's protocol "
                    f"{self.spec.protocol.to_dict()}"
                )
            if session.n_rounds != self.spec.n_rounds:
                raise ParameterError(
                    f"checkpoint horizon ({session.n_rounds} rounds) does not "
                    f"match the spec horizon ({self.spec.n_rounds} rounds)"
                )
            sidecar = self.clock_state_path
            if sidecar is not None and sidecar.exists():
                try:
                    state = json.loads(sidecar.read_text(encoding="utf-8"))
                except json.JSONDecodeError as error:
                    raise ParameterError(
                        f"invalid round-clock sidecar {sidecar}: {error}"
                    ) from None
                clock = RoundClock.from_state(
                    state, time_source=self._time, on_seal=self._on_seal
                )
                if clock.n_rounds != self.spec.n_rounds:
                    raise ParameterError(
                        f"clock sidecar horizon ({clock.n_rounds} rounds) does "
                        f"not match the spec horizon ({self.spec.n_rounds})"
                    )
                return session, clock
            return session, self._fresh_clock()
        return (
            CollectorSession(self.spec.protocol, self.spec.n_rounds),
            self._fresh_clock(),
        )

    def _fresh_clock(self) -> RoundClock:
        return RoundClock(
            self.spec.n_rounds,
            window_seconds=self.spec.window_seconds,
            quorum=self.spec.quorum,
            late_policy=self.spec.late_policy,
            time_source=self._time,
            on_seal=self._on_seal,
        )

    def _on_seal(self, event: SealEvent) -> None:
        self._m_sealed.labels(reason=event.reason).inc()
        self._m_seal_latency.observe(max(event.duration, 0.0))
        self._m_current_round.set(self.clock.current_round)
        self._dirty = True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> Tuple[str, int]:
        """Bind the front door and start the consumer + ticker tasks."""
        self._queue = asyncio.Queue(self.spec.queue_capacity)
        self._http = AsyncHttpServer(
            self._handle, host=self.spec.host, port=self.spec.port
        )
        address = await self._http.start()
        self._consumer_task = asyncio.ensure_future(self._consume())
        self._ticker_task = asyncio.ensure_future(self._tick_loop())
        return address

    @property
    def address(self) -> Tuple[str, int]:
        if self._http is None:
            raise ParameterError("the ingest server is not started")
        return self._http.address

    async def stop(self) -> None:
        """Graceful shutdown: refuse new traffic, drain, checkpoint.

        The front door closes first, every already-queued batch is folded
        (nothing accepted is ever lost), then the final session + clock
        checkpoint is written.  The open window is *not* sealed: a restarted
        server resumes exactly where this one stopped.
        """
        if self._stopped:
            return
        self._stopped = True
        if self._http is not None:
            await self._http.close()
        if self._ticker_task is not None:
            self._ticker_task.cancel()
            try:
                await self._ticker_task
            except asyncio.CancelledError:
                pass
        if self._queue is not None:
            await self._queue.put(None)  # drain marker: folds FIFO, then exits
        if self._consumer_task is not None:
            await self._consumer_task
        self.checkpoint(force=True)

    async def run(
        self,
        *,
        run_seconds: Optional[float] = None,
        install_signal_handlers: bool = True,
        ready: Optional[Callable[[Tuple[str, int]], None]] = None,
    ) -> Tuple[str, int]:
        """Serve until SIGTERM/SIGINT (or ``run_seconds``), then drain.

        This is the ``repro-ldp ingest`` entry point: it owns the whole
        lifecycle and always exits through :meth:`stop` (drain + final
        checkpoint), including on signals.
        """
        address = await self.start()
        if ready is not None:
            ready(address)
        stop_event = asyncio.Event()
        loop = asyncio.get_event_loop()
        installed: List[signal.Signals] = []
        if install_signal_handlers:
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, stop_event.set)
                    installed.append(signum)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-unix platforms / nested loops
        try:
            if run_seconds is None:
                await stop_event.wait()
            else:
                try:
                    await asyncio.wait_for(stop_event.wait(), run_seconds)
                except asyncio.TimeoutError:
                    pass
        finally:
            for signum in installed:
                loop.remove_signal_handler(signum)
            await self.stop()
        return address

    # ------------------------------------------------------------------ #
    # Consumer + ticker
    # ------------------------------------------------------------------ #
    async def _consume(self) -> None:
        assert self._queue is not None
        while True:
            item = await self._queue.get()
            try:
                if item is None:
                    return
                self._fold(item)
            finally:
                self._queue.task_done()
                self._m_queue_depth.set(self._queue.qsize())

    def _fold(self, submission: _Submission) -> None:
        dropped_before = self.clock.late_dropped
        absorbed_before = self.clock.late_absorbed
        estimate = self.session.submit_counts(
            submission.round_index, submission.counts, submission.n_reports
        )
        dropped = self.clock.late_dropped - dropped_before
        absorbed = self.clock.late_absorbed - absorbed_before
        if dropped:
            self._m_late.labels(policy="drop").inc(dropped)
        if absorbed:
            self._m_late.labels(policy="absorb").inc(absorbed)
        if estimate is not None:
            self._m_accepted.inc(submission.n_reports)
            self._m_batches.inc()
            self._fold_times[estimate.round_index] = self._time()
            self._dirty = True

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self._tick_interval)
            self.clock.tick()
            self.checkpoint()
            if self._queue is not None:
                self._m_queue_depth.set(self._queue.qsize())

    def checkpoint(self, force: bool = False) -> bool:
        """Write the session checkpoint + clock sidecar if due (atomic).

        Periodic calls are rate-limited by
        ``spec.checkpoint_interval_seconds`` and skipped while nothing
        changed; ``force=True`` (shutdown) writes unconditionally when a
        checkpoint path is configured.
        """
        if self._checkpoint_path is None:
            return False
        now = self._time()
        if not force:
            if not self._dirty:
                return False
            if now - self._last_checkpoint < self.spec.checkpoint_interval_seconds:
                return False
        self.session.checkpoint(self._checkpoint_path)
        state = json.dumps(self.clock.state_dict()).encode("utf-8")
        sidecar = self.clock_state_path
        assert sidecar is not None
        atomic_write_bytes(sidecar, lambda handle: handle.write(state))
        self._m_checkpoints.inc()
        self._dirty = False
        self._last_checkpoint = now
        return True

    # ------------------------------------------------------------------ #
    # HTTP routing
    # ------------------------------------------------------------------ #
    @staticmethod
    def _route_label(path: str) -> str:
        if path.startswith("/v1/estimate/"):
            return "/v1/estimate"
        if path in ("/healthz", "/metrics", "/v1/rounds", "/v1/rounds/advance", "/v1/reports"):
            return path
        return "other"

    async def _handle(self, request: HttpRequest) -> HttpResponse:
        route = self._route_label(request.path)
        try:
            response = await self._dispatch(request)
        except HttpError as error:
            self._m_http.labels(route=route, status=str(error.status)).inc()
            raise
        self._m_http.labels(route=route, status=str(response.status)).inc()
        return response

    async def _dispatch(self, request: HttpRequest) -> HttpResponse:
        method, path = request.method, request.path
        if path == "/healthz":
            self._require_method(method, "GET")
            return HttpResponse.json(
                {
                    "status": "ok",
                    "name": self.spec.name,
                    "protocol": self.session.protocol.name,
                    "current_round": self.clock.current_round,
                    "finished": self.clock.finished,
                }
            )
        if path == "/metrics":
            self._require_method(method, "GET")
            return HttpResponse.text(self.metrics.render())
        if path == "/v1/rounds":
            self._require_method(method, "GET")
            return HttpResponse.json(self._rounds_payload())
        if path == "/v1/rounds/advance":
            self._require_method(method, "POST")
            try:
                event = self.clock.advance("explicit")
            except ParameterError as error:
                raise HttpError(400, str(error)) from None
            self._dirty = True
            return HttpResponse.json(
                {
                    "sealed_round": event.round_index,
                    "reason": event.reason,
                    "n_reports": event.n_reports,
                    "current_round": self.clock.current_round,
                }
            )
        if path == "/v1/reports":
            self._require_method(method, "POST")
            return self._submit(request)
        if path.startswith("/v1/estimate/"):
            self._require_method(method, "GET")
            return self._estimate(path[len("/v1/estimate/") :])
        raise HttpError(404, f"no such endpoint: {path}")

    @staticmethod
    def _require_method(method: str, expected: str) -> None:
        if method != expected:
            raise HttpError(405, f"use {expected} for this endpoint, not {method}")

    def _rounds_payload(self) -> Dict[str, object]:
        return {
            "name": self.spec.name,
            "protocol": self.session.protocol.name,
            "n_rounds": self.spec.n_rounds,
            "current_round": self.clock.current_round,
            "finished": self.clock.finished,
            "window_reports": self.clock.window_reports,
            "reports_per_round": self.session.reports_per_round.tolist(),
            "late_dropped": self.clock.late_dropped,
            "late_absorbed": self.clock.late_absorbed,
            "early_reports": self.clock.early_reports,
            "queue_depth": self._queue.qsize() if self._queue is not None else 0,
            "seals": [
                {
                    "round_index": event.round_index,
                    "reason": event.reason,
                    "n_reports": event.n_reports,
                    "duration": event.duration,
                }
                for event in self.clock.seals
            ],
        }

    def _estimate(self, tail: str) -> HttpResponse:
        try:
            round_index = int(tail)
        except ValueError:
            raise HttpError(400, f"round index must be an integer, got {tail!r}") from None
        try:
            estimate = self.session.estimate(round_index)
        except ParameterError as error:
            raise HttpError(400, str(error)) from None
        except AggregationError as error:
            raise HttpError(404, str(error)) from None
        age: Optional[float] = None
        folded_at = self._fold_times.get(round_index)
        if folded_at is not None:
            age = max(self._time() - folded_at, 0.0)
            self._m_estimate_age.labels(round=str(round_index)).set(age)
        return HttpResponse.json(
            {
                "round": round_index,
                "n_reports": estimate.n_reports,
                "frequencies": estimate.frequencies.tolist(),
                "sealed": self.clock.is_sealed(round_index),
                "age_seconds": age,
            }
        )

    # ------------------------------------------------------------------ #
    # Submission path
    # ------------------------------------------------------------------ #
    def _reject(self, reason: str, status: int, message: str) -> HttpError:
        self._m_rejected.labels(reason=reason).inc()
        return HttpError(status, message)

    def _submit(self, request: HttpRequest) -> HttpResponse:
        body = request.body
        if self._authenticator is not None:
            try:
                body = self._authenticator.verify(body)
            except AuthenticationError as error:
                raise self._reject("auth", 401, str(error))
        try:
            payload = json.loads(body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise self._reject(
                "malformed", 400, f"submission body is not valid JSON: {error}"
            )
        if not isinstance(payload, dict) or "round" not in payload:
            raise self._reject(
                "malformed", 400, "a submission is an object with a 'round' field"
            )
        try:
            round_index = self.session._check_round(payload["round"])
            counts, n_reports = self._decode_submission(payload)
        except ParameterError as error:
            raise self._reject("malformed", 400, str(error))

        assert self._queue is not None, "the ingest server is not started"
        submission = _Submission(
            round_index=round_index, counts=counts, n_reports=n_reports
        )
        try:
            self._queue.put_nowait(submission)
        except asyncio.QueueFull:
            self._m_rejected.labels(reason="backpressure").inc()
            return HttpResponse.error(
                429,
                f"the ingest queue ({self.spec.queue_capacity} batches) is "
                f"full; retry after {self.spec.retry_after_seconds:g}s",
                headers=(("Retry-After", f"{self.spec.retry_after_seconds:g}"),),
            )
        self._m_queue_depth.set(self._queue.qsize())
        return HttpResponse.json(
            {"status": "queued", "round": round_index, "n_reports": n_reports},
            status=202,
        )

    def _decode_submission(self, payload: Dict) -> Tuple[np.ndarray, int]:
        """Fold one submission to ``(support_counts, n_reports)`` or raise."""
        m = self.session.protocol.estimation_domain_size
        has_reports = "reports" in payload
        has_counts = "counts" in payload
        if has_reports == has_counts:
            raise ParameterError(
                "a submission carries exactly one of 'reports' or 'counts'"
            )
        if has_reports:
            reports = decode_reports(self.session.protocol, payload["reports"])
            return self.session._fold_reports(reports), len(reports)
        raw = payload["counts"]
        try:
            counts = np.asarray(raw, dtype=np.float64)
        except (TypeError, ValueError) as error:
            raise ParameterError(f"counts are not numeric: {error}") from None
        if counts.shape != (m,):
            raise ParameterError(
                f"expected counts of shape ({m},), got {counts.shape}"
            )
        if not np.all(np.isfinite(counts)):
            raise ParameterError("counts must be finite")
        n_reports = payload.get("n_reports")
        if (
            isinstance(n_reports, bool)
            or not isinstance(n_reports, int)
            or n_reports < 1
        ):
            raise ParameterError(
                f"a counts submission needs an integer n_reports >= 1, "
                f"got {n_reports!r}"
            )
        if float(counts.sum()) > n_reports * max(m, 1) + 0.5:
            raise ParameterError(
                f"counts sum to {counts.sum():g}, impossible for "
                f"{n_reports} reports over domain {m}"
            )
        return counts, n_reports

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IngestServer(name={self.spec.name!r}, "
            f"protocol={self.session.protocol.name!r}, "
            f"round={self.clock.current_round}/{self.spec.n_rounds})"
        )

