"""Server-side collection service layer.

:class:`~repro.service.session.CollectorSession` is the streaming,
service-style entry point of the library: where the batch harnesses of
:mod:`repro.simulation` drive a whole dataset through an engine, a session
accepts report batches incrementally — out of round order, from many
producers — exposes running debiased estimates per round, and can
checkpoint / restore its server-side state.
"""

from .session import CollectorSession

__all__ = ["CollectorSession"]
