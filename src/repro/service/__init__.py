"""Server-side collection service layer.

:class:`~repro.service.session.CollectorSession` is the streaming,
service-style entry point of the library: where the batch harnesses of
:mod:`repro.simulation` drive a whole dataset through an engine, a session
accepts report batches incrementally — out of round order, from many
producers — exposes running debiased estimates per round, and can
checkpoint / restore its server-side state.

On top of the session sits the *live ingestion service*
(:mod:`repro.service.ingest`): an asyncio HTTP/1.1 front door
(:mod:`repro.service.http`) with batched report submission, backpressure and
HMAC authentication; a :class:`~repro.service.clock.RoundClock` that owns
round windowing (seal on wall-clock timeout, quorum or explicit advance,
with a configurable late-report policy); a Prometheus-text
:class:`~repro.obs.metrics.MetricsRegistry` (from the repo-wide
observability core, :mod:`repro.obs`); and the seeded async load generator
of :mod:`repro.service.loadgen`.

Submodules are imported lazily (PEP 562) so that dependency-light pieces —
in particular :mod:`repro.service.clock`, which the lockstep drivers of
:mod:`repro.simulation.runner` also use — can be loaded without pulling in
the protocol registry or the asyncio stack.
"""

from importlib import import_module
from typing import TYPE_CHECKING

_EXPORTS = {
    # streaming session façade
    "CollectorSession": ".session",
    # round windowing
    "RoundClock": ".clock",
    "SealEvent": ".clock",
    # metrics surface (moved to repro.obs.metrics; re-exported for
    # compatibility without the repro.service.metrics deprecation warning)
    "Counter": "repro.obs.metrics",
    "Gauge": "repro.obs.metrics",
    "Histogram": "repro.obs.metrics",
    "MetricsRegistry": "repro.obs.metrics",
    # HTTP layer
    "AsyncHttpServer": ".http",
    "HttpClient": ".http",
    "HttpError": ".http",
    "HttpRequest": ".http",
    "HttpResponse": ".http",
    # live ingestion service
    "IngestServer": ".ingest",
    "decode_reports": ".ingest",
    "encode_reports": ".ingest",
    "wire_reports_supported": ".ingest",
    # load generation
    "LoadgenResult": ".loadgen",
    "generate_round_reports": ".loadgen",
    "run_loadgen": ".loadgen",
}

__all__ = sorted(_EXPORTS)

if TYPE_CHECKING:  # pragma: no cover - static imports for type checkers
    from .clock import RoundClock, SealEvent
    from .http import AsyncHttpServer, HttpClient, HttpError, HttpRequest, HttpResponse
    from .ingest import IngestServer, decode_reports, encode_reports, wire_reports_supported
    from .loadgen import LoadgenResult, generate_round_reports, run_loadgen
    from ..obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
    from .session import CollectorSession


def __getattr__(name):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    return getattr(import_module(module, __name__), name)


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
