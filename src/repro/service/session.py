"""Streaming collection sessions: the server façade of the library.

A :class:`CollectorSession` is the service-style counterpart of the batch
:func:`repro.simulation.runner.simulate_protocol` path.  Where the batch
runner owns the whole dataset and drives the rounds in order, a session is
fed — it accepts report batches **incrementally and out of round order**
(heavy traffic never arrives sorted), keeps only the per-round support
counts and report tallies (``O(n_rounds * m)`` state, independent of the
population size), and at any moment exposes the running debiased estimate of
every round observed so far.

The session builds on the sink layer: support counts are folded exactly like
:class:`~repro.simulation.sinks.SupportCountSink` does (debiasing is linear
per round, so late debiasing is bit-identical), whole-run shard partials are
merged through the associative :class:`~repro.simulation.sinks.ShardedSink`
contract via :meth:`CollectorSession.absorb_summary`, and estimates come
from :func:`repro.simulation.sinks.estimate_support_counts`.  Unlike the
sinks, the per-round sample size is the number of reports *actually
received* for that round, so estimates are unbiased even while a round is
only partially collected.

Sessions created from a :class:`~repro.specs.ProtocolSpec` can
:meth:`~CollectorSession.checkpoint` their state to a JSON file — or, for
high-frequency checkpointing, to a binary ``.npz`` archive (pass a path
ending in ``.npz``), which skips the ``O(n_rounds × m)`` floats-as-text
round trip — and be :meth:`~CollectorSession.restore`\\ d later (or
elsewhere): the checkpoint carries the spec, so the restoring process
rebuilds the protocol through :func:`repro.registry.build_protocol` without
any pickled code.  ``restore`` auto-detects the format from the file
content, and both formats are written atomically (temp + rename).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Sequence, Union

import numpy as np

from .._atomicio import atomic_write_bytes
from .._validation import require_int_at_least
from ..exceptions import AggregationError, EncodingError, ParameterError
from ..longitudinal.base import LongitudinalProtocol, RoundEstimate
from ..registry import build_protocol
from ..simulation.sinks import ShardSummary, estimate_support_counts
from ..specs import ProtocolSpec
from .clock import RoundClock

__all__ = ["CollectorSession"]

_CHECKPOINT_FORMAT = 1


class CollectorSession:
    """Incremental server-side aggregation of one longitudinal collection.

    Parameters
    ----------
    protocol:
        A :class:`~repro.specs.ProtocolSpec` (required for checkpointing) or
        a live protocol object.
    n_rounds:
        Length of the collection horizon.

    Examples
    --------
    >>> from repro.specs import ProtocolSpec
    >>> from repro.service import CollectorSession
    >>> session = CollectorSession(
    ...     ProtocolSpec(name="L-OSUE", k=16, eps_inf=2.0, eps_1=1.0), n_rounds=3
    ... )
    >>> client = session.protocol.create_client(rng=0)
    >>> estimate = session.submit_reports(1, [client.report(3, rng=1)])
    >>> estimate.round_index, estimate.n_reports
    (1, 1)
    """

    def __init__(
        self,
        protocol: Union[ProtocolSpec, LongitudinalProtocol],
        n_rounds: int,
        clock: Optional[RoundClock] = None,
    ) -> None:
        if isinstance(protocol, ProtocolSpec):
            self.spec: Optional[ProtocolSpec] = protocol
            self.protocol = build_protocol(protocol)
        else:
            self.spec = None
            self.protocol = protocol
        self.n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        m = self.protocol.estimation_domain_size
        self._counts = np.zeros((self.n_rounds, m), dtype=np.float64)
        self._n_reports = np.zeros(self.n_rounds, dtype=np.int64)
        self.clock: Optional[RoundClock] = None
        if clock is not None:
            self.attach_clock(clock)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def attach_clock(self, clock: RoundClock) -> None:
        """Give a :class:`~repro.service.clock.RoundClock` ownership of
        round windowing.

        With a clock attached, every submission is routed through
        :meth:`RoundClock.route` first: reports for an already-sealed round
        follow the clock's late policy (dropped — ``submit_*`` returns
        ``None`` — or absorbed into the open window), and on-time batches
        may seal their window by quorum.  Without a clock the session keeps
        its historical behavior: any round accepts reports at any time.
        """
        if not isinstance(clock, RoundClock):
            raise ParameterError(
                f"clock must be a RoundClock, got {type(clock).__name__}"
            )
        if clock.n_rounds != self.n_rounds:
            raise ParameterError(
                f"clock horizon ({clock.n_rounds} rounds) does not match the "
                f"session horizon ({self.n_rounds} rounds)"
            )
        self.clock = clock

    def _check_round(self, round_index: int) -> int:
        if isinstance(round_index, bool) or not isinstance(
            round_index, (int, np.integer)
        ):
            raise ParameterError(
                f"round index must be an integer, got {type(round_index).__name__}"
            )
        round_index = int(round_index)
        if not 0 <= round_index < self.n_rounds:
            raise ParameterError(
                f"round index must lie in [0, {self.n_rounds}), got {round_index}"
            )
        return round_index

    def _route(self, round_index: int, n_reports: int) -> Optional[int]:
        round_index = self._check_round(round_index)
        if self.clock is None:
            return round_index
        return self.clock.route(round_index, n_reports)

    def _fold_reports(self, reports: Sequence) -> np.ndarray:
        """Support counts of one batch, failing fast on malformed reports.

        Shape and domain mismatches historically surfaced as downstream
        numpy errors (broadcast failures, negative ``bincount`` inputs);
        they are translated into :class:`~repro.exceptions.ParameterError`
        naming the offending shape instead.
        """
        m = self.protocol.estimation_domain_size
        try:
            counts = np.asarray(
                self.protocol.support_counts(reports), dtype=np.float64
            )
        except (EncodingError, ValueError, TypeError) as error:
            raise ParameterError(
                f"report batch does not fit protocol {self.protocol.name!r} "
                f"(estimation domain {m}): {error}"
            ) from None
        if counts.shape != (m,):
            raise ParameterError(
                f"report batch folded to counts of shape {counts.shape}, "
                f"expected ({m},) — do the reports match the protocol spec?"
            )
        return counts

    def submit_reports(
        self, round_index: int, reports: Sequence
    ) -> Optional[RoundEstimate]:
        """Fold a batch of client reports for ``round_index``.

        Batches may arrive in any order and a round may receive any number
        of batches.  Returns the running estimate of the round the batch
        was folded into — which is a *later* round than ``round_index`` when
        an attached clock absorbs a late batch, or ``None`` when the clock's
        ``drop`` policy discarded it.
        """
        reports = list(reports)
        if not reports:
            raise ParameterError(
                f"cannot submit an empty report batch (round {round_index})"
            )
        counts = self._fold_reports(reports)
        target = self._route(round_index, len(reports))
        if target is None:
            return None
        self._counts[target] += counts
        self._n_reports[target] += len(reports)
        return self.estimate(target)

    def submit_counts(
        self, round_index: int, counts: np.ndarray, n_reports: int
    ) -> Optional[RoundEstimate]:
        """Fold pre-aggregated support counts (e.g. from an edge aggregator).

        This is the fast ingestion path for producers that already hold
        population-level counts — a vectorized engine round or a remote
        pre-aggregation tier.  Like :meth:`submit_reports`, an attached
        clock may redirect the batch (late-absorb) or drop it (``None``).
        """
        n_reports = require_int_at_least(n_reports, 1, "n_reports")
        counts = np.asarray(counts, dtype=np.float64)
        m = self.protocol.estimation_domain_size
        if counts.shape != (m,):
            raise ParameterError(
                f"expected counts of shape ({m},), got {counts.shape}"
            )
        target = self._route(round_index, n_reports)
        if target is None:
            return None
        self._counts[target] += counts
        self._n_reports[target] += n_reports
        return self.estimate(target)

    def absorb_summary(self, summary: ShardSummary) -> None:
        """Merge a whole-run shard partial (``ShardedSink`` contract).

        The summary's ``(n_rounds, m)`` counts are added round by round and
        its users are credited to every round — the same associative, exact
        integer-float summation as :meth:`repro.simulation.sinks.ShardedSink.absorb`,
        so shards may be absorbed in any grouping.
        """
        counts = np.asarray(summary.support_counts, dtype=np.float64)
        if counts.shape != self._counts.shape:
            raise AggregationError(
                f"shard count shape {counts.shape} does not match "
                f"{self._counts.shape}"
            )
        self._counts += counts
        self._n_reports += summary.n_users

    # ------------------------------------------------------------------ #
    # Running estimates
    # ------------------------------------------------------------------ #
    @property
    def reports_per_round(self) -> np.ndarray:
        """Reports received so far, per round (copy)."""
        return self._n_reports.copy()

    @property
    def total_reports(self) -> int:
        """Total reports received across all rounds."""
        return int(self._n_reports.sum())

    @property
    def rounds_observed(self) -> np.ndarray:
        """Indices of rounds with at least one report."""
        return np.flatnonzero(self._n_reports > 0)

    @property
    def is_complete(self) -> bool:
        """Whether every round has received at least one report."""
        return bool((self._n_reports > 0).all())

    def support_counts(self, round_index: int) -> np.ndarray:
        """Raw accumulated support counts of one round (copy)."""
        return self._counts[self._check_round(round_index)].copy()

    def estimate(self, round_index: int) -> RoundEstimate:
        """Running debiased estimate of one round.

        Uses the number of reports received *so far* as the sample size, so
        the estimate is unbiased for the sub-population that has reported.
        """
        round_index = self._check_round(round_index)
        n = int(self._n_reports[round_index])
        if n <= 0:
            raise AggregationError(
                f"round {round_index} has not received any reports yet"
            )
        frequencies = estimate_support_counts(
            self.protocol, self._counts[round_index], n
        )
        return RoundEstimate(
            round_index=round_index, frequencies=frequencies, n_reports=n
        )

    def estimates(self) -> np.ndarray:
        """Running ``(n_rounds, m)`` estimate matrix.

        Rounds without any report are ``NaN`` rows — the caller can see at a
        glance which part of the horizon is still missing.
        """
        matrix = np.full_like(self._counts, np.nan)
        for t in self.rounds_observed:
            matrix[t] = estimate_support_counts(
                self.protocol, self._counts[t], int(self._n_reports[t])
            )
        return matrix

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def checkpoint(self, path: Union[str, Path]) -> Path:
        """Persist the session state (JSON, or binary ``.npz``).

        Requires a spec-built session: the checkpoint stores the declarative
        spec (never pickled code), the accumulated counts and the per-round
        report tallies, so any process with this library can
        :meth:`restore` and continue the collection.

        Paths ending in ``.npz`` use numpy's binary archive format — the
        fast path for high-frequency checkpointing, avoiding the
        ``O(n_rounds × m)`` floats-as-text serialization of the JSON form.
        Both formats are written atomically (same-directory temp + rename),
        so a process killed mid-checkpoint leaves the previous complete
        checkpoint intact.
        """
        if self.spec is None:
            raise ParameterError(
                "only sessions built from a ProtocolSpec can be checkpointed; "
                "construct the session with a spec from repro.specs"
            )
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)

        def write(handle) -> None:
            if path.suffix == ".npz":
                np.savez_compressed(
                    handle,
                    format=np.int64(_CHECKPOINT_FORMAT),
                    spec=np.array(self.spec.to_json()),
                    n_rounds=np.int64(self.n_rounds),
                    counts=self._counts,
                    n_reports=self._n_reports,
                )
            else:
                payload: Dict[str, object] = {
                    "format": _CHECKPOINT_FORMAT,
                    "spec": self.spec.to_dict(),
                    "n_rounds": self.n_rounds,
                    "counts": self._counts.tolist(),
                    "n_reports": self._n_reports.tolist(),
                }
                handle.write(json.dumps(payload).encode("utf-8"))

        return atomic_write_bytes(path, write)

    @classmethod
    def restore(cls, path: Union[str, Path]) -> "CollectorSession":
        """Rebuild a session from a :meth:`checkpoint` file.

        The format is auto-detected from the file content (``.npz`` archives
        are zip files and start with the ``PK`` magic; everything else is
        parsed as JSON), so checkpoints can be renamed freely.
        """
        path = Path(path)
        if not path.exists():
            raise ParameterError(f"no session checkpoint found at {path}")
        with path.open("rb") as handle:
            magic = handle.read(2)
        if magic == b"PK":
            return cls._restore_npz(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise ParameterError(
                f"invalid session checkpoint {path}: {error}"
            ) from None
        if payload.get("format") != _CHECKPOINT_FORMAT:
            raise ParameterError(
                f"unsupported checkpoint format {payload.get('format')!r} "
                f"(expected {_CHECKPOINT_FORMAT})"
            )
        return cls._rebuild(
            ProtocolSpec.from_dict(payload["spec"]),
            int(payload["n_rounds"]),
            np.asarray(payload["counts"], dtype=np.float64),
            np.asarray(payload["n_reports"], dtype=np.int64),
        )

    @classmethod
    def _restore_npz(cls, path: Path) -> "CollectorSession":
        try:
            with np.load(path, allow_pickle=False) as archive:
                if int(archive["format"]) != _CHECKPOINT_FORMAT:
                    raise ParameterError(
                        f"unsupported checkpoint format {int(archive['format'])} "
                        f"(expected {_CHECKPOINT_FORMAT})"
                    )
                spec = ProtocolSpec.from_json(str(archive["spec"][()]))
                n_rounds = int(archive["n_rounds"])
                counts = np.asarray(archive["counts"], dtype=np.float64)
                n_reports = np.asarray(archive["n_reports"], dtype=np.int64)
        except ParameterError:
            raise
        except Exception as error:  # zipfile/KeyError from np.load
            raise ParameterError(
                f"invalid session checkpoint {path}: {error}"
            ) from None
        return cls._rebuild(spec, n_rounds, counts, n_reports)

    @classmethod
    def _rebuild(
        cls,
        spec: ProtocolSpec,
        n_rounds: int,
        counts: np.ndarray,
        n_reports: np.ndarray,
    ) -> "CollectorSession":
        session = cls(spec, n_rounds=n_rounds)
        if counts.shape != session._counts.shape or n_reports.shape != (
            session.n_rounds,
        ):
            raise ParameterError(
                f"checkpoint state shape {counts.shape} does not match the "
                f"spec's estimation domain {session._counts.shape}"
            )
        session._counts = counts
        session._n_reports = n_reports
        return session

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CollectorSession(protocol={self.protocol.name!r}, "
            f"n_rounds={self.n_rounds}, total_reports={self.total_reports})"
        )
