"""Minimal asyncio HTTP/1.1 server and client (stdlib only).

The live ingestion service needs an HTTP front door but the repository rule
is *no new dependencies*, so this module implements the small slice of
HTTP/1.1 the service actually uses on top of ``asyncio`` streams:

* request line + headers + ``Content-Length`` bodies (no chunked encoding,
  no pipelining beyond sequential keep-alive),
* keep-alive connections with an idle timeout,
* bounded header and body sizes (oversized bodies answer ``413`` before the
  payload is read into memory),
* a handler contract of ``async (HttpRequest) -> HttpResponse`` — routing
  and semantics live in :mod:`repro.service.ingest`, transport mechanics
  live here.

:class:`HttpClient` is the matching keep-alive client used by the load
generator and the tests; it speaks to any HTTP/1.1 server but only needs
the same subset.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Awaitable, Callable, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

from ..exceptions import ReproError
from ..obs.metrics import MetricsRegistry

__all__ = ["HttpError", "HttpRequest", "HttpResponse", "AsyncHttpServer", "HttpClient"]

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}

_MAX_LINE_BYTES = 16 * 1024
_MAX_HEADERS = 64


class HttpError(ReproError):
    """Malformed traffic or protocol-level failure on the HTTP layer."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> object:
        """The body parsed as JSON (raises :class:`HttpError` 400 if not)."""
        try:
            return json.loads(self.body.decode("utf-8"))
        except (json.JSONDecodeError, UnicodeDecodeError) as error:
            raise HttpError(400, f"request body is not valid JSON: {error}") from None


@dataclass
class HttpResponse:
    """One response; ``Content-Length`` and framing are added by the server."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Tuple[Tuple[str, str], ...] = ()

    @classmethod
    def json(
        cls,
        payload: object,
        status: int = 200,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "HttpResponse":
        body = (json.dumps(payload) + "\n").encode("utf-8")
        return cls(status=status, body=body, headers=headers)

    @classmethod
    def text(
        cls,
        payload: str,
        status: int = 200,
        content_type: str = "text/plain; version=0.0.4; charset=utf-8",
    ) -> "HttpResponse":
        return cls(
            status=status, body=payload.encode("utf-8"), content_type=content_type
        )

    @classmethod
    def error(
        cls,
        status: int,
        message: str,
        headers: Tuple[Tuple[str, str], ...] = (),
    ) -> "HttpResponse":
        return cls.json({"error": message}, status=status, headers=headers)

    def parsed_json(self) -> object:
        """Client-side helper: the body parsed as JSON."""
        return json.loads(self.body.decode("utf-8"))

    def header(self, name: str, default: Optional[str] = None) -> Optional[str]:
        for key, value in self.headers:
            if key.lower() == name.lower():
                return value
        return default


def _render_response(response: HttpResponse, keep_alive: bool) -> bytes:
    reason = _REASONS.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in response.headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


async def _read_limited_line(reader: asyncio.StreamReader, timeout: float) -> bytes:
    line = await asyncio.wait_for(reader.readline(), timeout)
    if len(line) > _MAX_LINE_BYTES:
        raise HttpError(400, "header line too long")
    return line


class AsyncHttpServer:
    """An asyncio HTTP/1.1 server delegating to one async handler.

    The handler receives an :class:`HttpRequest` and returns an
    :class:`HttpResponse`; raising :class:`HttpError` maps to its status,
    any other exception answers ``500`` (the connection survives either).
    """

    def __init__(
        self,
        handler: Callable[[HttpRequest], Awaitable[HttpResponse]],
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_body_bytes: int = 8 * 1024 * 1024,
        keepalive_timeout: float = 30.0,
        metrics: Optional["MetricsRegistry"] = None,
    ) -> None:
        self._handler = handler
        self._host = host
        self._port = port
        self._max_body_bytes = int(max_body_bytes)
        self._keepalive_timeout = float(keepalive_timeout)
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Tuple[str, int]] = None
        # Optional transport-level instrumentation: per-status request totals
        # and handler latency.  Routing-aware metrics stay in the handlers
        # (see repro.service.ingest); this layer only knows status codes.
        self._requests_total = self._request_seconds = None
        if metrics is not None:
            self._requests_total = metrics.counter(
                "repro_http_server_requests_total",
                "HTTP requests answered, by method and status.",
            )
            self._request_seconds = metrics.histogram(
                "repro_http_server_request_seconds",
                "Handler latency of answered HTTP requests.",
            )

    @property
    def address(self) -> Tuple[str, int]:
        if self._address is None:
            raise ReproError("the HTTP server is not started")
        return self._address

    async def start(self) -> Tuple[str, int]:
        self._server = await asyncio.start_server(
            self._serve_connection, self._host, self._port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])
        return self._address

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except asyncio.TimeoutError:
                    break  # idle keep-alive connection
                except HttpError as error:
                    writer.write(
                        _render_response(
                            HttpResponse.error(error.status, error.message),
                            keep_alive=False,
                        )
                    )
                    await writer.drain()
                    break
                if request is None:
                    break  # clean EOF between requests
                handler_started = time.perf_counter()
                try:
                    response = await self._handler(request)
                except HttpError as error:
                    response = HttpResponse.error(error.status, error.message)
                except Exception as error:  # noqa: BLE001 - keep the server up
                    response = HttpResponse.error(
                        500, f"internal error: {type(error).__name__}: {error}"
                    )
                if self._requests_total is not None:
                    self._requests_total.labels(
                        method=request.method, status=str(response.status)
                    ).inc()
                    self._request_seconds.observe(
                        time.perf_counter() - handler_started
                    )
                keep_alive = (
                    request.headers.get("connection", "keep-alive").lower()
                    != "close"
                )
                writer.write(_render_response(response, keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[HttpRequest]:
        line = await _read_limited_line(reader, self._keepalive_timeout)
        if not line:
            return None
        parts = line.decode("latin-1").rstrip("\r\n").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise HttpError(400, f"malformed request line: {line!r}")
        method, target, _version = parts
        split = urlsplit(target)
        path = unquote(split.path)
        query = dict(parse_qsl(split.query))

        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADERS + 1):
            header_line = await _read_limited_line(reader, self._keepalive_timeout)
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, separator, value = header_line.decode("latin-1").partition(":")
            if not separator:
                raise HttpError(400, f"malformed header line: {header_line!r}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise HttpError(400, "too many request headers")

        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise HttpError(400, "invalid Content-Length header") from None
            if length < 0:
                raise HttpError(400, "invalid Content-Length header")
            if length > self._max_body_bytes:
                raise HttpError(
                    413,
                    f"request body of {length} bytes exceeds the "
                    f"{self._max_body_bytes}-byte limit",
                )
            if length:
                body = await asyncio.wait_for(
                    reader.readexactly(length), self._keepalive_timeout
                )
        return HttpRequest(
            method=method.upper(), path=path, query=query, headers=headers, body=body
        )


@dataclass
class _ClientConnection:
    reader: asyncio.StreamReader
    writer: asyncio.StreamWriter


class HttpClient:
    """A keep-alive HTTP/1.1 client for one ``host:port`` endpoint.

    Used by the load generator, the quickstart example and the tests.  One
    TCP connection is reused across requests; a dropped connection is
    re-established transparently on the next request.
    """

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self.host = host
        self.port = int(port)
        self.timeout = float(timeout)
        self._connection: Optional[_ClientConnection] = None

    async def _connect(self) -> _ClientConnection:
        if self._connection is None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port), self.timeout
            )
            self._connection = _ClientConnection(reader, writer)
        return self._connection

    async def close(self) -> None:
        if self._connection is not None:
            self._connection.writer.close()
            try:
                await self._connection.writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover - platform noise
                pass
            self._connection = None

    async def request(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Tuple[Tuple[str, str], ...] = (),
        content_type: str = "application/json",
    ) -> HttpResponse:
        """Issue one request; retries once on a stale pooled connection."""
        try:
            return await self._request_once(method, path, body, headers, content_type)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await self.close()
            return await self._request_once(method, path, body, headers, content_type)

    async def _request_once(
        self,
        method: str,
        path: str,
        body: bytes,
        headers: Tuple[Tuple[str, str], ...],
        content_type: str,
    ) -> HttpResponse:
        connection = await self._connect()
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers)
        connection.writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        )
        await connection.writer.drain()

        status_line = await asyncio.wait_for(
            connection.reader.readline(), self.timeout
        )
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(" ", 2)
        if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
            raise HttpError(502, f"malformed status line: {status_line!r}")
        status = int(parts[1])

        response_headers = []
        content_length = 0
        keep_alive = True
        response_type = "application/octet-stream"
        while True:
            header_line = await asyncio.wait_for(
                connection.reader.readline(), self.timeout
            )
            if header_line in (b"\r\n", b"\n", b""):
                break
            name, _, value = header_line.decode("latin-1").partition(":")
            name, value = name.strip(), value.strip()
            response_headers.append((name, value))
            lowered = name.lower()
            if lowered == "content-length":
                content_length = int(value)
            elif lowered == "connection" and value.lower() == "close":
                keep_alive = False
            elif lowered == "content-type":
                response_type = value

        payload = b""
        if content_length:
            payload = await asyncio.wait_for(
                connection.reader.readexactly(content_length), self.timeout
            )
        if not keep_alive:
            await self.close()
        return HttpResponse(
            status=status,
            body=payload,
            content_type=response_type,
            headers=tuple(response_headers),
        )
