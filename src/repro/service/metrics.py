"""Deprecated location: the metrics core moved to :mod:`repro.obs.metrics`.

This shim keeps ``repro.service.metrics`` importable (the PR 7 home of the
registry) and re-exports everything from the new observability package.  A
single :class:`DeprecationWarning` is emitted on first import; update your
imports to ``repro.obs.metrics``.
"""

from __future__ import annotations

import warnings

from ..obs.metrics import (  # noqa: F401 - re-exported for compatibility
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    LabelKey,
    MetricsRegistry,
    default_registry,
    set_default_registry,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

warnings.warn(
    "repro.service.metrics moved to repro.obs.metrics; this alias will be "
    "removed in a future release",
    DeprecationWarning,
    stacklevel=2,
)
