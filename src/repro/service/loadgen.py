"""Seeded load generator for the live ingestion service.

``repro-ldp loadgen`` drives an :class:`~repro.service.ingest.IngestServer`
the way a fleet of clients would: a seeded population of longitudinal
protocol clients evolves its values over the horizon, reports are batched
and POSTed to ``/v1/reports`` with Poisson-ish staggered arrivals, ``429``
backpressure answers are honored (sleep ``Retry-After``, retry), and
submissions are HMAC-signed when the server requires it.

Everything is deterministic given ``seed``: the report material comes from
:func:`generate_round_reports`, which derives one
:class:`numpy.random.SeedSequence` child per user (plus one for the value
evolution), so the *same seed* produces the *same reports* whether they are
fed to the HTTP service or straight into a batch
:class:`~repro.service.session.CollectorSession` — the bit-identity bar the
end-to-end tests hold the service to.  Arrival jitter uses its own derived
stream, so pacing never perturbs the privacy randomness.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

import numpy as np

from ..distributed.auth import PayloadAuthenticator, authenticator_from_env
from ..exceptions import ParameterError
from ..longitudinal.base import LongitudinalProtocol
from ..registry import build_protocol
from ..specs import ProtocolSpec
from .._validation import require_int_at_least
from .http import HttpClient
from .ingest import encode_reports, wire_reports_supported

__all__ = ["LoadgenResult", "generate_round_reports", "run_loadgen"]

SUBMIT_MODES = ("reports", "counts")


def _as_protocol(
    protocol: Union[ProtocolSpec, LongitudinalProtocol]
) -> LongitudinalProtocol:
    if isinstance(protocol, ProtocolSpec):
        return build_protocol(protocol)
    return protocol


def generate_round_reports(
    protocol: Union[ProtocolSpec, LongitudinalProtocol],
    n_rounds: int,
    n_users: int,
    seed: int,
) -> List[List]:
    """Deterministic per-round report batches for a seeded population.

    One client is created per user from its own spawned
    :class:`~numpy.random.SeedSequence` child; user values follow a lazy
    random walk over the domain (stay with probability 0.8, else resample
    uniformly), the same longitudinal workload shape the batch simulations
    use.  Returns ``reports[t][u]`` — round-major, user-minor.
    """
    protocol = _as_protocol(protocol)
    n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
    n_users = require_int_at_least(n_users, 1, "n_users")
    root = np.random.SeedSequence(int(seed))
    children = root.spawn(n_users + 1)
    values_rng = np.random.default_rng(children[0])
    client_rngs = [np.random.default_rng(child) for child in children[1:]]
    clients = [
        protocol.create_client(rng=rng) for rng in client_rngs
    ]
    k = protocol.k
    values = values_rng.integers(0, k, size=n_users)
    rounds: List[List] = []
    for _ in range(n_rounds):
        batch = [
            client.report(int(value), rng=rng)
            for client, rng, value in zip(clients, client_rngs, values)
        ]
        rounds.append(batch)
        resample = values_rng.random(n_users) >= 0.8
        values = np.where(
            resample, values_rng.integers(0, k, size=n_users), values
        )
    return rounds


@dataclass
class LoadgenResult:
    """Outcome of one load-generation run."""

    n_users: int
    n_rounds: int
    submitted_reports: int = 0
    accepted_reports: int = 0
    rejected_batches: int = 0
    retried_429: int = 0
    statuses: Dict[int, int] = field(default_factory=dict)

    def record(self, status: int) -> None:
        self.statuses[status] = self.statuses.get(status, 0) + 1


async def run_loadgen(
    protocol: Union[ProtocolSpec, LongitudinalProtocol],
    host: str,
    port: int,
    *,
    n_rounds: int,
    n_users: int,
    seed: int,
    batch_size: int = 32,
    rate: Optional[float] = None,
    mode: str = "reports",
    auth_key_env: Optional[str] = None,
    authenticator: Optional[PayloadAuthenticator] = None,
    max_retries: int = 8,
    rounds: Optional[Sequence[int]] = None,
) -> LoadgenResult:
    """Generate seeded traffic against a live ingestion endpoint.

    Parameters
    ----------
    protocol, n_rounds, n_users, seed:
        Passed to :func:`generate_round_reports`; the report material is
        bit-identical to what a local session would be fed with this seed.
    batch_size:
        Users per ``POST /v1/reports`` submission.
    rate:
        Mean batch submissions per second; inter-arrival gaps are
        exponential (Poisson process) drawn from a stream derived from
        ``seed``.  ``None`` submits as fast as the server accepts.
    mode:
        ``"reports"`` posts wire-encoded reports (protocols whose reports
        serialize); ``"counts"`` pre-folds each batch to support counts
        locally — the mode LOLOHA producers must use.
    auth_key_env / authenticator:
        Sign submissions with the key from this environment variable, or
        with an explicit :class:`PayloadAuthenticator` (tests use this to
        present a *wrong* key).  ``authenticator`` wins when both are given.
    max_retries:
        Bound on consecutive ``429`` retries per batch before giving up on
        that batch (counted in ``rejected_batches``).
    rounds:
        Optional subset of round indices to submit (default: the whole
        horizon, in order).  Used by the checkpoint/restart tests to split
        a horizon across two server generations.
    """
    if mode not in SUBMIT_MODES:
        raise ParameterError(f"mode must be one of {SUBMIT_MODES}, got {mode!r}")
    batch_size = require_int_at_least(batch_size, 1, "batch_size")
    max_retries = require_int_at_least(max_retries, 0, "max_retries")
    if rate is not None and not rate > 0:
        raise ParameterError(f"rate must be > 0 batches/s, got {rate}")
    live_protocol = _as_protocol(protocol)
    if mode == "reports" and not wire_reports_supported(live_protocol):
        raise ParameterError(
            f"protocol {live_protocol.name!r} reports are not "
            f"wire-serializable; use mode='counts'"
        )
    if authenticator is None:
        authenticator = authenticator_from_env(auth_key_env)

    report_rounds = generate_round_reports(live_protocol, n_rounds, n_users, seed)
    # Pacing gets its own entropy lane so arrival jitter can never collide
    # with (or perturb) the privacy randomness derived from the bare seed.
    pacing = np.random.default_rng(np.random.SeedSequence([int(seed), 0x9E3779B9]))
    if rounds is None:
        rounds = range(n_rounds)

    result = LoadgenResult(n_users=n_users, n_rounds=n_rounds)
    client = HttpClient(host, port)
    try:
        for round_index in rounds:
            batch_reports = report_rounds[round_index]
            for start in range(0, len(batch_reports), batch_size):
                batch = batch_reports[start : start + batch_size]
                if rate is not None:
                    await asyncio.sleep(float(pacing.exponential(1.0 / rate)))
                await _submit_batch(
                    client,
                    live_protocol,
                    round_index,
                    batch,
                    mode,
                    authenticator,
                    max_retries,
                    result,
                )
    finally:
        await client.close()
    return result


async def _submit_batch(
    client: HttpClient,
    protocol: LongitudinalProtocol,
    round_index: int,
    batch: List,
    mode: str,
    authenticator: Optional[PayloadAuthenticator],
    max_retries: int,
    result: LoadgenResult,
) -> None:
    if mode == "reports":
        payload = {"round": round_index, "reports": encode_reports(protocol, batch)}
    else:
        counts = protocol.support_counts(batch)
        payload = {
            "round": round_index,
            "counts": np.asarray(counts, dtype=np.float64).tolist(),
            "n_reports": len(batch),
        }
    body = json.dumps(payload).encode("utf-8")
    if authenticator is not None:
        body = authenticator.sign(body)

    result.submitted_reports += len(batch)
    for _ in range(max_retries + 1):
        response = await client.request("POST", "/v1/reports", body=body)
        result.record(response.status)
        if response.status == 202:
            result.accepted_reports += len(batch)
            return
        if response.status != 429:
            result.rejected_batches += 1
            return
        result.retried_429 += 1
        retry_after = response.header("Retry-After", "0.1")
        try:
            delay = max(float(retry_after), 0.01)
        except (TypeError, ValueError):
            delay = 0.1
        await asyncio.sleep(delay)
    result.rejected_batches += 1
