"""Round-window ownership for arrival-time-driven collections.

Historically every driver in this repository advanced rounds in lockstep:
the batch runner iterated ``for t in range(n_rounds)`` and the sharded /
distributed paths inherited that loop, so "which round is open" was implicit
in the position of a Python loop.  A live ingestion service cannot work that
way — reports arrive whenever clients send them — so the round progression
is extracted into an explicit :class:`RoundClock` that *owns* the windowing
decision for both worlds:

* the lockstep drivers use :meth:`RoundClock.lockstep` (explicit
  :meth:`advance` only, exactly reproducing the old loops), and
* the ingestion service seals windows on **wall-clock timeout**
  (``window_seconds``), **report quorum** (``quorum``) or an **explicit
  advance** (operator request / drain), whichever fires first.

A batch arriving for an already-sealed round is *late*.  The late policy is
configurable:

``"drop"``
    count the late reports and discard them — the sealed estimate stays
    frozen (the default, matching "a round is a published artifact");
``"absorb"``
    fold the late reports into the currently open window, so no data is
    lost at the cost of attributing it to a later round.

Reports for a not-yet-open (future) round are accepted unchanged — the
downstream :class:`~repro.service.session.CollectorSession` is an
out-of-order absorber — and only tracked as ``early_reports``.

The clock is deliberately free of I/O and asyncio: time comes from an
injectable ``time_source`` (tests pass a fake), sealing is reported through
an optional ``on_seal`` callback plus the :attr:`seals` history, and the
whole state round-trips through :meth:`state_dict` /
:meth:`from_state` so the ingestion service can checkpoint it next to the
session's ``.npz``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .._validation import require_int_at_least, require_positive
from ..exceptions import ParameterError

__all__ = ["RoundClock", "SealEvent", "LATE_POLICIES"]

LATE_POLICIES = ("drop", "absorb")

_STATE_FORMAT = 1


@dataclass(frozen=True)
class SealEvent:
    """One sealed round window.

    Attributes
    ----------
    round_index:
        The round that was sealed.
    reason:
        What closed the window: ``"quorum"``, ``"timeout"``, ``"explicit"``
        or ``"drain"``.
    n_reports:
        Reports routed into the window while it was open (late-absorbed
        reports included).
    duration:
        Wall-clock seconds the window was open (the *seal latency*).
    """

    round_index: int
    reason: str
    n_reports: int
    duration: float


class RoundClock:
    """Owns which collection round is open and when it seals.

    Parameters
    ----------
    n_rounds:
        Length of the collection horizon.
    window_seconds:
        Seal the open window once it has been open this long (checked by
        :meth:`tick`); ``None`` disables the timeout trigger.
    quorum:
        Seal the open window as soon as it has received this many reports;
        ``None`` disables the quorum trigger.
    late_policy:
        ``"drop"`` or ``"absorb"`` (see module docstring).
    time_source:
        Monotonic clock used for window ages; injectable for tests.
    on_seal:
        Optional callback invoked with each :class:`SealEvent` as it happens
        (the ingestion service wires this to its metrics).

    Not thread-safe: one owner (the ingest consumer, or a driver loop)
    mutates the clock.
    """

    def __init__(
        self,
        n_rounds: int,
        *,
        window_seconds: Optional[float] = None,
        quorum: Optional[int] = None,
        late_policy: str = "drop",
        time_source: Callable[[], float] = time.monotonic,
        on_seal: Optional[Callable[[SealEvent], None]] = None,
    ) -> None:
        self.n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        if window_seconds is not None:
            window_seconds = require_positive(window_seconds, "window_seconds")
        self.window_seconds = window_seconds
        if quorum is not None:
            quorum = require_int_at_least(quorum, 1, "quorum")
        self.quorum = quorum
        if late_policy not in LATE_POLICIES:
            raise ParameterError(
                f"late_policy must be one of {LATE_POLICIES}, got {late_policy!r}"
            )
        self.late_policy = late_policy
        self._time = time_source
        self.on_seal = on_seal

        self._current = 0
        self._window_reports = 0
        self._window_started = self._time()
        self.late_dropped = 0
        self.late_absorbed = 0
        self.early_reports = 0
        self.seals: List[SealEvent] = []

    # ------------------------------------------------------------------ #
    # Construction shortcuts
    # ------------------------------------------------------------------ #
    @classmethod
    def lockstep(cls, n_rounds: int) -> "RoundClock":
        """A clock that only advances explicitly — the legacy driver loops.

        No timeout, no quorum: :meth:`advance` after each simulated round
        reproduces ``for t in range(n_rounds)`` exactly, but the round
        progression is now owned by the same object the live service uses.
        """
        return cls(n_rounds)

    # ------------------------------------------------------------------ #
    # State
    # ------------------------------------------------------------------ #
    @property
    def current_round(self) -> int:
        """The open round window (== ``n_rounds`` once finished)."""
        return self._current

    @property
    def finished(self) -> bool:
        """Whether every round of the horizon has been sealed."""
        return self._current >= self.n_rounds

    @property
    def window_reports(self) -> int:
        """Reports routed into the currently open window so far."""
        return self._window_reports

    def window_age(self) -> float:
        """Seconds the current window has been open."""
        return self._time() - self._window_started

    def is_sealed(self, round_index: int) -> bool:
        return self._check_round(round_index) < self._current

    def _check_round(self, round_index: int) -> int:
        round_index = int(round_index)
        if not 0 <= round_index < self.n_rounds:
            raise ParameterError(
                f"round index must lie in [0, {self.n_rounds}), got {round_index}"
            )
        return round_index

    # ------------------------------------------------------------------ #
    # Routing and sealing
    # ------------------------------------------------------------------ #
    def route(self, round_index: int, n_reports: int = 1) -> Optional[int]:
        """Map an arriving batch to the round it must be folded into.

        Returns the target round index, or ``None`` when the batch is late
        and the policy drops it.  On-time batches may seal their window
        (quorum); the batch itself still belongs to the window it arrived
        in.
        """
        round_index = self._check_round(round_index)
        n_reports = require_int_at_least(n_reports, 1, "n_reports")
        if round_index < self._current or self.finished:
            if self.late_policy == "absorb" and not self.finished:
                self.late_absorbed += n_reports
                target = self._current
                self._window_reports += n_reports
                self._maybe_quorum_seal()
                return target
            self.late_dropped += n_reports
            return None
        if round_index > self._current:
            self.early_reports += n_reports
            return round_index
        target = self._current
        self._window_reports += n_reports
        self._maybe_quorum_seal()
        return target

    def _maybe_quorum_seal(self) -> None:
        if self.quorum is not None and self._window_reports >= self.quorum:
            self._seal("quorum")

    def tick(self) -> List[SealEvent]:
        """Seal windows whose wall-clock deadline has passed.

        Call periodically (the ingestion service runs a ticker task).  A
        stalled process catches up: one window seals per *elapsed* deadline,
        each successor window opening exactly where its predecessor's
        deadline fell, so a 10-second stall over 1-second windows seals ten
        rounds, not one.  Returns the seal events produced (usually zero or
        one).
        """
        events: List[SealEvent] = []
        if self.window_seconds is None:
            return events
        while (
            not self.finished
            and self._time() - self._window_started >= self.window_seconds
        ):
            events.append(
                self._seal(
                    "timeout", now=self._window_started + self.window_seconds
                )
            )
        return events

    def advance(self, reason: str = "explicit") -> SealEvent:
        """Seal the open window now (operator request, drain, lockstep)."""
        if self.finished:
            raise ParameterError(
                f"all {self.n_rounds} rounds are already sealed"
            )
        return self._seal(reason)

    def _seal(self, reason: str, now: Optional[float] = None) -> SealEvent:
        if now is None:
            now = self._time()
        event = SealEvent(
            round_index=self._current,
            reason=reason,
            n_reports=self._window_reports,
            duration=now - self._window_started,
        )
        self.seals.append(event)
        self._current += 1
        self._window_reports = 0
        self._window_started = now
        if self.on_seal is not None:
            self.on_seal(event)
        return event

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def state_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot (window age restarts on restore)."""
        return {
            "format": _STATE_FORMAT,
            "n_rounds": self.n_rounds,
            "window_seconds": self.window_seconds,
            "quorum": self.quorum,
            "late_policy": self.late_policy,
            "current_round": self._current,
            "window_reports": self._window_reports,
            "late_dropped": self.late_dropped,
            "late_absorbed": self.late_absorbed,
            "early_reports": self.early_reports,
            "seals": [
                {
                    "round_index": event.round_index,
                    "reason": event.reason,
                    "n_reports": event.n_reports,
                    "duration": event.duration,
                }
                for event in self.seals
            ],
        }

    @classmethod
    def from_state(
        cls,
        state: Dict[str, object],
        *,
        time_source: Callable[[], float] = time.monotonic,
        on_seal: Optional[Callable[[SealEvent], None]] = None,
    ) -> "RoundClock":
        """Rebuild a clock from :meth:`state_dict`.

        The restored window opens *now* (monotonic clocks do not survive a
        process restart), everything else — sealed rounds, late/early
        counters, seal history — is carried over exactly.
        """
        if not isinstance(state, dict) or state.get("format") != _STATE_FORMAT:
            raise ParameterError(
                f"unsupported round-clock state format "
                f"{state.get('format') if isinstance(state, dict) else state!r} "
                f"(expected {_STATE_FORMAT})"
            )
        try:
            clock = cls(
                int(state["n_rounds"]),
                window_seconds=state.get("window_seconds"),
                quorum=state.get("quorum"),
                late_policy=str(state.get("late_policy", "drop")),
                time_source=time_source,
                on_seal=on_seal,
            )
            current = int(state["current_round"])
            if not 0 <= current <= clock.n_rounds:
                raise ParameterError(
                    f"checkpointed current_round {current} outside "
                    f"[0, {clock.n_rounds}]"
                )
            clock._current = current
            clock._window_reports = int(state.get("window_reports", 0))
            clock.late_dropped = int(state.get("late_dropped", 0))
            clock.late_absorbed = int(state.get("late_absorbed", 0))
            clock.early_reports = int(state.get("early_reports", 0))
            clock.seals = [
                SealEvent(
                    round_index=int(entry["round_index"]),
                    reason=str(entry["reason"]),
                    n_reports=int(entry["n_reports"]),
                    duration=float(entry["duration"]),
                )
                for entry in state.get("seals", [])
            ]
        except (KeyError, TypeError, ValueError) as error:
            raise ParameterError(f"invalid round-clock state: {error}") from None
        return clock

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoundClock(n_rounds={self.n_rounds}, current={self._current}, "
            f"late_policy={self.late_policy!r})"
        )
