"""String-keyed protocol registry: build protocols from declarative specs.

Every longitudinal protocol of the paper registers a *builder* — a function
``(ProtocolSpec) -> LongitudinalProtocol`` — under its canonical name (plus
aliases).  :func:`build_protocol` is the single construction entry point of
the public API and replaces the old ``ProtocolFactory`` closures: because a
:class:`~repro.specs.ProtocolSpec` is plain data, sweep tasks and shard work
units can be pickled and shipped across processes or hosts.

Registered names (see :func:`registered_protocols`):

``L-GRR``, ``L-SUE`` (alias ``RAPPOR``), ``L-OSUE``, ``L-OUE``, ``L-SOUE``,
``LOLOHA``, ``BiLOLOHA``, ``OLOLOHA``, ``dBitFlipPM``.

Protocol-specific spec params:

=============  =====================================================
``dBitFlipPM``  ``b`` (bucket count; defaults to the paper's rule of
                :func:`dbitflip_bucket_count`), ``d`` (sampled buckets,
                default ``1``; the string ``"b"`` means ``d = b``)
``LOLOHA``      ``g`` (hashed-domain size; default Eq. (6) optimum),
                ``hash_family`` (registry name, see
                :func:`repro.hashing.family_from_name`)
``BiLOLOHA`` /  ``hash_family``
``OLOLOHA``
=============  =====================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional, Tuple

from .exceptions import ParameterError
from .hashing import family_from_name
from .longitudinal import (
    BiLOLOHA,
    DBitFlipPM,
    LGRR,
    LOLOHA,
    LOSUE,
    LOUE,
    LSOUE,
    LSUE,
    OLOLOHA,
)
from .longitudinal.base import LongitudinalProtocol
from .longitudinal.optimal_g import optimal_g
from .specs import ProtocolSpec

__all__ = [
    "ProtocolBuilder",
    "register_protocol",
    "registered_protocols",
    "build_protocol",
    "dbitflip_bucket_count",
]

#: A builder turns a concrete spec into a live protocol object.
ProtocolBuilder = Callable[[ProtocolSpec], LongitudinalProtocol]

_BUILDERS: Dict[str, ProtocolBuilder] = {}
#: Canonical name of every registered key (aliases map to their target).
_CANONICAL: Dict[str, str] = {}


def register_protocol(
    name: str,
    builder: Optional[ProtocolBuilder] = None,
    *,
    aliases: Iterable[str] = (),
    overwrite: bool = False,
):
    """Register ``builder`` under ``name`` (and ``aliases``).

    Usable directly (``register_protocol("X", build_x)``) or as a decorator::

        @register_protocol("X", aliases=("Y",))
        def build_x(spec): ...
    """

    def _register(fn: ProtocolBuilder) -> ProtocolBuilder:
        for key in (name, *aliases):
            if key in _BUILDERS and not overwrite:
                raise ParameterError(f"protocol {key!r} is already registered")
            _BUILDERS[key] = fn
            _CANONICAL[key] = name
        return fn

    if builder is not None:
        return _register(builder)
    return _register


def registered_protocols() -> Tuple[str, ...]:
    """Every registered name and alias, sorted."""
    return tuple(sorted(_BUILDERS))


def build_protocol(spec: ProtocolSpec) -> LongitudinalProtocol:
    """Construct the protocol described by a concrete spec.

    Raises :class:`~repro.exceptions.ParameterError` for unknown protocol
    names, non-concrete specs (missing ``k`` or ``eps_inf``) and invalid or
    unknown protocol-specific params.
    """
    if not isinstance(spec, ProtocolSpec):
        raise ParameterError(
            f"build_protocol expects a ProtocolSpec, got {type(spec).__name__}"
        )
    try:
        builder = _BUILDERS[spec.name]
    except KeyError:
        known = ", ".join(registered_protocols())
        raise ParameterError(
            f"unknown protocol {spec.name!r}; registered protocols: {known}"
        ) from None
    if not spec.is_concrete:
        missing = [f for f in ("k", "eps_inf") if getattr(spec, f) is None]
        raise ParameterError(
            f"spec for {spec.name!r} is not concrete: missing {missing}; "
            f"fill grid fields with ProtocolSpec.at(...)"
        )
    return builder(spec)


def dbitflip_bucket_count(k: int) -> int:
    """The paper's bucket-count rule: ``b = k`` for ``k <= 360``, else ``b = k // 4``."""
    return k if k <= 360 else max(2, k // 4)


# ---------------------------------------------------------------------- #
# Builder helpers
# ---------------------------------------------------------------------- #
def _check_params(spec: ProtocolSpec, allowed: Tuple[str, ...]) -> None:
    unknown = set(spec.params) - set(allowed)
    if unknown:
        raise ParameterError(
            f"unknown params for protocol {spec.name!r}: {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _chained_eps_1(spec: ProtocolSpec) -> float:
    eps_1 = spec.resolved_eps_1
    if eps_1 is None:
        raise ParameterError(
            f"protocol {spec.name!r} requires a first-report budget: set "
            f"'alpha' or 'eps_1' on the spec"
        )
    return eps_1


def _loloha_family(spec: ProtocolSpec, g: int):
    family_name = spec.params.get("hash_family")
    if family_name is None:
        return None
    if not isinstance(family_name, str):
        raise ParameterError(
            f"hash_family must be a family registry name string, got {family_name!r}"
        )
    return family_from_name(family_name, g)


# ---------------------------------------------------------------------- #
# Default registrations
# ---------------------------------------------------------------------- #
@register_protocol("L-GRR")
def _build_l_grr(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ())
    return LGRR(spec.k, spec.eps_inf, _chained_eps_1(spec))


@register_protocol("L-SUE", aliases=("RAPPOR",))
def _build_l_sue(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ())
    return LSUE(spec.k, spec.eps_inf, _chained_eps_1(spec))


@register_protocol("L-OSUE")
def _build_l_osue(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ())
    return LOSUE(spec.k, spec.eps_inf, _chained_eps_1(spec))


@register_protocol("L-OUE")
def _build_l_oue(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ())
    return LOUE(spec.k, spec.eps_inf, _chained_eps_1(spec))


@register_protocol("L-SOUE")
def _build_l_soue(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ())
    return LSOUE(spec.k, spec.eps_inf, _chained_eps_1(spec))


@register_protocol("LOLOHA")
def _build_loloha(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ("g", "hash_family"))
    eps_1 = _chained_eps_1(spec)
    g = spec.params.get("g")
    if g is None:
        g = optimal_g(spec.eps_inf, eps_1)
    return LOLOHA(spec.k, spec.eps_inf, eps_1, g=g, family=_loloha_family(spec, int(g)))


@register_protocol("BiLOLOHA")
def _build_biloloha(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ("hash_family",))
    eps_1 = _chained_eps_1(spec)
    return BiLOLOHA(spec.k, spec.eps_inf, eps_1, family=_loloha_family(spec, 2))


@register_protocol("OLOLOHA")
def _build_ololoha(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ("hash_family",))
    eps_1 = _chained_eps_1(spec)
    g = optimal_g(spec.eps_inf, eps_1)
    return OLOLOHA(spec.k, spec.eps_inf, eps_1, family=_loloha_family(spec, g))


@register_protocol("dBitFlipPM")
def _build_dbitflip(spec: ProtocolSpec) -> LongitudinalProtocol:
    _check_params(spec, ("b", "d"))
    b = spec.params.get("b")
    if b is None:
        b = dbitflip_bucket_count(spec.k)
    b = int(b)
    d = spec.params.get("d", 1)
    if d == "b":  # "all sampled": d tracks the bucket count
        d = b
    elif isinstance(d, str):
        raise ParameterError(f"d must be an integer or the string 'b', got {d!r}")
    return DBitFlipPM(spec.k, spec.eps_inf, b=b, d=int(d))
