"""Local Hashing (LH) oracles: BLH (``g = 2``) and OLH (``g = round(e^eps) + 1``).

Section 2.3.2 of the paper.  Each user samples a hash function ``H`` from a
universal family mapping the domain ``[0..k)`` to ``[0..g)``, applies GRR over
the hashed domain, and reports the pair ``(H, perturbed hash)``.  The server
counts, for each candidate value ``v``, how many users' reports *support* it
(``H_u(v) == reported hash``) and debiases with ``p = e^eps/(e^eps + g - 1)``
and ``q = 1/g``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import as_rng, require_domain_size, validate_value_in_domain, validate_values_array
from ..exceptions import EncodingError
from ..hashing import HashFunction, MultiplyShiftHashFamily, UniversalHashFamily
from ..rng import RngLike
from .base import FrequencyOracle, PerturbationParameters, grr_parameters
from .grr import grr_perturb_array

__all__ = ["LHReport", "LocalHashing", "BLH", "OLH", "optimal_lh_g"]


def optimal_lh_g(epsilon: float) -> int:
    """The OLH choice of hashed-domain size: ``round(e^eps + 1)``, at least 2."""
    return max(2, int(round(math.exp(epsilon) + 1.0)))


@dataclass(frozen=True)
class LHReport:
    """A single local-hashing report: the sampled hash function and the
    perturbed hash value."""

    hash_function: HashFunction
    value: int


class LocalHashing(FrequencyOracle):
    """Generic Local Hashing oracle with configurable hashed-domain size ``g``.

    Parameters
    ----------
    k:
        Original domain size.
    epsilon:
        LDP budget of a single report.
    g:
        Hashed domain size (defaults to the OLH optimum).
    family:
        Universal hash family to sample from.  Defaults to the fast
        multiply-shift family; any family from :mod:`repro.hashing` works.
    """

    name = "LH"

    def __init__(
        self,
        k: int,
        epsilon: float,
        g: Optional[int] = None,
        family: Optional[UniversalHashFamily] = None,
    ) -> None:
        super().__init__(k, epsilon)
        if g is None:
            g = optimal_lh_g(epsilon)
        self.g = require_domain_size(g, "g")
        if family is None:
            family = MultiplyShiftHashFamily(self.g)
        if family.g != self.g:
            raise EncodingError(
                f"hash family output size {family.g} does not match g={self.g}"
            )
        self.family = family
        self._grr_params = grr_parameters(epsilon, self.g)
        # Estimation uses q' = 1/g (the collision probability of a universal
        # family), not the GRR q over the hashed domain.
        self._estimation = PerturbationParameters(
            p=self._grr_params.p, q=1.0 / self.g, epsilon=epsilon
        )

    @property
    def estimation_parameters(self) -> PerturbationParameters:
        return self._estimation

    @property
    def perturbation_parameters(self) -> PerturbationParameters:
        """The GRR ``(p, q)`` pair actually used over the hashed domain."""
        return self._grr_params

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def privatize(self, value: int, rng: RngLike = None) -> LHReport:
        """Sample a hash function, hash the value, perturb it with GRR."""
        value = validate_value_in_domain(value, self.k)
        generator = as_rng(rng)
        hash_function = self.family.sample(generator)
        hashed = hash_function(value)
        perturbed = grr_perturb_array(
            np.asarray([hashed]), self.g, self._grr_params.p, generator
        )[0]
        return LHReport(hash_function=hash_function, value=int(perturbed))

    def privatize_batch(self, values: Sequence[int], rng: RngLike = None) -> list:
        """Perturb a batch; each user samples an independent hash function."""
        generator = as_rng(rng)
        values = validate_values_array(values, self.k)
        reports = []
        for value in values:
            reports.append(self.privatize(int(value), generator))
        return reports

    # ------------------------------------------------------------------ #
    # Server side
    # ------------------------------------------------------------------ #
    def support_counts(self, reports: Sequence[LHReport]) -> np.ndarray:
        """Count, per candidate value, the reports whose hash supports it."""
        counts = np.zeros(self.k, dtype=np.float64)
        domain = np.arange(self.k, dtype=np.int64)
        for report in reports:
            if not isinstance(report, LHReport):
                raise EncodingError(
                    f"LocalHashing expects LHReport instances, got {type(report).__name__}"
                )
            hashed_domain = report.hash_function.hash_array(domain)
            counts += hashed_domain == report.value
        return counts


class BLH(LocalHashing):
    """Binary Local Hashing (``g = 2``)."""

    name = "BLH"

    def __init__(self, k: int, epsilon: float, family: Optional[UniversalHashFamily] = None) -> None:
        super().__init__(k, epsilon, g=2, family=family)


class OLH(LocalHashing):
    """Optimal Local Hashing (``g = round(e^eps + 1)``)."""

    name = "OLH"

    def __init__(self, k: int, epsilon: float, family: Optional[UniversalHashFamily] = None) -> None:
        super().__init__(k, epsilon, g=optimal_lh_g(epsilon), family=family)
