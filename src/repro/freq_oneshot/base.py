"""Common infrastructure for one-shot LDP frequency oracles.

The central abstractions are:

``PerturbationParameters``
    The pair ``(p, q)`` of keep/flip probabilities that fully parameterizes a
    randomized-response style perturbation, together with the privacy budget
    it realizes.

``FrequencyOracle``
    Abstract base class with the client-side ``privatize`` /
    ``privatize_batch`` API and the server-side ``aggregate`` /
    ``estimate_frequencies`` API.

``unbiased_estimate``
    Equation (1) of the paper: debias the observed support counts.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .._validation import (
    as_rng,
    require_domain_size,
    require_epsilon,
    require_int_at_least,
    validate_values_array,
)
from ..exceptions import AggregationError, ParameterError
from ..rng import RngLike
from ..simulation.kernels import debias_kernel

__all__ = [
    "PerturbationParameters",
    "FrequencyOracle",
    "unbiased_estimate",
    "grr_parameters",
    "sue_parameters",
    "oue_parameters",
]


@dataclass(frozen=True)
class PerturbationParameters:
    """Keep/flip probabilities of a randomized-response style perturbation.

    Attributes
    ----------
    p:
        Probability of reporting the "true" symbol (or of keeping a 1-bit).
    q:
        Probability of reporting a specific other symbol (or of flipping a
        0-bit to 1).
    epsilon:
        The LDP budget realized by this pair (``ln`` of the largest likelihood
        ratio achievable between two inputs).
    """

    p: float
    q: float
    epsilon: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.q <= 1.0 and 0.0 <= self.p <= 1.0):
            raise ParameterError(f"p and q must be probabilities, got p={self.p}, q={self.q}")
        if self.p <= self.q:
            raise ParameterError(
                f"p must exceed q for a useful perturbation, got p={self.p}, q={self.q}"
            )

    @property
    def gap(self) -> float:
        """The estimator denominator term ``p - q``."""
        return self.p - self.q


def unbiased_estimate(counts: np.ndarray, n: int, p: float, q: float) -> np.ndarray:
    """Equation (1): unbiased frequency estimate from support counts.

    Parameters
    ----------
    counts:
        Per-value support counts ``C(v)`` (how many reports support value v).
    n:
        Number of reports aggregated.
    p, q:
        Perturbation parameters of the protocol that produced the reports.
    """
    n = require_int_at_least(n, 1, "n")
    if p - q <= 0:
        raise ParameterError(f"p - q must be positive, got p={p}, q={q}")
    return debias_kernel(counts, n, p, q)


def grr_parameters(epsilon: float, k: int) -> PerturbationParameters:
    """GRR parameters: ``p = e^eps / (e^eps + k - 1)``, ``q = (1 - p)/(k - 1)``."""
    epsilon = require_epsilon(epsilon)
    k = require_domain_size(k)
    e = math.exp(epsilon)
    p = e / (e + k - 1)
    q = 1.0 / (e + k - 1)
    return PerturbationParameters(p=p, q=q, epsilon=epsilon)


def sue_parameters(epsilon: float) -> PerturbationParameters:
    """Symmetric UE (RAPPOR) parameters: ``p = e^{eps/2}/(e^{eps/2}+1)``, ``q = 1 - p``."""
    epsilon = require_epsilon(epsilon)
    half = math.exp(epsilon / 2.0)
    p = half / (half + 1.0)
    q = 1.0 / (half + 1.0)
    return PerturbationParameters(p=p, q=q, epsilon=epsilon)


def oue_parameters(epsilon: float) -> PerturbationParameters:
    """Optimal UE parameters: ``p = 1/2``, ``q = 1/(e^eps + 1)``."""
    epsilon = require_epsilon(epsilon)
    p = 0.5
    q = 1.0 / (math.exp(epsilon) + 1.0)
    return PerturbationParameters(p=p, q=q, epsilon=epsilon)


class FrequencyOracle(ABC):
    """Abstract one-shot LDP frequency oracle over the domain ``[0..k)``.

    Subclasses define how a single value is privatized, how reports are
    aggregated into per-value support counts, and the effective ``(p, q)``
    pair used for debiasing.
    """

    #: Short protocol name used in experiment reports.
    name: str = "oracle"

    def __init__(self, k: int, epsilon: float) -> None:
        self.k = require_domain_size(k, "k")
        self.epsilon = require_epsilon(epsilon)

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    @abstractmethod
    def privatize(self, value: int, rng: RngLike = None):
        """Sanitize a single value, returning one report."""

    def privatize_batch(self, values: Sequence[int], rng: RngLike = None) -> list:
        """Sanitize a batch of values.

        The default implementation loops over :meth:`privatize`; subclasses
        override it with a vectorized version where possible.
        """
        generator = as_rng(rng)
        values = validate_values_array(values, self.k)
        return [self.privatize(int(v), generator) for v in values]

    # ------------------------------------------------------------------ #
    # Server side
    # ------------------------------------------------------------------ #
    @abstractmethod
    def support_counts(self, reports: Sequence) -> np.ndarray:
        """Per-value support counts ``C(v)`` from a collection of reports."""

    @property
    @abstractmethod
    def estimation_parameters(self) -> PerturbationParameters:
        """The effective ``(p, q)`` pair used by the unbiased estimator."""

    def estimate_frequencies(self, reports: Sequence, n: Optional[int] = None) -> np.ndarray:
        """Unbiased frequency estimate (Eq. 1) from a collection of reports."""
        reports = list(reports) if not isinstance(reports, (list, np.ndarray)) else reports
        if n is None:
            n = len(reports)
        if n <= 0:
            raise AggregationError("cannot estimate frequencies from an empty report set")
        counts = self.support_counts(reports)
        params = self.estimation_parameters
        return unbiased_estimate(counts, n, params.p, params.q)

    # ------------------------------------------------------------------ #
    # Theory
    # ------------------------------------------------------------------ #
    def estimator_variance(self, n: int, f: float = 0.0) -> float:
        """Variance of the frequency estimator for a value with true frequency ``f``.

        The generic randomized-response variance is
        ``q(1-q)/(n (p-q)^2) + f (1 - p - q)/(n (p - q))`` which reduces to the
        familiar approximate variance at ``f = 0``.
        """
        n = require_int_at_least(n, 1, "n")
        params = self.estimation_parameters
        p, q = params.p, params.q
        gap = p - q
        return q * (1 - q) / (n * gap**2) + f * (1 - p - q) / (n * gap)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(k={self.k}, epsilon={self.epsilon})"
