"""One-shot (single collection) LDP frequency-estimation oracles.

These are the building blocks reviewed in Section 2.3 of the paper: Generalized
Randomized Response (GRR), Unary Encoding (SUE / OUE) and Local Hashing
(BLH / OLH).  The longitudinal protocols in :mod:`repro.longitudinal` chain two
of these primitives (a permanent and an instantaneous round) to obtain
memoization-based longitudinal guarantees.

Every oracle follows the same life cycle::

    oracle = GRR(k=100, epsilon=1.0)
    reports = oracle.privatize_batch(values, rng=0)     # client side
    estimate = oracle.estimate_frequencies(reports)     # server side

Estimates are unbiased (Eq. 1 of the paper); :mod:`repro.freq_oneshot.histogram`
offers optional post-processing (clipping, simplex projection).
"""

from .base import (
    FrequencyOracle,
    PerturbationParameters,
    grr_parameters,
    oue_parameters,
    sue_parameters,
    unbiased_estimate,
)
from .grr import GRR
from .local_hashing import BLH, OLH, LocalHashing, optimal_lh_g
from .unary_encoding import OUE, SUE, UnaryEncoding
from .histogram import (
    clip_and_normalize,
    estimate_with_postprocessing,
    normalize_non_negative,
    project_onto_simplex,
)

__all__ = [
    "FrequencyOracle",
    "PerturbationParameters",
    "grr_parameters",
    "sue_parameters",
    "oue_parameters",
    "unbiased_estimate",
    "GRR",
    "UnaryEncoding",
    "SUE",
    "OUE",
    "LocalHashing",
    "BLH",
    "OLH",
    "optimal_lh_g",
    "clip_and_normalize",
    "project_onto_simplex",
    "normalize_non_negative",
    "estimate_with_postprocessing",
]
