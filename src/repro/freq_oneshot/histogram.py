"""Histogram post-processing utilities.

Unbiased LDP estimates can be negative or sum to something other than one.
The functions here implement the standard post-processing options; they are
kept separate from the oracles because post-processing trades bias for
variance and the paper's metrics are computed on the raw unbiased estimates.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "clip_and_normalize",
    "normalize_non_negative",
    "project_onto_simplex",
    "estimate_with_postprocessing",
    "POSTPROCESSORS",
]


def clip_and_normalize(frequencies: np.ndarray) -> np.ndarray:
    """Clip negative entries to zero and rescale to sum to one.

    If every entry is non-positive the uniform distribution is returned, which
    is the convention used by the multi-freq-ldpy reference package.
    """
    clipped = np.clip(np.asarray(frequencies, dtype=np.float64), 0.0, None)
    total = clipped.sum()
    if total <= 0:
        return np.full_like(clipped, 1.0 / clipped.size)
    return clipped / total


def normalize_non_negative(frequencies: np.ndarray) -> np.ndarray:
    """Additively shift so the minimum is zero, then rescale to sum to one."""
    values = np.asarray(frequencies, dtype=np.float64)
    shifted = values - min(values.min(), 0.0)
    total = shifted.sum()
    if total <= 0:
        return np.full_like(shifted, 1.0 / shifted.size)
    return shifted / total


def project_onto_simplex(frequencies: np.ndarray) -> np.ndarray:
    """Euclidean projection onto the probability simplex.

    This is the post-processing with the smallest L2 distortion; it solves
    ``min ||x - f||_2`` subject to ``x >= 0`` and ``sum(x) = 1`` using the
    sorting algorithm of Held, Wolfe and Crowder.
    """
    values = np.asarray(frequencies, dtype=np.float64)
    if values.ndim != 1:
        raise ParameterError("project_onto_simplex expects a one-dimensional array")
    sorted_desc = np.sort(values)[::-1]
    cumulative = np.cumsum(sorted_desc) - 1.0
    indices = np.arange(1, values.size + 1)
    candidate = sorted_desc - cumulative / indices
    rho = np.nonzero(candidate > 0)[0][-1]
    theta = cumulative[rho] / (rho + 1.0)
    return np.clip(values - theta, 0.0, None)


#: Registry of named post-processors accepted by experiment configurations.
POSTPROCESSORS: Dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "none": lambda f: np.asarray(f, dtype=np.float64),
    "clip": clip_and_normalize,
    "shift": normalize_non_negative,
    "simplex": project_onto_simplex,
}


def estimate_with_postprocessing(
    raw_estimate: np.ndarray, method: str = "none"
) -> np.ndarray:
    """Apply a named post-processing method to a raw unbiased estimate."""
    try:
        processor = POSTPROCESSORS[method]
    except KeyError:
        known = ", ".join(sorted(POSTPROCESSORS))
        raise ParameterError(
            f"unknown post-processing method {method!r}; known methods: {known}"
        ) from None
    return processor(raw_estimate)
