"""Generalized Randomized Response (GRR), Section 2.3.1 of the paper.

GRR reports the true value with probability ``p = e^eps / (e^eps + k - 1)``
and a uniformly random *different* value otherwise.  It satisfies ``eps``-LDP
because ``p / q = e^eps``.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import as_rng, validate_value_in_domain, validate_values_array
from ..rng import RngLike
from ..simulation.kernels import grr_kernel
from .base import FrequencyOracle, PerturbationParameters, grr_parameters

__all__ = ["GRR", "grr_perturb_array"]


def grr_perturb_array(
    values: np.ndarray, k: int, p: float, rng: np.random.Generator
) -> np.ndarray:
    """Vectorized GRR perturbation of an integer array over domain ``[0..k)``.

    Each entry is kept with probability ``p``; otherwise it is replaced by a
    value drawn uniformly from the other ``k - 1`` symbols.  Thin wrapper
    around the shared :func:`repro.simulation.kernels.grr_kernel`, which the
    longitudinal population engines use as well.
    """
    return grr_kernel(values, k, p, rng)


class GRR(FrequencyOracle):
    """Generalized Randomized Response frequency oracle.

    Parameters
    ----------
    k:
        Domain size (``k >= 2``).
    epsilon:
        LDP budget of a single report.
    """

    name = "GRR"

    def __init__(self, k: int, epsilon: float) -> None:
        super().__init__(k, epsilon)
        self._params = grr_parameters(epsilon, k)

    @property
    def estimation_parameters(self) -> PerturbationParameters:
        return self._params

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def privatize(self, value: int, rng: RngLike = None) -> int:
        """Perturb a single value; the report is an integer in ``[0..k)``."""
        value = validate_value_in_domain(value, self.k)
        generator = as_rng(rng)
        return int(
            grr_perturb_array(np.asarray([value]), self.k, self._params.p, generator)[0]
        )

    def privatize_batch(self, values: Sequence[int], rng: RngLike = None) -> np.ndarray:
        """Vectorized perturbation of a batch of values."""
        generator = as_rng(rng)
        values = validate_values_array(values, self.k)
        return grr_perturb_array(values, self.k, self._params.p, generator)

    # ------------------------------------------------------------------ #
    # Server side
    # ------------------------------------------------------------------ #
    def support_counts(self, reports: Sequence[int]) -> np.ndarray:
        """Support counts are simply how many times each symbol was reported."""
        reports = np.asarray(reports, dtype=np.int64)
        return np.bincount(reports, minlength=self.k).astype(np.float64)
