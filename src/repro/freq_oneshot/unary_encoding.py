"""Unary Encoding (UE) oracles: SUE (RAPPOR's encoding) and OUE, Section 2.3.3.

The user's value is one-hot encoded into a ``k``-bit vector and every bit is
flipped independently: a 1-bit stays 1 with probability ``p``; a 0-bit becomes
1 with probability ``q``.  SUE uses the symmetric pair ``p + q = 1``; OUE fixes
``p = 1/2`` and ``q = 1/(e^eps + 1)`` to minimize estimator variance.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .._validation import as_rng, require_probability, validate_value_in_domain, validate_values_array
from ..exceptions import EncodingError, ParameterError
from ..rng import RngLike
from ..simulation.kernels import one_hot_kernel, ue_flip_kernel
from .base import (
    FrequencyOracle,
    PerturbationParameters,
    oue_parameters,
    sue_parameters,
)

__all__ = ["UnaryEncoding", "SUE", "OUE", "ue_perturb_matrix", "one_hot"]


def one_hot(values: np.ndarray, k: int) -> np.ndarray:
    """One-hot encode an integer array into a ``(len(values), k)`` 0/1 matrix.

    Thin wrapper around :func:`repro.simulation.kernels.one_hot_kernel`.
    """
    return one_hot_kernel(values, k)


def ue_perturb_matrix(
    encoded: np.ndarray, p: float, q: float, rng: np.random.Generator
) -> np.ndarray:
    """Flip each bit of a one-hot matrix independently with UE probabilities.

    Thin wrapper around :func:`repro.simulation.kernels.ue_flip_kernel`,
    which the longitudinal population engines use as well.
    """
    return ue_flip_kernel(encoded, p, q, rng)


class UnaryEncoding(FrequencyOracle):
    """Generic Unary Encoding oracle parameterized by an explicit ``(p, q)``.

    Use the :class:`SUE` and :class:`OUE` subclasses for the two standard
    parameterizations; this class also accepts custom pairs (it recomputes the
    realized ``epsilon = ln(p(1-q) / ((1-p) q))``).
    """

    name = "UE"

    def __init__(self, k: int, epsilon: float, params: Optional[PerturbationParameters] = None) -> None:
        super().__init__(k, epsilon)
        if params is None:
            params = sue_parameters(epsilon)
        self._params = params

    @classmethod
    def from_probabilities(cls, k: int, p: float, q: float) -> "UnaryEncoding":
        """Build a UE oracle from explicit bit-keeping probabilities."""
        p = require_probability(p, "p", inclusive=False)
        q = require_probability(q, "q", inclusive=False)
        if p <= q:
            raise ParameterError(f"UE requires p > q, got p={p}, q={q}")
        epsilon = float(np.log(p * (1 - q) / ((1 - p) * q)))
        return cls(k, epsilon, PerturbationParameters(p=p, q=q, epsilon=epsilon))

    @property
    def estimation_parameters(self) -> PerturbationParameters:
        return self._params

    # ------------------------------------------------------------------ #
    # Client side
    # ------------------------------------------------------------------ #
    def privatize(self, value: int, rng: RngLike = None) -> np.ndarray:
        """Perturb a single value; the report is a ``k``-bit 0/1 vector."""
        value = validate_value_in_domain(value, self.k)
        generator = as_rng(rng)
        encoded = one_hot(np.asarray([value]), self.k)
        return ue_perturb_matrix(encoded, self._params.p, self._params.q, generator)[0]

    def privatize_batch(self, values: Sequence[int], rng: RngLike = None) -> np.ndarray:
        """Vectorized perturbation; returns an ``(n, k)`` 0/1 matrix."""
        generator = as_rng(rng)
        values = validate_values_array(values, self.k)
        encoded = one_hot(values, self.k)
        return ue_perturb_matrix(encoded, self._params.p, self._params.q, generator)

    # ------------------------------------------------------------------ #
    # Server side
    # ------------------------------------------------------------------ #
    def support_counts(self, reports: Sequence) -> np.ndarray:
        """Column sums of the report matrix (how often each bit was set)."""
        matrix = np.asarray(reports)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        if matrix.shape[1] != self.k:
            raise EncodingError(
                f"UE reports must have {self.k} bits, got vectors of length {matrix.shape[1]}"
            )
        return matrix.sum(axis=0).astype(np.float64)


class SUE(UnaryEncoding):
    """Symmetric Unary Encoding (the encoding used by RAPPOR)."""

    name = "SUE"

    def __init__(self, k: int, epsilon: float) -> None:
        super().__init__(k, epsilon, sue_parameters(epsilon))


class OUE(UnaryEncoding):
    """Optimal Unary Encoding (``p = 1/2``, ``q = 1/(e^eps + 1)``)."""

    name = "OUE"

    def __init__(self, k: int, epsilon: float) -> None:
        super().__init__(k, epsilon, oue_parameters(epsilon))
