"""Vectorized population engines: thin kernel + state compositions.

Driving one Python client object per user is the clearest way to run a
protocol, but for the paper-sized populations (up to 45k users over 260
rounds) the per-call overhead dominates.  Each engine in this module
re-implements one protocol family's *entire client population* while
preserving the same randomized behaviour, by composing exactly two layers:

* a *perturbation kernel* from :mod:`repro.simulation.kernels` — the pure,
  stateless numpy function that realizes the protocol's randomization;
* a *memoization state* from :mod:`repro.simulation.state` — a dense or
  row-sparse table holding the permanent randomization of each (user, key)
  pair, created in batches the first time a pair occurs.

Neither the round loop nor any constructor contains a per-user Python loop,
and — since the aggregated-sampling pass — the *instantaneous* randomization
of every engine is sampled in aggregate: the per-round randomness cost is a
function of the (hashed) domain size alone, never of ``n_users``
(``docs/architecture.md`` tabulates the per-engine round complexity).  The
only per-round outputs are the support counts, which the aggregation sinks
of :mod:`repro.simulation.sinks` fold incrementally.

Every engine exposes the same protocol:

``run_round(values_t, rng) -> support_counts``
    Process one collection round for all users and return the support counts
    the server aggregates for that round.

``distinct_memoized_per_user() -> np.ndarray``
    Per-user count of permanently randomized keys so far (the input of the
    ``eps_avg`` metric).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

import numpy as np

from .._validation import as_rng, require_int_at_least
from ..exceptions import ExperimentError, ParameterError
from ..longitudinal.base import LongitudinalProtocol
from ..longitudinal.dbitflip import DBitFlipPM
from ..longitudinal.l_grr import LGRR
from ..longitudinal.l_ue import LongitudinalUnaryEncoding
from ..longitudinal.loloha import LOLOHA
from ..rng import RngLike
from .kernels import (
    dbitflip_fresh_bits_kernel,
    grr_kernel,
    grr_mixing_counts_kernel,
    packed_column_sums_kernel,
    sample_buckets_kernel,
    support_from_hashes_kernel,
    ue_binomial_counts_kernel,
    ue_fresh_rows_kernel,
)
from .sinks import estimate_support_counts
from .state import DenseSymbolMemo, make_packed_bit_memo

__all__ = [
    "PopulationEngine",
    "GRRChainEngine",
    "UnaryChainEngine",
    "DBitFlipEngine",
    "LOLOHAEngine",
    "engine_for",
]

#: Byte budget above which :class:`LOLOHAEngine` skips precomputing the
#: packed per-hash-symbol support planes and falls back to the dense
#: compare-based fold.
_SUPPORT_PLANES_MAX_BYTES = 1024**3


class _DeltaFoldCache:
    """Incremental per-round fold of immutable per-(user, key) contributions.

    ``fold(users, keys)`` must return the summed contribution vector of the
    given users under the given keys.  Contributions never change once a
    (user, key) pair exists, so between rounds only users whose key changed
    need refolding: the cache applies ``+ new − old`` for those users, and
    falls back to a full refold when more than half the population moved
    (the delta touches 2x the changed rows, so that is the break-even).
    Longitudinal values are sticky across rounds, making the delta path the
    common case.
    """

    def __init__(self, n_users: int, fold) -> None:
        self._n_users = n_users
        self._fold = fold
        self._last_keys: Optional[np.ndarray] = None
        self._sums: Optional[np.ndarray] = None

    def update(self, keys: np.ndarray) -> np.ndarray:
        if self._sums is not None:
            changed = np.flatnonzero(keys != self._last_keys)
            if changed.size <= self._n_users // 2:
                if changed.size:
                    self._sums += self._fold(changed, keys[changed])
                    self._sums -= self._fold(changed, self._last_keys[changed])
                    self._last_keys[changed] = keys[changed]
                return self._sums
        self._sums = self._fold(np.arange(self._n_users), keys)
        self._last_keys = keys.copy()
        return self._sums


class PopulationEngine(ABC):
    """Base class: a vectorized population of clients for one protocol."""

    def __init__(self, protocol: LongitudinalProtocol, n_users: int, rng: RngLike = None) -> None:
        self.protocol = protocol
        self.n_users = require_int_at_least(n_users, 1, "n_users")
        self._rng = as_rng(rng)

    @abstractmethod
    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Process one round of values (one per user) and return support counts."""

    @abstractmethod
    def distinct_memoized_per_user(self) -> np.ndarray:
        """Per-user number of permanently randomized memoization keys."""

    def estimate_round(
        self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Run one round and return the unbiased frequency estimate."""
        counts = self.run_round(values_t, rng)
        return estimate_support_counts(self.protocol, counts, self.n_users)

    def _validate_round(self, values_t: np.ndarray) -> np.ndarray:
        values_t = np.asarray(values_t, dtype=np.int64)
        if values_t.shape != (self.n_users,):
            raise ExperimentError(
                f"expected one value per user (shape ({self.n_users},)), got {values_t.shape}"
            )
        if values_t.min() < 0 or values_t.max() >= self.protocol.k:
            raise ExperimentError(
                f"round values must lie in [0, {self.protocol.k})"
            )
        return values_t

    def _round_rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        return self._rng if rng is None else as_rng(rng)


class GRRChainEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.LGRR`.

    The memoization key of L-GRR is the value itself, so the state is one
    memoized symbol per (user, value) pair.  The instantaneous GRR is sampled
    in aggregate per memoized symbol (:func:`grr_mixing_counts_kernel`):
    after the O(n) memoization lookup, the round consumes ``O(k)`` randomness
    regardless of the population size.
    """

    def __init__(self, protocol: LGRR, n_users: int, rng: RngLike = None) -> None:
        if not isinstance(protocol, LGRR):
            raise ParameterError("GRRChainEngine requires an LGRR protocol")
        super().__init__(protocol, n_users, rng)
        self._state = DenseSymbolMemo(n_users, protocol.k)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        k = self.protocol.k

        memoized = self._state.resolve(
            values_t, lambda users, keys: grr_kernel(keys, k, params.p1, generator)
        )
        symbol_counts = np.bincount(memoized, minlength=k)
        return grr_mixing_counts_kernel(symbol_counts, k, params.p2, generator)

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


class UnaryChainEngine(PopulationEngine):
    """Vectorized population for the longitudinal UE protocols.

    The permanently randomized ``k``-bit vectors are held in a bit-packed
    memo table indexed by (user, value), materialized lazily in batches; the
    layout (dense below ~2 GiB, row-sparse above) is picked by
    :func:`repro.simulation.state.make_packed_bit_memo` and can be forced
    with ``memo_layout=``.  The round path folds the packed rows straight
    into per-column sums — the full ``(n_users, k)`` bit matrix is never
    unpacked — and samples the instantaneous flips in aggregate (two
    binomials per column).
    """

    def __init__(
        self,
        protocol: LongitudinalUnaryEncoding,
        n_users: int,
        rng: RngLike = None,
        memo_layout: str = "auto",
    ) -> None:
        if not isinstance(protocol, LongitudinalUnaryEncoding):
            raise ParameterError("UnaryChainEngine requires a longitudinal UE protocol")
        super().__init__(protocol, n_users, rng)
        self._state = make_packed_bit_memo(
            n_users, protocol.k, protocol.k, layout=memo_layout
        )
        self._column_sums = _DeltaFoldCache(n_users, self._fold_column_sums)

    def _fold_column_sums(self, users: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return packed_column_sums_kernel(
            self._state.packed_rows(users, keys), self.protocol.k
        )

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        k = self.protocol.k

        self._state.ensure_rows(
            values_t,
            lambda users, keys: ue_fresh_rows_kernel(
                keys, k, params.p1, params.q1, generator
            ),
        )
        # Column sums of the memoized rows, folded on the packed bytes (the
        # full (n_users, k) bit matrix is never unpacked) and updated
        # incrementally across rounds.
        memo_ones = self._column_sums.update(values_t)
        # The instantaneous bit flips are independent across users, so the
        # column support counts can be sampled in aggregate (two binomials
        # per column) instead of flipping the full (n_users, k) matrix.
        return ue_binomial_counts_kernel(
            memo_ones, self.n_users, params.p2, params.q2, generator
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


class DBitFlipEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.DBitFlipPM`.

    With ``record_key_history=True`` the engine additionally records, per
    round, the memoization key used by each user — which is what the
    data-change detection attack of Table 2 observes.  Recording is opt-in
    because the history grows by one ``(n_users,)`` array per round forever,
    which long-horizon monitoring simulations must not pay for.
    """

    def __init__(
        self,
        protocol: DBitFlipPM,
        n_users: int,
        rng: RngLike = None,
        memo_layout: str = "auto",
        record_key_history: bool = False,
    ) -> None:
        if not isinstance(protocol, DBitFlipPM):
            raise ParameterError("DBitFlipEngine requires a DBitFlipPM protocol")
        super().__init__(protocol, n_users, rng)
        d, b = protocol.d, protocol.b
        #: Sampled buckets, fixed per user (without replacement) — one batched
        #: draw for the whole population.
        self.sampled_buckets = sample_buckets_kernel(n_users, b, d, self._rng)
        # Memoized bits per (user, indicator key); key d means "no sampled
        # bucket matches".
        self._state = make_packed_bit_memo(n_users, d + 1, d, layout=memo_layout)
        #: Per-round memoization keys used by each user, recorded only when
        #: ``record_key_history=True`` (``None`` otherwise); consumed by the
        #: change-detection attack.
        self.key_history: Optional[List[np.ndarray]] = [] if record_key_history else None

    def _indicator_keys(self, buckets: np.ndarray) -> np.ndarray:
        """Position of each user's current bucket among its sampled buckets, or d."""
        matches = self.sampled_buckets == buckets[:, None]
        keys = np.full(self.n_users, self.protocol.d, dtype=np.int64)
        matched_users, matched_positions = np.nonzero(matches)
        keys[matched_users] = matched_positions
        return keys

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        p, q = self.protocol.bit_probabilities
        d = self.protocol.d

        buckets = self.protocol.bucket_of(values_t)
        keys = self._indicator_keys(buckets)
        if self.key_history is not None:
            self.key_history.append(keys.copy())

        current = self._state.resolve(
            keys, lambda users, kk: dbitflip_fresh_bits_kernel(kk, d, p, q, generator)
        )
        return np.bincount(
            self.sampled_buckets.ravel(),
            weights=current.ravel(),
            minlength=self.protocol.b,
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()

    def memoized_bits(self, user: int, key: int) -> Optional[np.ndarray]:
        """The memoized response of ``user`` for indicator ``key`` (or ``None``)."""
        return self._state.get_row(user, key)


class LOLOHAEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.LOLOHA`.

    The per-user hash tables Algorithm 2 needs are drawn in one batched call
    through :meth:`repro.hashing.UniversalHashFamily.sample_hashed_domains`.
    The round is fully aggregated: the support fold counts, per candidate
    value ``v``, the users whose hash of ``v`` equals their *memoized* symbol
    — regrouped per (memoized symbol, hash bucket) as bit-packed support
    planes folded by popcount — and the instantaneous GRR is then sampled as
    two binomials per value on top of those counts, so the per-round
    randomness is ``O(k)`` draws instead of one GRR report per user.
    """

    def __init__(
        self,
        protocol: LOLOHA,
        n_users: int,
        rng: RngLike = None,
        support_layout: str = "auto",
    ) -> None:
        if not isinstance(protocol, LOLOHA):
            raise ParameterError("LOLOHAEngine requires a LOLOHA protocol")
        super().__init__(protocol, n_users, rng)
        domain_dtype = np.int16 if protocol.g < 2**15 else np.int32
        #: Pre-hashed domain per user: ``hashed_domain[u, v] = H_u(v)``.
        self.hashed_domain = protocol.family.sample_hashed_domains(
            n_users, protocol.k, self._rng
        ).astype(domain_dtype)
        self._state = DenseSymbolMemo(n_users, protocol.g)
        if support_layout not in ("auto", "packed", "compare"):
            raise ParameterError(
                f"support layout must be 'auto', 'packed' or 'compare', "
                f"got {support_layout!r}"
            )
        planes_bytes = protocol.g * n_users * (-(-protocol.k // 8))
        use_planes = support_layout == "packed" or (
            support_layout == "auto" and planes_bytes <= _SUPPORT_PLANES_MAX_BYTES
        )
        #: Bit-packed support planes: plane ``h``, row ``u`` packs the k-bit
        #: indicator row ``H_u(v) == h`` — the (memoized symbol, hash bucket)
        #: regrouping of the support fold.  ``None`` when the planes would
        #: exceed the byte budget; the fold then compares per round instead.
        self._support_planes: Optional[np.ndarray] = None
        if use_planes:
            self._support_planes = np.stack(
                [
                    np.packbits(self.hashed_domain == h, axis=1)
                    for h in range(protocol.g)
                ]
            )
        # A user's support row depends only on its memoized symbol (the hash
        # tables are fixed), so the fold is delta-cached on those symbols.
        self._memoized_support = _DeltaFoldCache(n_users, self._fold_support)

    def _fold_support(self, users: np.ndarray, symbols: np.ndarray) -> np.ndarray:
        """Fold the support rows of the given users under the given memoized
        symbols: ``sum_u [H_u(v) == symbols[u]]`` per value ``v``."""
        if self._support_planes is not None:
            rows = self._support_planes[symbols, users]
            return packed_column_sums_kernel(rows, self.protocol.k)
        return support_from_hashes_kernel(
            self.hashed_domain[users], symbols
        ).astype(np.int64)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        g = self.protocol.g
        users = np.arange(self.n_users)

        hashed = self.hashed_domain[users, values_t].astype(np.int64)
        memoized = self._state.resolve(
            hashed, lambda u, keys: grr_kernel(keys, g, params.p1, generator)
        )
        # A user supports value v iff its report equals H_u(v); the report is
        # the memoized symbol with probability p2 and any fixed other symbol
        # with probability q2 = (1 - p2) / (g - 1), independently across
        # users.  Conditional on the memoized support counts D[v], the round's
        # support counts therefore marginalize per value to
        # Binomial(D[v], p2) + Binomial(n - D[v], q2) — the same aggregated
        # form as the UE round (cross-value covariance through shared reports
        # is not reproduced; every downstream consumer is per-value).
        memo_support = self._memoized_support.update(memoized)
        return ue_binomial_counts_kernel(
            memo_support, self.n_users, params.p2, params.q2, generator
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


def engine_for(
    protocol: LongitudinalProtocol, n_users: int, rng: RngLike = None
) -> PopulationEngine:
    """Instantiate the vectorized engine matching ``protocol``'s family."""
    if isinstance(protocol, LOLOHA):
        return LOLOHAEngine(protocol, n_users, rng)
    if isinstance(protocol, LGRR):
        return GRRChainEngine(protocol, n_users, rng)
    if isinstance(protocol, LongitudinalUnaryEncoding):
        return UnaryChainEngine(protocol, n_users, rng)
    if isinstance(protocol, DBitFlipPM):
        return DBitFlipEngine(protocol, n_users, rng)
    raise ParameterError(
        f"no vectorized engine is registered for protocol type {type(protocol).__name__}"
    )
