"""Vectorized population engines: thin kernel + state compositions.

Driving one Python client object per user is the clearest way to run a
protocol, but for the paper-sized populations (up to 45k users over 260
rounds) the per-call overhead dominates.  Each engine in this module
re-implements one protocol family's *entire client population* while
preserving the same randomized behaviour, by composing exactly two layers:

* a *perturbation kernel* from :mod:`repro.simulation.kernels` — the pure,
  stateless numpy function that realizes the protocol's randomization;
* a *memoization state* from :mod:`repro.simulation.state` — a dense table
  holding the permanent randomization of each (user, key) pair, created in
  batches the first time a pair occurs.

Neither the round loop nor any constructor contains a per-user Python loop;
the only per-round outputs are the support counts, which the aggregation
sinks of :mod:`repro.simulation.sinks` fold incrementally.

Every engine exposes the same protocol:

``run_round(values_t, rng) -> support_counts``
    Process one collection round for all users and return the support counts
    the server aggregates for that round.

``distinct_memoized_per_user() -> np.ndarray``
    Per-user count of permanently randomized keys so far (the input of the
    ``eps_avg`` metric).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

import numpy as np

from .._validation import as_rng, require_int_at_least
from ..exceptions import ExperimentError, ParameterError
from ..longitudinal.base import LongitudinalProtocol
from ..longitudinal.dbitflip import DBitFlipPM
from ..longitudinal.l_grr import LGRR
from ..longitudinal.l_ue import LongitudinalUnaryEncoding
from ..longitudinal.loloha import LOLOHA
from ..rng import RngLike
from .kernels import (
    dbitflip_fresh_bits_kernel,
    grr_kernel,
    sample_buckets_kernel,
    support_from_hashes_kernel,
    ue_binomial_counts_kernel,
    ue_fresh_rows_kernel,
)
from .sinks import estimate_support_counts
from .state import DenseSymbolMemo, PackedBitMemo

__all__ = [
    "PopulationEngine",
    "GRRChainEngine",
    "UnaryChainEngine",
    "DBitFlipEngine",
    "LOLOHAEngine",
    "engine_for",
]


class PopulationEngine(ABC):
    """Base class: a vectorized population of clients for one protocol."""

    def __init__(self, protocol: LongitudinalProtocol, n_users: int, rng: RngLike = None) -> None:
        self.protocol = protocol
        self.n_users = require_int_at_least(n_users, 1, "n_users")
        self._rng = as_rng(rng)

    @abstractmethod
    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Process one round of values (one per user) and return support counts."""

    @abstractmethod
    def distinct_memoized_per_user(self) -> np.ndarray:
        """Per-user number of permanently randomized memoization keys."""

    def estimate_round(
        self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Run one round and return the unbiased frequency estimate."""
        counts = self.run_round(values_t, rng)
        return estimate_support_counts(self.protocol, counts, self.n_users)

    def _validate_round(self, values_t: np.ndarray) -> np.ndarray:
        values_t = np.asarray(values_t, dtype=np.int64)
        if values_t.shape != (self.n_users,):
            raise ExperimentError(
                f"expected one value per user (shape ({self.n_users},)), got {values_t.shape}"
            )
        if values_t.min() < 0 or values_t.max() >= self.protocol.k:
            raise ExperimentError(
                f"round values must lie in [0, {self.protocol.k})"
            )
        return values_t

    def _round_rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        return self._rng if rng is None else as_rng(rng)


class GRRChainEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.LGRR`.

    The memoization key of L-GRR is the value itself, so the state is one
    memoized symbol per (user, value) pair.
    """

    def __init__(self, protocol: LGRR, n_users: int, rng: RngLike = None) -> None:
        if not isinstance(protocol, LGRR):
            raise ParameterError("GRRChainEngine requires an LGRR protocol")
        super().__init__(protocol, n_users, rng)
        self._state = DenseSymbolMemo(n_users, protocol.k)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        k = self.protocol.k

        memoized = self._state.resolve(
            values_t, lambda users, keys: grr_kernel(keys, k, params.p1, generator)
        )
        reports = grr_kernel(memoized, k, params.p2, generator)
        return np.bincount(reports, minlength=k).astype(np.float64)

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


class UnaryChainEngine(PopulationEngine):
    """Vectorized population for the longitudinal UE protocols.

    The permanently randomized ``k``-bit vectors are held in a dense
    bit-packed memo tensor indexed by (user, value), materialized lazily in
    batches — no per-user packing or unpacking on the round path.
    """

    def __init__(
        self, protocol: LongitudinalUnaryEncoding, n_users: int, rng: RngLike = None
    ) -> None:
        if not isinstance(protocol, LongitudinalUnaryEncoding):
            raise ParameterError("UnaryChainEngine requires a longitudinal UE protocol")
        super().__init__(protocol, n_users, rng)
        self._state = PackedBitMemo(n_users, protocol.k, protocol.k)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        k = self.protocol.k

        memo_matrix = self._state.resolve(
            values_t,
            lambda users, keys: ue_fresh_rows_kernel(
                keys, k, params.p1, params.q1, generator
            ),
        )
        # The instantaneous bit flips are independent across users, so the
        # column support counts can be sampled in aggregate (two binomials
        # per column) instead of flipping the full (n_users, k) matrix.
        memo_ones = memo_matrix.sum(axis=0, dtype=np.int64)
        return ue_binomial_counts_kernel(
            memo_ones, self.n_users, params.p2, params.q2, generator
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


class DBitFlipEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.DBitFlipPM`.

    Beyond the support counts this engine records, per user, the sequence of
    memoization keys actually used — which is what the data-change detection
    attack of Table 2 observes.
    """

    def __init__(self, protocol: DBitFlipPM, n_users: int, rng: RngLike = None) -> None:
        if not isinstance(protocol, DBitFlipPM):
            raise ParameterError("DBitFlipEngine requires a DBitFlipPM protocol")
        super().__init__(protocol, n_users, rng)
        d, b = protocol.d, protocol.b
        #: Sampled buckets, fixed per user (without replacement) — one batched
        #: draw for the whole population.
        self.sampled_buckets = sample_buckets_kernel(n_users, b, d, self._rng)
        # Memoized bits per (user, indicator key); key d means "no sampled
        # bucket matches".
        self._state = PackedBitMemo(n_users, d + 1, d)
        #: Per-round memoization keys used by each user (filled by run_round);
        #: consumed by the change-detection attack.
        self.key_history: list = []

    def _indicator_keys(self, buckets: np.ndarray) -> np.ndarray:
        """Position of each user's current bucket among its sampled buckets, or d."""
        matches = self.sampled_buckets == buckets[:, None]
        keys = np.full(self.n_users, self.protocol.d, dtype=np.int64)
        matched_users, matched_positions = np.nonzero(matches)
        keys[matched_users] = matched_positions
        return keys

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        p, q = self.protocol.bit_probabilities
        d = self.protocol.d

        buckets = self.protocol.bucket_of(values_t)
        keys = self._indicator_keys(buckets)
        self.key_history.append(keys.copy())

        current = self._state.resolve(
            keys, lambda users, kk: dbitflip_fresh_bits_kernel(kk, d, p, q, generator)
        )
        return np.bincount(
            self.sampled_buckets.ravel(),
            weights=current.ravel(),
            minlength=self.protocol.b,
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()

    def memoized_bits(self, user: int, key: int) -> Optional[np.ndarray]:
        """The memoized response of ``user`` for indicator ``key`` (or ``None``)."""
        return self._state.get_row(user, key)


class LOLOHAEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.LOLOHA`.

    The per-user hash tables Algorithm 2 needs are drawn in one batched call
    through :meth:`repro.hashing.UniversalHashFamily.sample_hashed_domains`.
    """

    def __init__(self, protocol: LOLOHA, n_users: int, rng: RngLike = None) -> None:
        if not isinstance(protocol, LOLOHA):
            raise ParameterError("LOLOHAEngine requires a LOLOHA protocol")
        super().__init__(protocol, n_users, rng)
        domain_dtype = np.int16 if protocol.g < 2**15 else np.int32
        #: Pre-hashed domain per user: ``hashed_domain[u, v] = H_u(v)``.
        self.hashed_domain = protocol.family.sample_hashed_domains(
            n_users, protocol.k, self._rng
        ).astype(domain_dtype)
        self._state = DenseSymbolMemo(n_users, protocol.g)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        g = self.protocol.g
        users = np.arange(self.n_users)

        hashed = self.hashed_domain[users, values_t].astype(np.int64)
        memoized = self._state.resolve(
            hashed, lambda u, keys: grr_kernel(keys, g, params.p1, generator)
        )
        reports = grr_kernel(memoized, g, params.p2, generator)
        return support_from_hashes_kernel(self.hashed_domain, reports)

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


def engine_for(
    protocol: LongitudinalProtocol, n_users: int, rng: RngLike = None
) -> PopulationEngine:
    """Instantiate the vectorized engine matching ``protocol``'s family."""
    if isinstance(protocol, LOLOHA):
        return LOLOHAEngine(protocol, n_users, rng)
    if isinstance(protocol, LGRR):
        return GRRChainEngine(protocol, n_users, rng)
    if isinstance(protocol, LongitudinalUnaryEncoding):
        return UnaryChainEngine(protocol, n_users, rng)
    if isinstance(protocol, DBitFlipPM):
        return DBitFlipEngine(protocol, n_users, rng)
    raise ParameterError(
        f"no vectorized engine is registered for protocol type {type(protocol).__name__}"
    )
