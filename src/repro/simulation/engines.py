"""Vectorized population engines: thin kernel + state compositions.

Driving one Python client object per user is the clearest way to run a
protocol, but for the paper-sized populations (up to 45k users over 260
rounds) the per-call overhead dominates.  Each engine in this module
re-implements one protocol family's *entire client population* while
preserving the same randomized behaviour, by composing exactly two layers:

* a *perturbation kernel* from :mod:`repro.simulation.kernels` — the pure,
  stateless numpy function that realizes the protocol's randomization;
* a *memoization state* from :mod:`repro.simulation.state` — a dense or
  row-sparse table holding the permanent randomization of each (user, key)
  pair, created in batches the first time a pair occurs.

Neither the round loop nor any constructor contains a per-user Python loop,
and — since the aggregated-sampling pass — the *instantaneous* randomization
of every engine is sampled in aggregate: the per-round randomness cost is a
function of the (hashed) domain size alone, never of ``n_users``
(``docs/architecture.md`` tabulates the per-engine round complexity).  The
only per-round outputs are the support counts, which the aggregation sinks
of :mod:`repro.simulation.sinks` fold incrementally.

Every engine exposes the same protocol:

``run_round(values_t, rng) -> support_counts``
    Process one collection round for all users and return the support counts
    the server aggregates for that round.

``run_rounds(values_t, n_rounds, rng) -> (n_rounds, m) support counts``
    Process ``n_rounds`` consecutive rounds in which every user holds the
    same value, collapsing the per-round kernel calls into one batched
    draw.  **Bit-identical** to calling :meth:`run_round` ``n_rounds``
    times with the same generator: the batched binomial kernels consume the
    underlying bit stream in exactly the sequential order (see
    :func:`repro.simulation.kernels.ue_binomial_counts_batch_kernel`), so
    callers — the window-batching runner above all — can mix the two freely.

``distinct_memoized_per_user() -> np.ndarray``
    Per-user count of permanently randomized keys so far (the input of the
    ``eps_avg`` metric).

The deterministic hot folds (packed column sums, the LOLOHA support fold,
the GRR symbol bincount) are routed through a
:class:`~repro.simulation.kernels_backend.KernelBackend`; the optional
compiled backend changes wall-clock time only, never results, and the
randomness-consuming kernels always stay on the numpy ``Generator``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional, Union

import numpy as np

from .._validation import as_rng, require_int_at_least
from ..exceptions import ExperimentError, ParameterError
from ..longitudinal.base import LongitudinalProtocol
from ..longitudinal.dbitflip import DBitFlipPM
from ..longitudinal.l_grr import LGRR
from ..longitudinal.l_ue import LongitudinalUnaryEncoding
from ..longitudinal.loloha import LOLOHA
from ..obs.metrics import default_registry
from ..rng import RngLike
from .kernels import (
    dbitflip_fresh_bits_kernel,
    grr_kernel,
    grr_mixing_counts_batch_kernel,
    grr_mixing_counts_kernel,
    sample_buckets_kernel,
    ue_binomial_counts_batch_kernel,
    ue_binomial_counts_kernel,
    ue_fresh_rows_kernel,
)
from .kernels_backend import KernelBackend, resolve_backend
from .sinks import estimate_support_counts
from .state import DenseSymbolMemo, _PackedBitMemoBase, make_packed_bit_memo

__all__ = [
    "PopulationEngine",
    "GRRChainEngine",
    "UnaryChainEngine",
    "DBitFlipEngine",
    "LOLOHAEngine",
    "engine_for",
]

#: Byte budget above which :class:`LOLOHAEngine` skips precomputing the
#: packed per-hash-symbol support planes and falls back to the dense
#: compare-based fold.
_SUPPORT_PLANES_MAX_BYTES = 1024**3


# Cached (registry, delta counter, full counter) triple for the fold cache —
# re-resolved when a test swaps the default registry, otherwise one identity
# check per update keeps the hot path free of registry lookups.
_fold_counters_cache = None


def _fold_counters():
    global _fold_counters_cache
    registry = default_registry()
    if _fold_counters_cache is None or _fold_counters_cache[0] is not registry:
        _fold_counters_cache = (
            registry,
            registry.counter(
                "repro_sim_delta_folds_total",
                "Rounds folded incrementally (only changed users refolded).",
            ),
            registry.counter(
                "repro_sim_full_refolds_total",
                "Rounds that fell back to a full population refold.",
            ),
        )
    return _fold_counters_cache


class _DeltaFoldCache:
    """Incremental per-round fold of immutable per-(user, key) contributions.

    ``fold(users, keys)`` must return the summed contribution vector of the
    given users under the given keys.  Contributions never change once a
    (user, key) pair exists, so between rounds only users whose key changed
    need refolding.  Two refinements keep the delta path cheap and stable:

    * ``fold_delta(users, new_keys, old_keys)``, when given, computes the
      ``+ new − old`` adjustment in **one fused pass** instead of two folds
      (the packed engines fold ``[new_rows, ~old_rows]`` together and
      subtract the row count, using ``colsum(~r) = 1 − colsum(r)``
      per column);
    * the full-refold cutover has *hysteresis*: the cache enters the delta
      path when at most half the population moved (the naive break-even for
      the two-fold delta) but, once in it, tolerates up to 5/8 before
      falling back.  Workloads hovering around the 50 % churn mark
      previously flip-flopped between the two costs every round; the band
      keeps them on one side.

    Longitudinal values are sticky across rounds, making the delta path the
    common case.
    """

    def __init__(
        self,
        n_users: int,
        fold: Callable[[np.ndarray, np.ndarray], np.ndarray],
        fold_delta: Optional[Callable[[np.ndarray, np.ndarray, np.ndarray], np.ndarray]] = None,
    ) -> None:
        self._n_users = n_users
        self._fold = fold
        self._fold_delta = fold_delta
        self._last_keys: Optional[np.ndarray] = None
        self._sums: Optional[np.ndarray] = None
        self._delta_mode = False

    def update(self, keys: np.ndarray) -> np.ndarray:
        if self._sums is not None:
            changed = np.flatnonzero(keys != self._last_keys)
            threshold = (
                (5 * self._n_users) // 8 if self._delta_mode else self._n_users // 2
            )
            if changed.size <= threshold:
                if changed.size:
                    if self._fold_delta is not None:
                        self._sums += self._fold_delta(
                            changed, keys[changed], self._last_keys[changed]
                        )
                    else:
                        self._sums += self._fold(changed, keys[changed])
                        self._sums -= self._fold(changed, self._last_keys[changed])
                    self._last_keys[changed] = keys[changed]
                self._delta_mode = True
                _fold_counters()[1].inc()
                return self._sums
        self._sums = self._fold(np.arange(self._n_users), keys)
        self._last_keys = keys.copy()
        self._delta_mode = False
        _fold_counters()[2].inc()
        return self._sums


def _validated_memo(memo, memo_type, expected, engine_name: str):
    """Check an injected memo table against the engine's required geometry."""
    if not isinstance(memo, memo_type):
        raise ParameterError(
            f"{engine_name} requires a {memo_type.__name__} memo table, "
            f"got {type(memo).__name__}"
        )
    actual = tuple(getattr(memo, name) for name in expected)
    wanted = tuple(expected.values())
    if actual != wanted:
        described = ", ".join(
            f"{name}={value}" for name, value in zip(expected, actual)
        )
        needed = ", ".join(f"{name}={value}" for name, value in expected.items())
        raise ParameterError(
            f"injected memo table geometry ({described}) does not match what "
            f"{engine_name} needs ({needed})"
        )
    return memo


class PopulationEngine(ABC):
    """Base class: a vectorized population of clients for one protocol.

    ``backend`` selects the :class:`~repro.simulation.kernels_backend
    .KernelBackend` for the deterministic hot folds — ``None`` defers to the
    process default (``REPRO_KERNEL_BACKEND``), a name or a backend object
    overrides it for this engine alone.  Backends never touch the
    randomness stream, so simulations are bit-identical across them.
    """

    def __init__(
        self,
        protocol: LongitudinalProtocol,
        n_users: int,
        rng: RngLike = None,
        backend: Union[str, KernelBackend, None] = None,
    ) -> None:
        self.protocol = protocol
        self.n_users = require_int_at_least(n_users, 1, "n_users")
        self._rng = as_rng(rng)
        self._backend = resolve_backend(backend)
        # Info-style gauge: which kernel backend actually serves the folds —
        # the visible trace of a `native` request silently falling back.
        default_registry().gauge(
            "repro_sim_backend_info",
            "Kernel backend serving engine folds (value is always 1).",
        ).labels(backend=self._backend.name).set(1)

    @property
    def backend_name(self) -> str:
        """Name of the kernel backend serving this engine's hot folds."""
        return self._backend.name

    def memo_nbytes(self) -> Optional[int]:
        """Bytes currently held by this engine's memo table, if it has one.

        Packed memos report lazily materialized storage
        (``nbytes_allocated``), dense ones their array sizes (``nbytes``);
        engines without a table answer ``None``.
        """
        state = getattr(self, "_state", None)
        if state is None:
            return None
        for attr in ("nbytes_allocated", "nbytes"):
            value = getattr(state, attr, None)
            if callable(value):
                return int(value())
            if value is not None:
                return int(value)
        return None

    @abstractmethod
    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        """Process one round of values (one per user) and return support counts."""

    def run_rounds(
        self,
        values_t: np.ndarray,
        n_rounds: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        """Process ``n_rounds`` consecutive rounds of identical values.

        Returns the stacked support counts, shape ``(n_rounds, m)``; row
        ``r`` is exactly what the ``r``-th sequential :meth:`run_round` call
        would have returned with the same generator.  The base implementation
        is that sequential loop; engines whose steady-round randomness can be
        drawn in one batch override it.
        """
        n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        generator = self._round_rng(rng)
        return np.stack(
            [self.run_round(values_t, generator) for _ in range(n_rounds)]
        )

    @abstractmethod
    def distinct_memoized_per_user(self) -> np.ndarray:
        """Per-user number of permanently randomized memoization keys."""

    def estimate_round(
        self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None
    ) -> np.ndarray:
        """Run one round and return the unbiased frequency estimate."""
        counts = self.run_round(values_t, rng)
        return estimate_support_counts(self.protocol, counts, self.n_users)

    def _validate_round(self, values_t: np.ndarray) -> np.ndarray:
        values_t = np.asarray(values_t, dtype=np.int64)
        if values_t.shape != (self.n_users,):
            raise ExperimentError(
                f"expected one value per user (shape ({self.n_users},)), got {values_t.shape}"
            )
        if values_t.min() < 0 or values_t.max() >= self.protocol.k:
            raise ExperimentError(
                f"round values must lie in [0, {self.protocol.k})"
            )
        return values_t

    def _round_rng(self, rng: Optional[np.random.Generator]) -> np.random.Generator:
        return self._rng if rng is None else as_rng(rng)


class GRRChainEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.LGRR`.

    The memoization key of L-GRR is the value itself, so the state is one
    memoized symbol per (user, value) pair.  The instantaneous GRR is sampled
    in aggregate per memoized symbol (:func:`grr_mixing_counts_kernel`):
    after the O(n) memoization lookup, the round consumes ``O(k)`` randomness
    regardless of the population size.
    """

    def __init__(
        self,
        protocol: LGRR,
        n_users: int,
        rng: RngLike = None,
        backend: Union[str, KernelBackend, None] = None,
        memo: Optional[DenseSymbolMemo] = None,
    ) -> None:
        if not isinstance(protocol, LGRR):
            raise ParameterError("GRRChainEngine requires an LGRR protocol")
        super().__init__(protocol, n_users, rng, backend=backend)
        if memo is None:
            memo = DenseSymbolMemo(n_users, protocol.k)
        self._state = _validated_memo(
            memo,
            DenseSymbolMemo,
            {"n_users": n_users, "n_keys": protocol.k},
            "GRRChainEngine",
        )

    def _memoized_symbol_counts(
        self, values_t: np.ndarray, generator: np.random.Generator
    ) -> np.ndarray:
        params = self.protocol.chained_parameters
        k = self.protocol.k
        memoized = self._state.resolve(
            values_t, lambda users, keys: grr_kernel(keys, k, params.p1, generator)
        )
        return self._backend.symbol_bincount(memoized, k)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        symbol_counts = self._memoized_symbol_counts(values_t, generator)
        return grr_mixing_counts_kernel(
            symbol_counts, self.protocol.k, self.protocol.chained_parameters.p2, generator
        )

    def run_rounds(
        self,
        values_t: np.ndarray,
        n_rounds: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        # With unchanged values only the first round can memoize fresh pairs;
        # the remaining rounds' GRR mixing collapses into one batched draw.
        symbol_counts = self._memoized_symbol_counts(values_t, generator)
        return grr_mixing_counts_batch_kernel(
            symbol_counts,
            self.protocol.k,
            self.protocol.chained_parameters.p2,
            n_rounds,
            generator,
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


class UnaryChainEngine(PopulationEngine):
    """Vectorized population for the longitudinal UE protocols.

    The permanently randomized ``k``-bit vectors are held in a bit-packed
    memo table indexed by (user, value), materialized lazily in batches; the
    layout (dense below ~2 GiB, row-sparse above) is picked by
    :func:`repro.simulation.state.make_packed_bit_memo` and can be forced
    with ``memo_layout=``, or the table itself injected with ``memo=`` (the
    shared-memory pool of :mod:`repro.simulation.shm` does this to let
    co-located shards share one allocation).  The round path folds the
    packed rows straight into per-column sums — the full ``(n_users, k)``
    bit matrix is never unpacked — and samples the instantaneous flips in
    aggregate (two binomials per column).
    """

    def __init__(
        self,
        protocol: LongitudinalUnaryEncoding,
        n_users: int,
        rng: RngLike = None,
        memo_layout: str = "auto",
        backend: Union[str, KernelBackend, None] = None,
        memo: Optional[_PackedBitMemoBase] = None,
    ) -> None:
        if not isinstance(protocol, LongitudinalUnaryEncoding):
            raise ParameterError("UnaryChainEngine requires a longitudinal UE protocol")
        super().__init__(protocol, n_users, rng, backend=backend)
        if memo is not None:
            if memo_layout != "auto":
                raise ParameterError(
                    "memo_layout cannot be combined with an injected memo table"
                )
            self._state = _validated_memo(
                memo,
                _PackedBitMemoBase,
                {"n_users": n_users, "n_keys": protocol.k, "n_bits": protocol.k},
                "UnaryChainEngine",
            )
        else:
            self._state = make_packed_bit_memo(
                n_users, protocol.k, protocol.k, layout=memo_layout
            )
        self._column_sums = _DeltaFoldCache(
            n_users, self._fold_column_sums, self._fold_column_sums_delta
        )

    def _fold_column_sums(self, users: np.ndarray, keys: np.ndarray) -> np.ndarray:
        return self._backend.packed_column_sums(
            self._state.packed_rows(users, keys), self.protocol.k
        )

    def _fold_column_sums_delta(
        self, users: np.ndarray, new_keys: np.ndarray, old_keys: np.ndarray
    ) -> np.ndarray:
        # colsum(new) − colsum(old) == colsum([new, ~old]) − n_changed per
        # column: inverting the packed bytes turns each old row into its
        # complement (the byte tail pad lands in truncated columns >= k), so
        # one fused fold replaces the two-pass add/subtract.
        fused = np.concatenate(
            [
                self._state.packed_rows(users, new_keys),
                np.invert(self._state.packed_rows(users, old_keys)),
            ]
        )
        return self._backend.packed_column_sums(fused, self.protocol.k) - users.size

    def _memoized_column_sums(
        self, values_t: np.ndarray, generator: np.random.Generator
    ) -> np.ndarray:
        params = self.protocol.chained_parameters
        k = self.protocol.k
        self._state.ensure_rows(
            values_t,
            lambda users, keys: ue_fresh_rows_kernel(
                keys, k, params.p1, params.q1, generator
            ),
        )
        # Column sums of the memoized rows, folded on the packed bytes (the
        # full (n_users, k) bit matrix is never unpacked) and updated
        # incrementally across rounds.
        return self._column_sums.update(values_t)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        memo_ones = self._memoized_column_sums(values_t, generator)
        # The instantaneous bit flips are independent across users, so the
        # column support counts can be sampled in aggregate (two binomials
        # per column) instead of flipping the full (n_users, k) matrix.
        return ue_binomial_counts_kernel(
            memo_ones, self.n_users, params.p2, params.q2, generator
        )

    def run_rounds(
        self,
        values_t: np.ndarray,
        n_rounds: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        memo_ones = self._memoized_column_sums(values_t, generator)
        return ue_binomial_counts_batch_kernel(
            memo_ones, self.n_users, params.p2, params.q2, n_rounds, generator
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


class DBitFlipEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.DBitFlipPM`.

    With ``record_key_history=True`` the engine additionally records, per
    round, the memoization key used by each user — which is what the
    data-change detection attack of Table 2 observes.  Recording is opt-in
    because the history grows by one ``(n_users,)`` array per round forever,
    which long-horizon monitoring simulations must not pay for.
    """

    def __init__(
        self,
        protocol: DBitFlipPM,
        n_users: int,
        rng: RngLike = None,
        memo_layout: str = "auto",
        record_key_history: bool = False,
        backend: Union[str, KernelBackend, None] = None,
        memo: Optional[_PackedBitMemoBase] = None,
    ) -> None:
        if not isinstance(protocol, DBitFlipPM):
            raise ParameterError("DBitFlipEngine requires a DBitFlipPM protocol")
        super().__init__(protocol, n_users, rng, backend=backend)
        d, b = protocol.d, protocol.b
        #: Sampled buckets, fixed per user (without replacement) — one batched
        #: draw for the whole population.
        self.sampled_buckets = sample_buckets_kernel(n_users, b, d, self._rng)
        # Memoized bits per (user, indicator key); key d means "no sampled
        # bucket matches".
        if memo is not None:
            if memo_layout != "auto":
                raise ParameterError(
                    "memo_layout cannot be combined with an injected memo table"
                )
            self._state = _validated_memo(
                memo,
                _PackedBitMemoBase,
                {"n_users": n_users, "n_keys": d + 1, "n_bits": d},
                "DBitFlipEngine",
            )
        else:
            self._state = make_packed_bit_memo(n_users, d + 1, d, layout=memo_layout)
        #: Per-round memoization keys used by each user, recorded only when
        #: ``record_key_history=True`` (``None`` otherwise); consumed by the
        #: change-detection attack.
        self.key_history: Optional[List[np.ndarray]] = [] if record_key_history else None

    def _indicator_keys(self, buckets: np.ndarray) -> np.ndarray:
        """Position of each user's current bucket among its sampled buckets, or d."""
        matches = self.sampled_buckets == buckets[:, None]
        keys = np.full(self.n_users, self.protocol.d, dtype=np.int64)
        matched_users, matched_positions = np.nonzero(matches)
        keys[matched_users] = matched_positions
        return keys

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        p, q = self.protocol.bit_probabilities
        d = self.protocol.d

        buckets = self.protocol.bucket_of(values_t)
        keys = self._indicator_keys(buckets)
        if self.key_history is not None:
            self.key_history.append(keys.copy())

        current = self._state.resolve(
            keys, lambda users, kk: dbitflip_fresh_bits_kernel(kk, d, p, q, generator)
        )
        return np.bincount(
            self.sampled_buckets.ravel(),
            weights=current.ravel(),
            minlength=self.protocol.b,
        )

    def run_rounds(
        self,
        values_t: np.ndarray,
        n_rounds: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        # dBitFlipPM has no instantaneous randomization: with unchanged
        # values, rounds after the first replay the identical memoized
        # counts and consume no randomness — one round computed, R emitted.
        counts = self.run_round(values_t, rng)
        if self.key_history is not None:
            for _ in range(n_rounds - 1):
                self.key_history.append(self.key_history[-1].copy())
        return np.repeat(counts[None, :], n_rounds, axis=0)

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()

    def memoized_bits(self, user: int, key: int) -> Optional[np.ndarray]:
        """The memoized response of ``user`` for indicator ``key`` (or ``None``)."""
        return self._state.get_row(user, key)


class LOLOHAEngine(PopulationEngine):
    """Vectorized population for :class:`repro.longitudinal.LOLOHA`.

    The per-user hash tables Algorithm 2 needs are drawn in one batched call
    through :meth:`repro.hashing.UniversalHashFamily.sample_hashed_domains`.
    The round is fully aggregated: the support fold counts, per candidate
    value ``v``, the users whose hash of ``v`` equals their *memoized* symbol
    — regrouped per (memoized symbol, hash bucket) as bit-packed support
    planes folded by popcount — and the instantaneous GRR is then sampled as
    two binomials per value on top of those counts, so the per-round
    randomness is ``O(k)`` draws instead of one GRR report per user.
    """

    def __init__(
        self,
        protocol: LOLOHA,
        n_users: int,
        rng: RngLike = None,
        support_layout: str = "auto",
        backend: Union[str, KernelBackend, None] = None,
        memo: Optional[DenseSymbolMemo] = None,
    ) -> None:
        if not isinstance(protocol, LOLOHA):
            raise ParameterError("LOLOHAEngine requires a LOLOHA protocol")
        super().__init__(protocol, n_users, rng, backend=backend)
        domain_dtype = np.int16 if protocol.g < 2**15 else np.int32
        #: Pre-hashed domain per user: ``hashed_domain[u, v] = H_u(v)``.
        #: Always drawn from this engine's own stream — never shared state —
        #: so shard engines reproduce the identical tables in every
        #: execution mode.
        self.hashed_domain = protocol.family.sample_hashed_domains(
            n_users, protocol.k, self._rng
        ).astype(domain_dtype)
        if memo is None:
            memo = DenseSymbolMemo(n_users, protocol.g)
        self._state = _validated_memo(
            memo,
            DenseSymbolMemo,
            {"n_users": n_users, "n_keys": protocol.g},
            "LOLOHAEngine",
        )
        if support_layout not in ("auto", "packed", "compare"):
            raise ParameterError(
                f"support layout must be 'auto', 'packed' or 'compare', "
                f"got {support_layout!r}"
            )
        planes_bytes = protocol.g * n_users * (-(-protocol.k // 8))
        use_planes = support_layout == "packed" or (
            support_layout == "auto" and planes_bytes <= _SUPPORT_PLANES_MAX_BYTES
        )
        #: Bit-packed support planes: plane ``h``, row ``u`` packs the k-bit
        #: indicator row ``H_u(v) == h`` — the (memoized symbol, hash bucket)
        #: regrouping of the support fold.  ``None`` when the planes would
        #: exceed the byte budget; the fold then compares per round instead.
        self._support_planes: Optional[np.ndarray] = None
        if use_planes:
            self._support_planes = np.stack(
                [
                    np.packbits(self.hashed_domain == h, axis=1)
                    for h in range(protocol.g)
                ]
            )
        # A user's support row depends only on its memoized symbol (the hash
        # tables are fixed), so the fold is delta-cached on those symbols;
        # the packed-plane layout additionally gets the fused delta pass.
        self._memoized_support = _DeltaFoldCache(
            n_users,
            self._fold_support,
            self._fold_support_delta if use_planes else None,
        )

    def _fold_support(self, users: np.ndarray, symbols: np.ndarray) -> np.ndarray:
        """Fold the support rows of the given users under the given memoized
        symbols: ``sum_u [H_u(v) == symbols[u]]`` per value ``v``."""
        if self._support_planes is not None:
            rows = self._support_planes[symbols, users]
            return self._backend.packed_column_sums(rows, self.protocol.k)
        return self._backend.support_fold(self.hashed_domain[users], symbols)

    def _fold_support_delta(
        self, users: np.ndarray, new_symbols: np.ndarray, old_symbols: np.ndarray
    ) -> np.ndarray:
        # Same fused add/remove identity as the UE column-sum delta: the
        # complement of an old support row contributes 1 − old per column.
        fused = np.concatenate(
            [
                self._support_planes[new_symbols, users],
                np.invert(self._support_planes[old_symbols, users]),
            ]
        )
        return self._backend.packed_column_sums(fused, self.protocol.k) - users.size

    def _memoized_support_counts(
        self, values_t: np.ndarray, generator: np.random.Generator
    ) -> np.ndarray:
        params = self.protocol.chained_parameters
        g = self.protocol.g
        users = np.arange(self.n_users)
        hashed = self.hashed_domain[users, values_t].astype(np.int64)
        memoized = self._state.resolve(
            hashed, lambda u, keys: grr_kernel(keys, g, params.p1, generator)
        )
        return self._memoized_support.update(memoized)

    def run_round(self, values_t: np.ndarray, rng: Optional[np.random.Generator] = None) -> np.ndarray:
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        # A user supports value v iff its report equals H_u(v); the report is
        # the memoized symbol with probability p2 and any fixed other symbol
        # with probability q2 = (1 - p2) / (g - 1), independently across
        # users.  Conditional on the memoized support counts D[v], the round's
        # support counts therefore marginalize per value to
        # Binomial(D[v], p2) + Binomial(n - D[v], q2) — the same aggregated
        # form as the UE round (cross-value covariance through shared reports
        # is not reproduced; every downstream consumer is per-value).
        memo_support = self._memoized_support_counts(values_t, generator)
        return ue_binomial_counts_kernel(
            memo_support, self.n_users, params.p2, params.q2, generator
        )

    def run_rounds(
        self,
        values_t: np.ndarray,
        n_rounds: int,
        rng: Optional[np.random.Generator] = None,
    ) -> np.ndarray:
        n_rounds = require_int_at_least(n_rounds, 1, "n_rounds")
        values_t = self._validate_round(values_t)
        generator = self._round_rng(rng)
        params = self.protocol.chained_parameters
        memo_support = self._memoized_support_counts(values_t, generator)
        return ue_binomial_counts_batch_kernel(
            memo_support, self.n_users, params.p2, params.q2, n_rounds, generator
        )

    def distinct_memoized_per_user(self) -> np.ndarray:
        return self._state.distinct_per_user()


#: Options each engine constructor accepts beyond ``(protocol, n_users,
#: rng)``.  ``engine_for`` validates against this so an override that an
#: engine would silently ignore (for instance ``memo_layout`` on the
#: symbol-memo engines) is an explicit error instead.
_ENGINE_OPTIONS = {
    GRRChainEngine: ("backend", "memo"),
    UnaryChainEngine: ("backend", "memo", "memo_layout"),
    DBitFlipEngine: ("backend", "memo", "memo_layout", "record_key_history"),
    LOLOHAEngine: ("backend", "memo", "support_layout"),
}


def engine_for(
    protocol: LongitudinalProtocol, n_users: int, rng: RngLike = None, **options
) -> PopulationEngine:
    """Instantiate the vectorized engine matching ``protocol``'s family.

    Keyword ``options`` are forwarded to the engine constructor after being
    validated against the engine's accepted set (see the per-engine
    signatures): passing an option the selected engine does not understand
    — e.g. ``memo_layout`` for :class:`GRRChainEngine`, whose memo is a
    symbol table with no packed layout to choose — raises a
    :class:`~repro.exceptions.ParameterError` naming the valid options
    instead of being silently ignored.
    """
    for protocol_type, engine_type in (
        (LOLOHA, LOLOHAEngine),
        (LGRR, GRRChainEngine),
        (LongitudinalUnaryEncoding, UnaryChainEngine),
        (DBitFlipPM, DBitFlipEngine),
    ):
        if isinstance(protocol, protocol_type):
            allowed = _ENGINE_OPTIONS[engine_type]
            unknown = sorted(set(options) - set(allowed))
            if unknown:
                raise ParameterError(
                    f"{engine_type.__name__} (for {type(protocol).__name__}) "
                    f"does not accept engine option(s) "
                    f"{', '.join(repr(name) for name in unknown)}; "
                    f"valid options: {', '.join(sorted(allowed))}"
                )
            return engine_type(protocol, n_users, rng, **options)
    raise ParameterError(
        f"no vectorized engine is registered for protocol type {type(protocol).__name__}"
    )
